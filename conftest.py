"""Pytest bootstrap for the repository.

Makes the ``src/`` layout importable even when the package has not been
installed (e.g. on offline machines where ``pip install -e .`` cannot build
an editable wheel).  When ``repro`` is already installed, the installed
package wins and this is a no-op.
"""

import os
import sys

_SRC = os.path.join(os.path.dirname(os.path.abspath(__file__)), "src")

try:  # pragma: no cover - trivial bootstrap
    import repro  # noqa: F401
except ImportError:  # pragma: no cover
    if _SRC not in sys.path:
        sys.path.insert(0, _SRC)
