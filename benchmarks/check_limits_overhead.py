"""CI guard: resource limits must be ~free while they never trigger.

PR 8 threads a :class:`~repro.limits.Governor` through the execution
paths of all three engines — cooperative checkpoints at the
interpreter's FLWOR/function-call boundaries, per-round checks in the
fixpoint drivers and the algebra µ/µ∆ loops.  The design promise is that
a query governed by *generous* limits (a one-hour deadline, huge budgets
— enabled but never tripping) pays (almost) nothing for the checks::

    PYTHONPATH=src python benchmarks/check_limits_overhead.py

It compares the same prepared workload under two settings:

* **governed** — ``EvalSettings(limits=ResourceLimits(...))`` with limits
  far beyond what the workload can reach;
* **ungoverned** — identical settings with ``limits=None`` (the governor
  construction and every checkpoint skipped).

The measurement is built for noisy shared runners:

* CPU seconds (``time.process_time``), not wall clock — CPU steal on a
  virtualized host adds tens of percent of one-sided wall-clock noise
  that would drown a 2% signal;
* alternating *blocks* of same-settings runs with a few untimed warm-up
  runs at each block start — CPython's adaptive interpreter
  re-specializes the governor call sites when ``options.limits`` flips
  between ``None`` and a live governor, and timing that re-specialization
  would charge the A/B switch itself to the governed variant;
* the **min** of several independent estimates — measurement noise only
  ever inflates an estimate, so the min converges on the true overhead
  while a genuine regression shows up in every estimate, including the
  min.

The check fails (exit 1) when the governed variant is more than
``--tolerance`` (default 2%) slower.  Block times below the
``--floor-ms`` noise floor abort with an error instead of silently
passing, so the guard cannot degrade into a no-op on fast machines —
raise ``--inner`` in that case.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.queries import get_workload
from repro.limits import ResourceLimits
from repro.session import Session
from repro.settings import EvalSettings

#: Enabled-but-untriggered: nothing the tiny workload does comes within
#: orders of magnitude of these, so every checkpoint runs and none trips.
GENEROUS_LIMITS = ResourceLimits(timeout_s=3600.0,
                                 max_fixpoint_rounds=1_000_000,
                                 max_frontier_nodes=1_000_000_000,
                                 max_result_items=1_000_000_000)

#: Untimed runs at the start of every block, letting the adaptive
#: interpreter re-specialize the governor sites for the block's variant.
BLOCK_WARMUP = 3


def _make_block_runner(inner: int):
    """Build ``block(settings) -> CPU seconds`` over one warm session."""
    workload = get_workload("curriculum")
    document = workload.size("tiny").build_document()
    query = workload.ifp_query(algorithm="delta")
    session = Session()
    session.register_document(workload.document_uri, document)
    base = EvalSettings(engine="interpreter", ifp_algorithm="delta")
    prepared = session.prepare(query, settings=base)
    governed = base.replace(limits=GENEROUS_LIMITS)
    prepared.run(settings=base)      # warm caches outside the measurement
    prepared.run(settings=governed)  # warm the governed path too

    def block(settings: EvalSettings) -> float:
        for _ in range(BLOCK_WARMUP):
            prepared.run(settings=settings)
        started = time.process_time()
        for _ in range(inner):
            prepared.run(settings=settings)
        return time.process_time() - started

    return block, governed, base


def measure(estimates: int, pairs: int, inner: int) -> list[tuple[float, float]]:
    """Return *estimates* independent ``(governed, ungoverned)`` CPU totals.

    Each estimate alternates *pairs* block pairs (governed block /
    ungoverned block, order swapping every pair so drift cannot
    systematically favour one side) and sums the block CPU times per
    variant.
    """
    block, governed_settings, base_settings = _make_block_runner(inner)
    results = []
    for _ in range(estimates):
        governed_total = ungoverned_total = 0.0
        for index in range(pairs):
            order = ((governed_settings, base_settings) if index % 2 == 0
                     else (base_settings, governed_settings))
            for settings in order:
                elapsed = block(settings)
                if settings is governed_settings:
                    governed_total += elapsed
                else:
                    ungoverned_total += elapsed
        results.append((governed_total, ungoverned_total))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--estimates", type=int, default=5,
                        help="independent overhead estimates; the min is "
                             "the verdict (default 5)")
    parser.add_argument("--pairs", type=int, default=4,
                        help="alternating block pairs per estimate (default 4)")
    parser.add_argument("--inner", type=int, default=30,
                        help="timed query evaluations per block (default 30)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="maximum allowed relative overhead (default 0.02)")
    parser.add_argument("--floor-ms", type=float, default=20.0,
                        help="fail if an ungoverned block total is below this "
                             "noise floor (default 20 ms); raise --inner "
                             "instead")
    arguments = parser.parse_args(argv)

    results = measure(arguments.estimates, arguments.pairs, arguments.inner)
    floor_s = arguments.floor_ms / 1000.0 * arguments.pairs
    slowest = max(ungoverned for _, ungoverned in results)
    if slowest < floor_s:
        print(f"limits overhead check INVALID: ungoverned estimate "
              f"{slowest * 1000.0:.2f} CPU ms is below the noise floor "
              f"({floor_s * 1000.0:.0f} ms) — raise --inner", file=sys.stderr)
        return 1
    overheads = sorted(governed / ungoverned - 1.0
                       for governed, ungoverned in results)
    overhead = overheads[0]
    verdict = "ok" if overhead <= arguments.tolerance else "FAILED"
    print("estimates: " + " ".join(f"{value:+.2%}" for value in overheads))
    print(f"overhead (min of {arguments.estimates}): {overhead:+.2%} "
          f"(allowed ≤ {arguments.tolerance:.0%}) — {verdict}")
    if overhead > arguments.tolerance:
        print("\nlimits overhead check FAILED: enabled-but-untriggered limits "
              f"cost more than {arguments.tolerance:.0%} even in the most "
              "favourable estimate — audit the `governor is not None` guards "
              "and the checkpoint placement/stride", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
