"""Bench: warm-cache throughput of the HTTP query service.

Starts ``repro-serve`` in a subprocess (so client and server do not share
a GIL), registers a generated curriculum, and measures requests per second
at 1, 4 and 8 concurrent client threads for each engine.  Every client
thread keeps one persistent HTTP/1.1 connection and warms its server
worker (caches, structural indexes, per-thread SQLite shred) before the
timed window::

    PYTHONPATH=src python benchmarks/bench_service.py
    PYTHONPATH=src python benchmarks/bench_service.py --requests 60 --engines sql

Two query classes per engine:

* ``warm-count`` — a cached aggregation; per-request evaluation is cheap,
  so concurrent clients overlap their client/kernel time with server
  compute and throughput *scales* with threads;
* ``fixpoint-tc`` — the full transitive-closure recursion; evaluation is
  CPython-bound on the server, so throughput stays roughly flat (the GIL
  ceiling) — recorded to keep the report honest about both regimes.

The server runs with admission control enabled (``--max-concurrency``,
default 6), so thread counts above the limit exercise the saturation
path: clients honour ``503``'s ``Retry-After`` hint with capped
exponential backoff and the per-cell rejection counts ship in the
report, keeping the throughput numbers honest about how much admission
pushback they absorbed.

After the threaded pass the same grid runs again against a **prefork**
fleet (``--workers``, default 4): the supervised multi-process mode
where each worker owns a whole CPython interpreter, so the fixpoint
class can scale past the GIL when the machine has the cores for it.
The report records ``cpus`` alongside ``prefork_fixpoint_speedup`` —
on a single-core box the honest answer is ~1x.

Writes the machine-readable ``BENCH_service.json`` report (same envelope
as the other ``BENCH_*.json`` files) including a final ``/stats`` scrape,
so cache hit rates ship with the timings.
"""

from __future__ import annotations

import argparse
import http.client
import json
import os
import platform
import re
import signal
import socket
import subprocess
import sys
import tempfile
import threading
import time
import urllib.request
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: The transitive closure of the first course's prerequisites — a real
#: multi-round fixpoint on every engine.
TC_QUERY = ('with $x seeded by doc("curriculum.xml")'
            '/curriculum/course[@code="c1"] '
            'recurse $x/id(./prerequisites/pre_code)')

#: A light, fully cache-served aggregation.
COUNT_QUERY = 'count(doc("curriculum.xml")//pre_code)'

QUERIES = (("warm-count", COUNT_QUERY), ("fixpoint-tc", TC_QUERY))
ENGINES = ("interpreter", "algebra", "sql")
DEFAULT_THREADS = (1, 4, 8)
WARMUP_PER_CONNECTION = 5


def make_curriculum(courses: int) -> str:
    """A prerequisite chain with a fan-out edge every third course."""
    parts = ["<curriculum>"]
    for index in range(1, courses + 1):
        pres = []
        if index < courses:
            pres.append(f"<pre_code>c{index + 1}</pre_code>")
        if index % 3 == 0 and index + 2 <= courses:
            pres.append(f"<pre_code>c{index + 2}</pre_code>")
        parts.append(f'<course code="c{index}">'
                     f"<prerequisites>{''.join(pres)}</prerequisites></course>")
    parts.append("</curriculum>")
    return "".join(parts)


def start_server(document_path: str,
                 max_concurrency: int | None = None,
                 workers: int = 1,
                 journal_path: str | None = None) -> tuple[subprocess.Popen, str]:
    """Launch ``repro-serve`` on an ephemeral port; return (process, URL).

    ``workers > 1`` starts the prefork supervisor instead of the
    in-process daemon (it needs a ``journal_path``); the startup line has
    the same shape in both modes.
    """
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src")
    command = [sys.executable, "-c",
               "from repro.service.server import main; raise SystemExit(main())",
               "--port", "0", "--doc", f"curriculum.xml={document_path}",
               "--id-attribute", "code", "--sql-store", "wal"]
    if max_concurrency is not None:
        command += ["--max-concurrency", str(max_concurrency)]
    if workers > 1:
        command += ["--workers", str(workers), "--journal", journal_path]
    process = subprocess.Popen(command, env=env, stderr=subprocess.PIPE,
                               text=True)
    lines = []
    for _ in range(10 + workers):
        line = process.stderr.readline()
        lines.append(line)
        match = re.search(r"listening on (http://[^\s]+)", line)
        if match:
            # Keep draining stderr so worker chatter cannot fill the pipe.
            threading.Thread(target=process.stderr.read, daemon=True).start()
            return process, match.group(1)
        if not line:
            break
    process.kill()
    raise RuntimeError(f"server did not start: {lines!r}")


def get_json(base_url: str, path: str) -> dict:
    with urllib.request.urlopen(base_url + path, timeout=60) as response:
        return json.loads(response.read())


#: Capped exponential backoff for admission rejections: the first retry
#: honours the server's ``Retry-After`` hint scaled down (the hint is a
#: whole-second ceiling; a benchmark client that slept a full second per
#: rejection would serialize), doubling per attempt up to the cap.
RETRY_ATTEMPTS = 8
RETRY_BASE_S = 0.01
RETRY_CAP_S = 0.5


def run_clients(base_url: str, query: str, engine: str, threads: int,
                requests: int) -> tuple[float, int, int]:
    """Fire *requests* queries from *threads* clients.

    Each client thread keeps one persistent HTTP/1.1 connection (as a real
    service client would) and sends a few untimed warm-up requests first —
    keep-alive pins a connection to one server worker thread, so this also
    warms that worker's thread-local SQLite store.  A ``503 Saturated``
    admission rejection is not a failure: clients honour ``Retry-After``
    with capped exponential backoff and re-send.  Returns (wall seconds,
    items per response, admission rejections absorbed).
    """
    host, port = base_url.removeprefix("http://").split(":")
    body = json.dumps({"query": query, "engine": engine})
    headers = {"Content-Type": "application/json"}
    per_thread = requests // threads
    barrier = threading.Barrier(threads + 1)
    failures: list[str] = []
    counts: set[int] = set()
    rejections = [0]
    tally = threading.Lock()

    def post(connection) -> dict:
        """POST once, retrying admission rejections with backoff."""
        for attempt in range(RETRY_ATTEMPTS):
            connection.request("POST", "/query", body, headers)
            raw = connection.getresponse()
            status = raw.status
            retry_after = raw.getheader("Retry-After")
            response = json.loads(raw.read())
            if status != 503:
                return response
            with tally:
                rejections[0] += 1
            hinted = float(retry_after) if retry_after else 1.0
            delay = min(min(hinted, RETRY_BASE_S) * (2 ** attempt),
                        RETRY_CAP_S)
            time.sleep(delay)
        raise RuntimeError(
            f"server still saturated after {RETRY_ATTEMPTS} retries")

    def client() -> None:
        connection = None
        try:
            connection = http.client.HTTPConnection(host, int(port),
                                                    timeout=120)
            connection.connect()
            connection.sock.setsockopt(socket.IPPROTO_TCP,
                                       socket.TCP_NODELAY, 1)
            for _ in range(WARMUP_PER_CONNECTION):
                response = post(connection)
                if not response.get("ok"):
                    failures.append(response.get("error", "unknown"))
                    break
                counts.add(response["count"])
        except Exception as error:  # noqa: BLE001 - reported to the caller
            failures.append(str(error))
        finally:
            # Always reach the barrier, even on a failed warm-up — the
            # main thread is parked on it.
            barrier.wait()
        try:
            if not failures:
                for _ in range(per_thread):
                    response = post(connection)
                    if not response.get("ok"):
                        failures.append(response.get("error", "unknown"))
        except Exception as error:  # noqa: BLE001 - reported to the caller
            failures.append(str(error))
        finally:
            if connection is not None:
                connection.close()

    workers = [threading.Thread(target=client) for _ in range(threads)]
    for worker in workers:
        worker.start()
    barrier.wait()
    started = time.perf_counter()
    for worker in workers:
        worker.join()
    elapsed = time.perf_counter() - started
    if failures:
        raise RuntimeError(f"{len(failures)} failed requests: {failures[0]}")
    assert len(counts) == 1, f"responses disagreed on item count: {counts}"
    return elapsed, counts.pop(), rejections[0]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--courses", type=int, default=40,
                        help="size of the generated curriculum (default 40)")
    parser.add_argument("--requests", type=int, default=96,
                        help="fixpoint requests per (engine, thread-count) "
                             "cell, split across the client threads "
                             "(default 96; the light query sends 5x)")
    parser.add_argument("--threads", type=int, nargs="+",
                        default=list(DEFAULT_THREADS),
                        help="client thread counts (default: 1 4 8)")
    parser.add_argument("--repeats", type=int, default=3,
                        help="measurements per cell; the best (shortest) "
                             "wall time is reported (default 3)")
    parser.add_argument("--engines", nargs="+", default=list(ENGINES),
                        choices=list(ENGINES))
    parser.add_argument("--max-concurrency", type=int, default=6,
                        help="server admission limit; client thread counts "
                             "above it exercise the 503/Retry-After backoff "
                             "path (default 6, 0 disables admission control)")
    parser.add_argument("--workers", type=int, default=4,
                        help="prefork worker count for the second, "
                             "multi-process pass (default 4; 0 skips the "
                             "prefork pass entirely)")
    parser.add_argument("--json-dir", default=str(REPO_ROOT),
                        help="directory for BENCH_service.json")
    arguments = parser.parse_args(argv)

    with tempfile.NamedTemporaryFile("w", suffix=".xml", delete=False) as handle:
        handle.write(make_curriculum(arguments.courses))
        document_path = handle.name

    modes = [("threaded", 1)]
    if arguments.workers > 1:
        modes.append(("prefork", arguments.workers))

    results = []
    stats_by_mode = {}
    journal_dir = tempfile.mkdtemp(prefix="repro-bench-journal-")
    try:
        for mode, workers in modes:
            journal_path = os.path.join(journal_dir, f"{mode}.journal")
            process, base_url = start_server(
                document_path,
                max_concurrency=arguments.max_concurrency or None,
                workers=workers, journal_path=journal_path)
            try:
                for engine in arguments.engines:
                    for label, query in QUERIES:
                        requests = (arguments.requests * 5
                                    if label == "warm-count"
                                    else arguments.requests)
                        baseline = None
                        for threads in arguments.threads:
                            elapsed, items, rejections = min(
                                (run_clients(base_url, query, engine,
                                             threads, requests)
                                 for _ in range(max(arguments.repeats, 1))),
                                key=lambda triple: triple[0])
                            rps = requests / elapsed
                            baseline = baseline if baseline is not None else rps
                            results.append({
                                "query": label,
                                "engine": engine,
                                "mode": mode,
                                "workers": workers,
                                "client_threads": threads,
                                "requests": requests,
                                "items": items,
                                "seconds": round(elapsed, 4),
                                "requests_per_second": round(rps, 1),
                                "speedup_vs_1_thread": round(rps / baseline, 2),
                                "rejections_503": rejections,
                                "repeats": arguments.repeats,
                            })
                            print(f"{mode:<9} {engine:<12} {label:<12} "
                                  f"{threads} client thread(s): "
                                  f"{rps:8.1f} req/s "
                                  f"({results[-1]['speedup_vs_1_thread']}x "
                                  f"vs 1 thread, {rejections} x 503 retried)")
                if mode == "threaded":
                    stats_by_mode[mode] = get_json(base_url, "/stats")
            finally:
                process.send_signal(signal.SIGTERM)
                process.wait(timeout=30)
    finally:
        os.unlink(document_path)
        for name in os.listdir(journal_dir):
            os.unlink(os.path.join(journal_dir, name))
        os.rmdir(journal_dir)

    def best_fixpoint_rps(mode: str) -> float | None:
        cells = [cell["requests_per_second"] for cell in results
                 if cell["mode"] == mode and cell["query"] == "fixpoint-tc"]
        return max(cells) if cells else None

    threaded_fixpoint = best_fixpoint_rps("threaded")
    prefork_fixpoint = best_fixpoint_rps("prefork")
    payload = {
        "schema": "repro-bench-service",
        "schema_version": 2,
        "label": "service",
        "python": platform.python_version(),
        # Prefork beats the threaded GIL ceiling only when there are
        # cores to spread the workers over; ship the cpu count so a
        # single-core CI result is not misread as a regression.
        "cpus": os.cpu_count(),
        "courses": arguments.courses,
        "max_concurrency": arguments.max_concurrency or None,
        "prefork_workers": (arguments.workers
                            if arguments.workers > 1 else None),
        "prefork_fixpoint_speedup": (
            round(prefork_fixpoint / threaded_fixpoint, 2)
            if threaded_fixpoint and prefork_fixpoint else None),
        "rejections_503_total": sum(cell["rejections_503"]
                                    for cell in results),
        "results": results,
        "server_stats": stats_by_mode.get("threaded"),
    }
    path = Path(arguments.json_dir) / "BENCH_service.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
