"""CI guard: query tracing must be ~free while it is switched off.

The observability layer instruments the hottest loops in the repo — the
per-round fixpoint drivers and the engine dispatch around them — behind
``if trace is not None`` guards.  This script verifies the promise that a
query evaluated *without* ``trace=True`` pays (almost) nothing for those
guards::

    PYTHONPATH=src python benchmarks/check_trace_overhead.py

It times the same workload twice, interleaved, taking the min over many
samples (min-of-N cancels scheduler noise far better than means):

* **instrumented** — the shipped code, ``trace`` left off;
* **baseline** — the shipped code with the fixpoint drivers and
  ``FixpointEngine.run`` monkey-patched to uninstrumented copies defined
  in this file (the pre-observability hot loops, guard branches removed).

The check fails (exit 1) when the instrumented variant is more than
``--tolerance`` (default 2%) slower than the baseline.  Timings below the
``--floor-ms`` noise floor abort with an error instead of silently
passing, so the guard cannot degrade into a no-op on fast machines —
raise ``--inner`` in that case.
"""

from __future__ import annotations

import argparse
import sys
import time
from collections.abc import Callable, Sequence

import repro.fixpoint.engine as fixpoint_engine
from repro.bench.queries import get_workload
from repro.errors import FixpointError
from repro.fixpoint.engine import FixpointEngine, FixpointResult
from repro.fixpoint.stats import FixpointStatistics
from repro.session import Session
from repro.settings import EvalSettings
from repro.xdm.sequence import ensure_node_sequence, node_except, node_union


# --------------------------------------------------------------------------
# Uninstrumented baseline copies of the hot loops (no `trace` parameter, no
# guard branches).  Kept in lock-step with repro.fixpoint.naive/delta minus
# every line mentioning spans — the diff against those modules IS the cost
# being measured.
# --------------------------------------------------------------------------

def _order_key(node):
    return node.order_key


def _merge_new(result: list, seen: set, produced: Sequence) -> int:
    fresh = []
    for node in produced:
        key = node.order_key
        if key not in seen:
            seen.add(key)
            fresh.append(node)
    if fresh:
        result.extend(fresh)
        result.sort(key=_order_key)
    return len(fresh)


def _baseline_naive(body, seed, max_iterations=100_000, statistics=None,
                    seed_is_initial_result=False, trace=None, governor=None):
    seed_nodes = ensure_node_sequence(list(seed), "inflationary fixed point seed")
    result: list = []
    seen: set = set()
    if seed_is_initial_result:
        _merge_new(result, seen, seed_nodes)
        if statistics is not None:
            statistics.algorithm = "naive"
            statistics.record(0, 0, len(seed_nodes), len(result), len(result))
    else:
        fed = seed_nodes
        produced = body(list(fed))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        _merge_new(result, seen, produced)
        if statistics is not None:
            statistics.algorithm = "naive"
            statistics.record(0, len(fed), len(produced), len(result), len(result))
    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iterations:
            raise FixpointError(
                f"inflationary fixed point did not converge within {max_iterations} iterations"
            )
        fed_count = len(result)
        produced = body(list(result))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        new_nodes = _merge_new(result, seen, produced)
        if statistics is not None:
            statistics.record(iteration, fed_count, len(produced), new_nodes, len(result))
        if new_nodes == 0:
            return result


def _baseline_delta(body, seed, max_iterations=100_000, statistics=None,
                    seed_is_initial_result=False, trace=None, governor=None):
    seed_nodes = ensure_node_sequence(list(seed), "inflationary fixed point seed")
    if seed_is_initial_result:
        result = node_union(seed_nodes, [])
        delta = list(result)
        if statistics is not None:
            statistics.algorithm = "delta"
            statistics.record(0, 0, len(seed_nodes), len(result), len(result))
    else:
        fed = seed_nodes
        produced = body(list(fed))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        result = node_union(produced, [])
        delta = list(result)
        if statistics is not None:
            statistics.algorithm = "delta"
            statistics.record(0, len(fed), len(produced), len(result), len(result))
    iteration = 0
    while delta:
        iteration += 1
        if iteration > max_iterations:
            raise FixpointError(
                f"inflationary fixed point did not converge within {max_iterations} iterations"
            )
        fed = delta
        produced = body(list(fed))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        delta = node_except(produced, result)
        combined = node_union(delta, result)
        if statistics is not None:
            statistics.record(iteration, len(fed), len(produced), len(delta), len(combined))
        result = combined
    return result


def _baseline_run(self, body: Callable[[list], list], seed, algorithm="naive",
                  seed_is_initial_result=False, trace=None, governor=None) -> FixpointResult:
    if algorithm not in fixpoint_engine.ALGORITHMS:
        raise FixpointError(f"unknown fixed point algorithm '{algorithm}'")
    statistics = FixpointStatistics(algorithm=algorithm) if self.collect_statistics else None
    if algorithm == "delta":
        value = _baseline_delta(body, seed, self.max_iterations, statistics,
                                seed_is_initial_result=seed_is_initial_result)
    else:
        value = _baseline_naive(body, seed, self.max_iterations, statistics,
                                seed_is_initial_result=seed_is_initial_result)
    return FixpointResult(value=value,
                          statistics=statistics or FixpointStatistics(algorithm=algorithm))


class _patched_baseline:
    """Context manager that swaps the uninstrumented copies in and out."""

    def __enter__(self):
        self._saved = (fixpoint_engine.naive_fixpoint,
                       fixpoint_engine.delta_fixpoint,
                       FixpointEngine.run)
        fixpoint_engine.naive_fixpoint = _baseline_naive
        fixpoint_engine.delta_fixpoint = _baseline_delta
        FixpointEngine.run = _baseline_run
        return self

    def __exit__(self, *exc_info):
        (fixpoint_engine.naive_fixpoint,
         fixpoint_engine.delta_fixpoint,
         FixpointEngine.run) = self._saved
        return False


# --------------------------------------------------------------------------
# Measurement
# --------------------------------------------------------------------------

def _make_runner(inner: int):
    """Build ``run()`` evaluating the workload *inner* times per sample."""
    workload = get_workload("curriculum")
    document = workload.size("tiny").build_document()
    query = workload.ifp_query(algorithm="delta")
    session = Session()
    session.register_document(workload.document_uri, document)
    settings = EvalSettings(engine="interpreter", ifp_algorithm="delta")
    prepared = session.prepare(query, settings=settings)
    prepared.run()  # warm the module/plan caches outside the measurement

    def run() -> int:
        count = 0
        for _ in range(inner):
            count += len(prepared.run().items)
        return count

    return run


def measure(samples: int, inner: int) -> tuple[float, float]:
    """Interleaved min-of-*samples* seconds for (instrumented, baseline)."""
    run = _make_runner(inner)
    best_instrumented = best_baseline = float("inf")
    for _ in range(samples):
        started = time.perf_counter()
        run()
        best_instrumented = min(best_instrumented, time.perf_counter() - started)
        with _patched_baseline():
            started = time.perf_counter()
            run()
            best_baseline = min(best_baseline, time.perf_counter() - started)
    return best_instrumented, best_baseline


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--samples", type=int, default=12,
                        help="interleaved A/B sample pairs (default 12)")
    parser.add_argument("--inner", type=int, default=30,
                        help="query evaluations per sample (default 30)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="maximum allowed relative overhead (default 0.02)")
    parser.add_argument("--floor-ms", type=float, default=5.0,
                        help="fail if the baseline sample time is below this "
                             "noise floor (default 5 ms); raise --inner instead")
    arguments = parser.parse_args(argv)

    instrumented, baseline = measure(arguments.samples, arguments.inner)
    if baseline * 1000.0 < arguments.floor_ms:
        print(f"trace overhead check INVALID: baseline sample "
              f"{baseline * 1000.0:.2f} ms is below the {arguments.floor_ms:.1f} ms "
              f"noise floor — raise --inner", file=sys.stderr)
        return 1
    overhead = instrumented / baseline - 1.0
    verdict = "ok" if overhead <= arguments.tolerance else "FAILED"
    print(f"instrumented (trace off): {instrumented * 1000.0:8.2f} ms")
    print(f"uninstrumented baseline:  {baseline * 1000.0:8.2f} ms")
    print(f"overhead: {overhead:+.2%} (allowed ≤ {arguments.tolerance:.0%}) — {verdict}")
    if overhead > arguments.tolerance:
        print("\ntrace overhead check FAILED: disabled tracing costs more than "
              f"{arguments.tolerance:.0%} — audit the `if trace is not None` "
              "guards on the hot paths", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
