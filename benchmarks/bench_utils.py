"""Helpers shared by the benchmark modules."""

from __future__ import annotations

from repro.bench.harness import BenchmarkHarness


def run_workload(harness: BenchmarkHarness, benchmark, workload: str, size: str,
                 engine: str, algorithm: str, seed_limit=None):
    """Benchmark one (workload, size, engine, algorithm) combination.

    The document is prepared outside the measured function; the recorded
    extra_info carries the Table 2 quantities (nodes fed back, depth) so the
    ``--benchmark-only`` output doubles as the experiment log.
    """
    harness.prepare(workload, size)
    result_holder = {}

    def run():
        result_holder["result"] = harness.run(
            workload, size, engine=engine, algorithm=algorithm, seed_limit=seed_limit
        )

    benchmark(run)
    result = result_holder["result"]
    benchmark.extra_info.update({
        "workload": workload,
        "size": size,
        "engine": engine,
        "algorithm": algorithm,
        "items": result.item_count,
        "nodes_fed_back": result.nodes_fed_back,
        "recursion_depth": result.recursion_depth,
        "paper_row": result.paper_row,
    })
    return result
