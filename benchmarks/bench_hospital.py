"""Experiment E4 — Table 2 row 8: hospital hereditary-disease exploration.

Vertical recursion from each patient into nested ``parent`` subtrees of
depth at most 5.  The paper reports 99,381 (Naive) vs 50,000 (Delta) nodes
fed back — a factor ~2 even for this computationally light query.
"""

import pytest

from bench_utils import run_workload


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_hospital_tiny_ifp(benchmark, harness, algorithm):
    run_workload(harness, benchmark, "hospital", "tiny", "ifp", algorithm)


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_hospital_medium_ifp(benchmark, harness, algorithm):
    """1,000 patient records (scaled-down default), depth <= 5."""
    result = run_workload(harness, benchmark, "hospital", "medium", "ifp", algorithm,
                          seed_limit=150)
    assert result.recursion_depth <= 5


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_hospital_tiny_udf(benchmark, harness, algorithm):
    run_workload(harness, benchmark, "hospital", "tiny", "udf", algorithm)
