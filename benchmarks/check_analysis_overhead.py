"""CI guard: the static analyzer must stay under 2% of query time.

The analyzer (:mod:`repro.analysis`) runs in the compile pipeline of every
evaluation — scopes, cardinality and distributivity before any engine
dispatches — and its report is cached alongside the plan, keyed on the
module fingerprint.  This script verifies the promise that the pass adds
(almost) nothing to a steady-state query::

    PYTHONPATH=src python benchmarks/check_analysis_overhead.py

It compares the same prepared workload under two settings:

* **analyzed** — the shipped default, ``EvalSettings(analyze=True)``:
  every run pays the fingerprint + analysis-cache lookup;
* **baseline** — identical settings with ``analyze=False``: the pass is
  skipped entirely.

The measurement follows :mod:`benchmarks.check_limits_overhead`, built
for noisy shared runners:

* CPU seconds (``time.process_time``), not wall clock — CPU steal on a
  virtualized host adds one-sided wall-clock noise that would drown a
  2% signal;
* alternating *blocks* of same-settings runs with a few untimed warm-up
  runs at each block start, order swapping every pair so drift cannot
  systematically favour one side;
* the **min** of several independent estimates — noise only ever
  inflates an estimate, so the min converges on the true overhead while
  a genuine regression shows up in every estimate, including the min.

The check fails (exit 1) when the analyzed variant is more than
``--tolerance`` (default 2%) slower than the baseline.  Block times
below the ``--floor-ms`` noise floor abort with an error instead of
silently passing, so the guard cannot degrade into a no-op on fast
machines — raise ``--inner`` in that case.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.queries import get_workload
from repro.session import Session
from repro.settings import EvalSettings

#: Untimed runs at the start of every block, letting the adaptive
#: interpreter re-specialize the analysis call sites for the variant.
BLOCK_WARMUP = 3


def _make_block_runner(inner: int):
    """Build ``block(settings) -> CPU seconds`` over one warm session."""
    workload = get_workload("curriculum")
    document = workload.size("tiny").build_document()
    query = workload.ifp_query(algorithm="delta")
    session = Session()
    session.register_document(workload.document_uri, document)
    analyzed = EvalSettings(engine="interpreter", ifp_algorithm="delta",
                            analyze=True)
    baseline = analyzed.replace(analyze=False)
    prepared = session.prepare(query, settings=analyzed)
    prepared.run(settings=analyzed)  # warm the module/plan/analysis caches
    prepared.run(settings=baseline)  # warm the analysis-off path too

    def block(settings: EvalSettings) -> float:
        for _ in range(BLOCK_WARMUP):
            prepared.run(settings=settings)
        started = time.process_time()
        for _ in range(inner):
            prepared.run(settings=settings)
        return time.process_time() - started

    return block, analyzed, baseline


def measure(estimates: int, pairs: int, inner: int) -> list[tuple[float, float]]:
    """Return *estimates* independent ``(analyzed, baseline)`` CPU totals.

    Each estimate alternates *pairs* block pairs (analyzed block /
    baseline block, order swapping every pair) and sums the block CPU
    times per variant.
    """
    block, analyzed_settings, baseline_settings = _make_block_runner(inner)
    results = []
    for _ in range(estimates):
        analyzed_total = baseline_total = 0.0
        for index in range(pairs):
            order = ((analyzed_settings, baseline_settings) if index % 2 == 0
                     else (baseline_settings, analyzed_settings))
            for settings in order:
                elapsed = block(settings)
                if settings is analyzed_settings:
                    analyzed_total += elapsed
                else:
                    baseline_total += elapsed
        results.append((analyzed_total, baseline_total))
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--estimates", type=int, default=5,
                        help="independent overhead estimates; the min is "
                             "the verdict (default 5)")
    parser.add_argument("--pairs", type=int, default=4,
                        help="alternating block pairs per estimate (default 4)")
    parser.add_argument("--inner", type=int, default=30,
                        help="timed query evaluations per block (default 30)")
    parser.add_argument("--tolerance", type=float, default=0.02,
                        help="maximum allowed relative overhead (default 0.02)")
    parser.add_argument("--floor-ms", type=float, default=20.0,
                        help="fail if a baseline block total is below this "
                             "noise floor (default 20 ms); raise --inner "
                             "instead")
    arguments = parser.parse_args(argv)

    results = measure(arguments.estimates, arguments.pairs, arguments.inner)
    floor_s = arguments.floor_ms / 1000.0 * arguments.pairs
    slowest = max(baseline for _, baseline in results)
    if slowest < floor_s:
        print(f"analysis overhead check INVALID: baseline estimate "
              f"{slowest * 1000.0:.2f} CPU ms is below the noise floor "
              f"({floor_s * 1000.0:.0f} ms) — raise --inner", file=sys.stderr)
        return 1
    overheads = sorted(analyzed / baseline - 1.0
                       for analyzed, baseline in results)
    overhead = overheads[0]
    verdict = "ok" if overhead <= arguments.tolerance else "FAILED"
    print("estimates: " + " ".join(f"{value:+.2%}" for value in overheads))
    print(f"overhead (min of {arguments.estimates}): {overhead:+.2%} "
          f"(allowed ≤ {arguments.tolerance:.0%}) — {verdict}")
    if overhead > arguments.tolerance:
        print("\nanalysis overhead check FAILED: the static analyzer costs "
              f"more than {arguments.tolerance:.0%} per evaluation even in "
              "the most favourable estimate — audit Session._analysis_for "
              "and the analysis-cache key", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
