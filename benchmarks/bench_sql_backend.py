"""Bench: the three execution paths side by side — interpreter vs. algebra vs. SQL.

Runs the workload fixpoints under

* ``ifp`` — the tree-walking interpreter's native IFP operator,
* ``algebra`` — the in-memory Relational XQuery backend (µ/µ∆ plans), and
* ``sql`` — the SQLite backend, where distributive recursions execute as a
  single ``WITH RECURSIVE`` statement and everything else iterates the
  temp-table driver loop,

under both the Naive and the Delta algorithm, and writes the
machine-readable ``BENCH_sql_backend.json`` report::

    PYTHONPATH=src python benchmarks/bench_sql_backend.py --sizes smoke

Engines that cannot run a workload (the algebra compiler has documented
gaps, e.g. positional predicates) are skipped with a notice rather than
failing the whole comparison.  Result digests are cross-checked between the
``ifp`` and ``sql`` engines on every (workload, size, algorithm) cell — a
mismatch aborts the bench, so the timings can only ever describe equivalent
computations.
"""

from __future__ import annotations

import argparse
import sys

from repro.bench.harness import BenchmarkHarness, RunResult
from repro.bench.reporting import format_milliseconds, write_bench_json
from repro.errors import ReproError

ENGINES = ("ifp", "algebra", "sql")
ALGORITHMS = ("naive", "delta")

#: (workload, size) rows per selection (ordered smallest to largest).
SIZE_SELECTIONS: dict[str, list[tuple[str, str]]] = {
    "smoke": [("curriculum", "tiny"), ("bidder-network", "tiny")],
    "full": [
        ("curriculum", "tiny"),
        ("curriculum", "medium"),
        ("bidder-network", "tiny"),
        ("bidder-network", "small"),
        ("hospital", "tiny"),
    ],
}


def run_comparison(selection: str, repeats: int = 1,
                   seed_limit: int | None = None) -> list[RunResult]:
    harness = BenchmarkHarness()
    results: list[RunResult] = []
    digests: dict[tuple[str, str, str], dict[str, str]] = {}
    for workload, size in SIZE_SELECTIONS[selection]:
        for engine in ENGINES:
            for algorithm in ALGORITHMS:
                best: RunResult | None = None
                try:
                    for _ in range(max(repeats, 1)):
                        candidate = harness.run(workload, size, engine=engine,
                                                algorithm=algorithm,
                                                seed_limit=seed_limit)
                        if best is None or candidate.seconds < best.seconds:
                            best = candidate
                except ReproError as error:
                    print(f"   skip {workload}/{size} {engine}/{algorithm}: {error}",
                          file=sys.stderr)
                    continue
                results.append(best)
                digests.setdefault((workload, size, algorithm), {})[engine] = \
                    best.result_digest
                print(f"   {workload:>16}/{size:<6} {engine:>7}/{algorithm:<5} "
                      f"{format_milliseconds(best.seconds):>10}  "
                      f"items={best.item_count}")
    for (workload, size, algorithm), by_engine in digests.items():
        if "ifp" in by_engine and "sql" in by_engine:
            if by_engine["ifp"] != by_engine["sql"]:
                raise SystemExit(
                    f"result mismatch between ifp and sql on "
                    f"{workload}/{size} ({algorithm})"
                )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare the interpreter, algebra and SQL execution paths")
    parser.add_argument("--sizes", choices=sorted(SIZE_SELECTIONS), default="smoke")
    parser.add_argument("--repeats", type=int, default=1,
                        help="runs per cell; the fastest is reported")
    parser.add_argument("--seed-limit", type=int, default=None,
                        help="override the per-size default number of seeds")
    parser.add_argument("--json-dir", default=".",
                        help="directory for BENCH_sql_backend.json")
    arguments = parser.parse_args(argv)

    print(f"== interpreter vs. algebra vs. sql ({arguments.sizes}) ==")
    results = run_comparison(arguments.sizes, repeats=arguments.repeats,
                             seed_limit=arguments.seed_limit)
    path = write_bench_json(results, "sql_backend", arguments.json_dir,
                            extra={"sizes": arguments.sizes,
                                   "repeats": arguments.repeats})
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
