"""Supplementary bench: µ vs µ∆ and row vs columnar storage in the
Relational XQuery backend.

Two aspects of the algebra engine are measured on whole-catalogue fixpoint
plans (one µ/µ∆ operator over all seeds at once):

* **algorithm** — µ (Naive, whole result fed back) against µ∆ (Delta, only
  the per-round delta fed back), counting rows as the algebraic counterpart
  of Table 2's node counts;
* **storage backend** — the reference row-tuple tables against the columnar
  backend (see :mod:`repro.algebra.storage`), same plans, same results.

Run under pytest-benchmark for calibrated per-case numbers::

    PYTHONPATH=src python -m pytest benchmarks/bench_algebra_backend.py

or as a script for the side-by-side backend comparison, which writes the
machine-readable ``BENCH_algebra_backend.json`` report::

    PYTHONPATH=src python benchmarks/bench_algebra_backend.py --sizes full
"""

from __future__ import annotations

import argparse
import sys
import time
from dataclasses import dataclass
from collections.abc import Callable

try:
    import pytest
except ImportError:  # pragma: no cover - script mode on minimal installs
    pytest = None

from repro.algebra.compiler import AlgebraCompiler
from repro.algebra.evaluator import AlgebraEvaluator
from repro.bench.harness import RunResult, result_digest
from repro.bench.reporting import write_bench_json
from repro.datagen.curriculum import CurriculumConfig, generate_curriculum
from repro.datagen.xmark import XMarkConfig, generate_auction_site
from repro.xquery.context import DocumentResolver
from repro.xquery.parser import parse_expression

BACKENDS = ("row", "columnar")

CURRICULUM_TEMPLATE = """
with $x seeded by doc("curriculum.xml")/curriculum/course
recurse $x/id (./prerequisites/pre_code) using {algorithm}
"""

# The bidder network of Figure 10, inlined (no prolog in expression mode):
# recursively connect sellers to the people bidding in their auctions.
BIDDER_TEMPLATE = """
with $x seeded by doc("auction.xml")//people/person
recurse (for $id in $x/@id
         let $b := doc("auction.xml")//open_auction[seller/@person = $id]/bidder/personref
         return doc("auction.xml")//people/person[@id = $b/@person])
using {algorithm}
"""


@dataclass(frozen=True)
class PlanCase:
    """One benchmarked fixpoint plan: a workload document plus a query."""

    workload: str
    size: str
    document_uri: str
    build_document: Callable
    query_template: str


CASES: dict[str, PlanCase] = {
    "curriculum-tiny": PlanCase(
        "curriculum", "tiny", "curriculum.xml",
        lambda: generate_curriculum(CurriculumConfig.tiny()), CURRICULUM_TEMPLATE),
    "curriculum-medium": PlanCase(
        "curriculum", "medium", "curriculum.xml",
        lambda: generate_curriculum(CurriculumConfig.medium()), CURRICULUM_TEMPLATE),
    "bidder-network-tiny": PlanCase(
        "bidder-network", "tiny", "auction.xml",
        lambda: generate_auction_site(XMarkConfig.tiny()), BIDDER_TEMPLATE),
    "bidder-network-small": PlanCase(
        "bidder-network", "small", "auction.xml",
        lambda: generate_auction_site(XMarkConfig.small()), BIDDER_TEMPLATE),
}

#: Case selections for the script mode (ordered smallest to largest).
SIZE_SELECTIONS = {
    "smoke": ["curriculum-tiny", "bidder-network-tiny"],
    "full": ["curriculum-tiny", "curriculum-medium",
             "bidder-network-tiny", "bidder-network-small"],
}


def _prepare(case: PlanCase):
    document = case.build_document()
    resolver = DocumentResolver()
    resolver.register(case.document_uri, document)
    return document, resolver


def _compile(case: PlanCase, document, resolver, algorithm: str, backend: str):
    compiler = AlgebraCompiler(documents=resolver, document=document, backend=backend)
    expression = parse_expression(case.query_template.format(algorithm=algorithm))
    return compiler.compile(expression)


# ---------------------------------------------------------------------------
# pytest-benchmark entry points (CI smoke runs these on the tiny case)
# ---------------------------------------------------------------------------


if pytest is not None:

    @pytest.fixture(scope="module")
    def tiny_case():
        case = CASES["curriculum-tiny"]
        document, resolver = _prepare(case)
        return case, document, resolver

    @pytest.mark.parametrize("algorithm", ["naive", "delta"])
    @pytest.mark.parametrize("backend", BACKENDS)
    def test_algebra_fixpoint_curriculum(benchmark, tiny_case, algorithm, backend):
        case, document, resolver = tiny_case
        plan = _compile(case, document, resolver, algorithm, backend)

        def run():
            engine = AlgebraEvaluator(backend=backend)
            table = engine.evaluate_plan(plan)
            return engine, table

        engine, table = benchmark(run)
        benchmark.extra_info.update({
            "variant": "mu_delta" if algorithm == "delta" else "mu",
            "backend": backend,
            "result_rows": len(table),
            "rows_fed_back": engine.statistics.total_rows_fed_back,
        })


# ---------------------------------------------------------------------------
# script mode: side-by-side backend comparison + BENCH_*.json
# ---------------------------------------------------------------------------


def run_case(case: PlanCase, algorithm: str, backend: str,
             document, resolver, repeats: int = 3) -> RunResult:
    """Best-of-*repeats* evaluation of one (case, algorithm, backend) cell."""
    plan = _compile(case, document, resolver, algorithm, backend)
    best = None
    for _ in range(repeats):
        engine = AlgebraEvaluator(backend=backend)
        started = time.perf_counter()
        table = engine.evaluate_plan(plan)
        elapsed = time.perf_counter() - started
        if best is None or elapsed < best[0]:
            best = (elapsed, engine, table)
    elapsed, engine, table = best
    statistics = engine.last_run_statistics
    return RunResult(
        workload=case.workload,
        size=case.size,
        engine="algebra",
        algorithm=algorithm,
        seconds=elapsed,
        item_count=len(table),
        result_digest=result_digest(table.column_values("item")),
        nodes_fed_back=statistics.total_rows_fed_back,
        recursion_depth=statistics.max_recursion_depth,
        ifp_evaluations=len(statistics.fixpoint_runs),
        backend=backend,
    )


def run_comparison(case_names: list[str], repeats: int = 3) -> list[RunResult]:
    results: list[RunResult] = []
    for name in case_names:
        case = CASES[name]
        document, resolver = _prepare(case)
        for algorithm in ("naive", "delta"):
            for backend in BACKENDS:
                results.append(run_case(case, algorithm, backend,
                                        document, resolver, repeats=repeats))
    return results


def render_backend_comparison(results: list[RunResult]) -> str:
    """Row vs columnar times side by side, one line per (case, algorithm)."""
    header = (f"{'Workload':<22} {'Size':<8} {'Algorithm':<10} "
              f"{'Row':>12} {'Columnar':>12} {'Speedup':>9}")
    lines = [header, "-" * len(header)]
    by_cell: dict[tuple[str, str, str], dict[str, RunResult]] = {}
    for result in results:
        key = (result.workload, result.size, result.algorithm)
        by_cell.setdefault(key, {})[result.backend] = result
    for (workload, size, algorithm), backends in by_cell.items():
        row, columnar = backends.get("row"), backends.get("columnar")
        if row is None or columnar is None:
            continue
        if row.result_digest != columnar.result_digest:
            raise AssertionError(
                f"backend results diverge on {workload}/{size}/{algorithm}"
            )
        speedup = row.seconds / columnar.seconds if columnar.seconds else float("inf")
        lines.append(
            f"{workload:<22} {size:<8} {algorithm:<10} "
            f"{row.seconds * 1000:>9.1f} ms {columnar.seconds * 1000:>9.1f} ms "
            f"{speedup:>8.2f}x"
        )
    return "\n".join(lines)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Compare row vs columnar algebra backends on fixpoint plans")
    parser.add_argument("--sizes", choices=sorted(SIZE_SELECTIONS), default="full",
                        help="which workload sizes to run (default: full)")
    def _positive_int(value: str) -> int:
        count = int(value)
        if count < 1:
            raise argparse.ArgumentTypeError("must be >= 1")
        return count

    parser.add_argument("--repeats", type=_positive_int, default=3,
                        help="timed repetitions per cell (best is reported)")
    parser.add_argument("--json-dir", default=".",
                        help="directory for BENCH_algebra_backend.json "
                             "(default: current directory)")
    arguments = parser.parse_args(argv)

    results = run_comparison(SIZE_SELECTIONS[arguments.sizes], repeats=arguments.repeats)
    print(render_backend_comparison(results))
    path = write_bench_json(results, "algebra_backend", arguments.json_dir,
                            extra={"sizes": arguments.sizes,
                                   "repeats": arguments.repeats})
    print(f"\nwrote {path}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
