"""Supplementary bench: µ vs µ∆ in the Relational XQuery backend.

The algebraic counterpart of the Naive/Delta comparison: compile Query Q1 to
a plan containing the fixpoint operator and evaluate it with µ (whole result
fed back) and µ∆ (delta fed back), counting rows.
"""

import pytest

from repro.algebra.compiler import AlgebraCompiler
from repro.algebra.evaluator import AlgebraEvaluator
from repro.datagen.curriculum import CurriculumConfig, generate_curriculum
from repro.xquery.context import DocumentResolver
from repro.xquery.parser import parse_expression

QUERY_TEMPLATE = """
with $x seeded by doc("curriculum.xml")/curriculum/course
recurse $x/id (./prerequisites/pre_code) using {algorithm}
"""


@pytest.fixture(scope="module")
def compiled_plans():
    document = generate_curriculum(CurriculumConfig.tiny())
    resolver = DocumentResolver()
    resolver.register("curriculum.xml", document)
    compiler = AlgebraCompiler(documents=resolver, document=document)
    plans = {}
    for algorithm in ("naive", "delta"):
        expression = parse_expression(QUERY_TEMPLATE.format(algorithm=algorithm))
        plans[algorithm] = compiler.compile(expression)
    return plans


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_algebra_fixpoint_curriculum(benchmark, compiled_plans, algorithm):
    plan = compiled_plans[algorithm]

    def run():
        engine = AlgebraEvaluator()
        table = engine.evaluate_plan(plan)
        return engine, table

    engine, table = benchmark(run)
    benchmark.extra_info.update({
        "variant": "mu_delta" if algorithm == "delta" else "mu",
        "result_rows": len(table),
        "rows_fed_back": engine.statistics.total_rows_fed_back,
    })
