"""Experiments E7/E8 and the ablation benches: distributivity analysis cost.

The distributivity check runs at query planning time, so its cost matters.
These benches measure the syntactic ``ds_$x(·)`` rules (Figure 5) and the
algebraic union push-up (Section 4.1) on the paper's recursion bodies, plus
the ablation of Section 4.1's order/duplicate stripping (without it, the δ
emitted after steps blocks the push-up and every body is rejected).
"""

import pytest

from repro.algebra.distributivity import analyze_plan_distributivity
from repro.datagen.curriculum import CurriculumConfig, generate_curriculum
from repro.distributivity import analyze_distributivity
from repro.xquery.parser import parse_expression

BODIES = {
    "q1": "$x/id (./prerequisites/pre_code)",
    "q2": "if (count($x/self::a)) then $x/* else ()",
    "bidder": (
        "for $id in $x/@id "
        'let $b := doc("auction.xml")//open_auction[seller/@person = $id]/bidder/personref '
        'return doc("auction.xml")//people/person[@id = $b/@person]'
    ),
    "unfolded-id": (
        'for $c in doc("curriculum.xml")/curriculum/course '
        "where $c/@code = $x/prerequisites/pre_code return $c"
    ),
}


@pytest.fixture(scope="module")
def curriculum_document():
    return generate_curriculum(CurriculumConfig.tiny())


@pytest.mark.parametrize("body_name", sorted(BODIES))
def test_syntactic_check(benchmark, body_name):
    """Figure 5 rules over the recursion body ASTs."""
    body = parse_expression(BODIES[body_name])
    result = benchmark(lambda: analyze_distributivity(body, "x"))
    benchmark.extra_info["distributive"] = result.safe


@pytest.mark.parametrize("body_name", sorted(BODIES))
def test_algebraic_check(benchmark, curriculum_document, body_name):
    """Compile to a plan and push the union up (Section 4.1)."""
    body = parse_expression(BODIES[body_name])
    result = benchmark(
        lambda: analyze_plan_distributivity(body, "x", document=curriculum_document)
    )
    benchmark.extra_info["distributive"] = result.distributive


@pytest.mark.parametrize("strip", [True, False], ids=["strip-order", "keep-order"])
def test_algebraic_check_order_strip_ablation(benchmark, curriculum_document, strip):
    """Ablation: Section 4.1's removal of duplicate/order bookkeeping."""
    body = parse_expression(BODIES["q1"])
    result = benchmark(
        lambda: analyze_plan_distributivity(
            body, "x", document=curriculum_document,
            ignore_order_and_duplicates=strip,
        )
    )
    benchmark.extra_info["distributive"] = result.distributive
