"""Experiment E1 — Table 2 rows 1-4: the XMark bidder network (Figure 10).

The paper reports, for growing document sizes, that Delta beats Naive by
2.2-3.3x (MonetDB/XQuery) and 1.2-2.7x (Saxon) while feeding up to ~9x fewer
nodes into the recursion body.  These benchmarks regenerate the comparison
on the synthetic auction documents; the ``tiny``/``small`` sizes run here,
the larger Table 2 rows through ``repro-table2 --preset paper``.
"""

import pytest

from bench_utils import run_workload


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_bidder_network_tiny_ifp(benchmark, harness, algorithm):
    """Native IFP operator (MonetDB/XQuery role), tiny document."""
    run_workload(harness, benchmark, "bidder-network", "tiny", "ifp", algorithm)


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_bidder_network_small_ifp(benchmark, harness, algorithm):
    """Native IFP operator, small document (Table 2 row 'small')."""
    result = run_workload(harness, benchmark, "bidder-network", "small", "ifp", algorithm,
                          seed_limit=20)
    assert result.recursion_depth >= 2


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_bidder_network_tiny_udf(benchmark, harness, algorithm):
    """Source-level fix()/delta() user-defined functions (Saxon role)."""
    run_workload(harness, benchmark, "bidder-network", "tiny", "udf", algorithm)
