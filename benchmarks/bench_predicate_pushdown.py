"""Supplementary bench: predicate pushdown (value indexes + batch kernels).

Measures, per workload document and engine, predicate-heavy queries with
pushdown enabled and disabled (the ``--no-pushdown`` A/B of the CLI; the
structural index stays on for both sides, so the delta is the predicate
path alone), plus one fixpoint whose predicate-bearing body the SQL engine
runs as a recursive CTE with pushdown and through the Python driver loop
without.  Writes the machine-readable ``BENCH_predicate_pushdown.json``::

    PYTHONPATH=src python benchmarks/bench_predicate_pushdown.py --sizes medium
    PYTHONPATH=src python benchmarks/bench_predicate_pushdown.py --sizes smoke --json-dir out

The lazy value-index builds are charged to warmup (steady-state serving
assumptions), and the reported time is the best of ``--repeats`` measured
runs.  CI smoke-runs this benchmark and compares the speedup ratios
against the committed baseline (see ``check_bench_regression.py``).
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

from repro.api import evaluate
from repro.datagen.curriculum import CurriculumConfig, generate_curriculum
from repro.datagen.hospital import HospitalConfig, generate_hospital
from repro.datagen.xmark import XMarkConfig, generate_auction_site
from repro.xquery.context import DocumentResolver

ENGINES = ("interpreter", "algebra")

VAR_BINDING_QUERY = """
declare variable $p := "person7";
count(doc("auction.xml")//personref[@person = $p])
"""


@dataclass(frozen=True)
class QueryCase:
    """One benchmarked query against one workload document."""

    workload: str
    label: str
    query: str
    #: Engines the case runs under.  Positional predicates cannot run on
    #: the algebra engine with pushdown off (the classical compiler rejects
    #: them), so that case stays interpreter-only.
    engines: tuple[str, ...] = ENGINES


def _xmark_cases(size: str) -> list[QueryCase]:
    return [
        QueryCase("xmark", "attr-eq-person",
                  'count(doc("auction.xml")//person[@id = "person7"])'),
        QueryCase("xmark", "attr-eq-personref",
                  'count(doc("auction.xml")//personref[@person = "person7"])'),
        QueryCase("xmark", "attr-eq-variable", VAR_BINDING_QUERY),
        QueryCase("xmark", "child-exists",
                  'count(doc("auction.xml")//open_auction[bidder])'),
        QueryCase("xmark", "positional-first-bidder",
                  'count(doc("auction.xml")//open_auction/bidder[1])',
                  engines=("interpreter",)),
    ]


def _hospital_cases(size: str) -> list[QueryCase]:
    return [
        QueryCase("hospital", "child-eq-name",
                  'count(doc("hospital.xml")//patient[name = "Patient 7"])'),
        QueryCase("hospital", "attr-exists",
                  'count(doc("hospital.xml")//parent[@id])'),
    ]


@dataclass(frozen=True)
class WorkloadDoc:
    name: str
    uri: str
    build: Callable
    cases: Callable[[str], list[QueryCase]]


WORKLOADS: dict[str, WorkloadDoc] = {
    "xmark": WorkloadDoc(
        "xmark", "auction.xml",
        lambda size: generate_auction_site(
            XMarkConfig.tiny() if size == "smoke" else XMarkConfig.medium()),
        _xmark_cases),
    "hospital": WorkloadDoc(
        "hospital", "hospital.xml",
        lambda size: generate_hospital(
            HospitalConfig.tiny() if size == "smoke" else HospitalConfig.medium()),
        _hospital_cases),
}

#: The SQL-engine fixpoint: a linear id-chain whose step carries a pushed
#: existence predicate.  With pushdown it is one recursive CTE inside
#: SQLite; without, the predicate blocks emission and every round decodes
#: back to XDM and re-filters in Python (the driver loop).
SQL_FIXPOINT = """
with $x seeded by doc("curriculum.xml")//course[@code = "{seed}"]
recurse $x/id(./prerequisites/pre_code)/self::course[@code] using delta
"""


def _measure(query: str, resolver: DocumentResolver, engine: str,
             use_pushdown: bool, repeats: int, warmup: int) -> tuple[float, int]:
    """Best-of-``repeats`` wall-clock seconds (after ``warmup`` runs)."""
    items = 0
    for _ in range(warmup):
        evaluate(query, documents=resolver, engine=engine,
                 use_pushdown=use_pushdown)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = evaluate(query, documents=resolver, engine=engine,
                          use_pushdown=use_pushdown)
        best = min(best, time.perf_counter() - started)
        items = len(result)
    return best, items


def run_pushdown_comparison(size: str, repeats: int, warmup: int,
                            workloads: tuple[str, ...]) -> list[dict]:
    rows: list[dict] = []
    for name in workloads:
        workload = WORKLOADS[name]
        document = workload.build(size)
        resolver = DocumentResolver()
        resolver.register(workload.uri, document)
        for case in workload.cases(size):
            for engine in case.engines:
                baseline, items = _measure(case.query, resolver, engine,
                                           use_pushdown=False, repeats=repeats,
                                           warmup=warmup)
                pushed, pushed_items = _measure(case.query, resolver, engine,
                                                use_pushdown=True,
                                                repeats=repeats, warmup=warmup)
                if items != pushed_items:
                    raise AssertionError(
                        f"{case.workload}/{case.label}/{engine}: pushdown run "
                        f"returned {pushed_items} items, baseline {items}"
                    )
                rows.append({
                    "workload": case.workload,
                    "size": size,
                    "query": case.label,
                    "engine": engine,
                    "items": items,
                    "nopushdown_seconds": round(baseline, 5),
                    "pushdown_seconds": round(pushed, 5),
                    "speedup": round(baseline / pushed, 2) if pushed else None,
                    "repeats": repeats,
                    "warmup": warmup,
                })
                print(f"{case.workload:9s} {case.label:22s} {engine:12s} "
                      f"no-push {baseline:8.4f}s  push {pushed:8.4f}s  "
                      f"speedup {baseline / pushed:6.2f}x")
    return rows


def run_sql_fixpoint_comparison(size: str, repeats: int, warmup: int) -> dict:
    """The predicate-bearing fixpoint on the sql engine: CTE vs driver loop."""
    config = CurriculumConfig.tiny() if size == "smoke" else CurriculumConfig.medium()
    document = generate_curriculum(config)
    resolver = DocumentResolver()
    resolver.register("curriculum.xml", document)
    seed = f"c{config.courses}"  # back of the catalogue: the deep closure
    query = SQL_FIXPOINT.format(seed=seed)
    baseline, items = _measure(query, resolver, "sql", use_pushdown=False,
                               repeats=repeats, warmup=warmup)
    pushed, pushed_items = _measure(query, resolver, "sql", use_pushdown=True,
                                    repeats=repeats, warmup=warmup)
    if items != pushed_items:
        raise AssertionError(
            f"sql fixpoint: pushdown returned {pushed_items} items, "
            f"driver loop {items}")
    print(f"{'curriculum':9s} {'fixpoint-cte':22s} {'sql':12s} "
          f"no-push {baseline:8.4f}s  push {pushed:8.4f}s  "
          f"speedup {baseline / pushed:6.2f}x")
    return {
        "workload": "curriculum",
        "size": size,
        "query": "fixpoint-predicate-chain",
        "engine": "sql",
        "items": items,
        "nopushdown_seconds": round(baseline, 5),
        "pushdown_seconds": round(pushed, 5),
        "speedup": round(baseline / pushed, 2) if pushed else None,
        "repeats": repeats,
        "warmup": warmup,
    }


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Predicate pushdown benchmark "
                    "(writes BENCH_predicate_pushdown.json)")
    parser.add_argument("--sizes", choices=["smoke", "medium"], default="medium",
                        help="document sizes: smoke (CI) or medium (the report)")
    parser.add_argument("--workloads", nargs="*", default=sorted(WORKLOADS),
                        choices=sorted(WORKLOADS))
    parser.add_argument("--repeats", type=int, default=3,
                        help="measured runs per combination (best is reported)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="unmeasured warmup runs per combination")
    parser.add_argument("--json-dir", default=".",
                        help="directory BENCH_predicate_pushdown.json is written into")
    arguments = parser.parse_args(argv)

    rows = run_pushdown_comparison(arguments.sizes, arguments.repeats,
                                   arguments.warmup, tuple(arguments.workloads))
    rows.append(run_sql_fixpoint_comparison(arguments.sizes, arguments.repeats,
                                            arguments.warmup))

    payload = {
        "schema": "repro-bench-predicate-pushdown",
        "schema_version": 1,
        "label": "predicate_pushdown",
        "python": platform.python_version(),
        "results": rows,
    }
    path = Path(arguments.json_dir) / "BENCH_predicate_pushdown.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
