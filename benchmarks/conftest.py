"""Shared fixtures for the benchmark suite.

Every benchmark compares algorithm Naive against algorithm Delta on one of
the paper's workloads (Table 2) or exercises one of the analysis components
(distributivity checks, algebra backend).  Document construction happens
once per session and is excluded from the measured region.
"""

from __future__ import annotations

import os
import sys

import pytest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

from repro.bench.harness import BenchmarkHarness  # noqa: E402


@pytest.fixture(scope="session")
def harness() -> BenchmarkHarness:
    """A session-wide harness so workload documents are built only once."""
    return BenchmarkHarness()
