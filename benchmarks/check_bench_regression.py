"""CI bench regression guard for BENCH_predicate_pushdown.json.

Compares a freshly produced benchmark report against the committed
baseline and fails (exit code 1) when any comparable case's *speedup
ratio* (no-pushdown seconds / pushdown seconds) regressed by more than
the tolerance::

    PYTHONPATH=src python benchmarks/check_bench_regression.py \
        --current bench-artifacts/BENCH_predicate_pushdown.json \
        --baseline benchmarks/BENCH_predicate_pushdown_baseline_smoke.json

Speedup ratios — not absolute seconds — are compared because CI runners
and developer machines differ wildly in absolute speed while the on/off
ratio of the same process is stable.  Cases whose baseline no-pushdown
time sits below the noise floor are skipped (sub-millisecond timings on a
shared CI runner fluctuate more than any real regression would); skipped
cases are listed so silent shrinkage of coverage is visible in the log.

Refresh the baseline after an intentional performance change::

    PYTHONPATH=src python benchmarks/bench_predicate_pushdown.py \
        --sizes smoke --repeats 3 --json-dir /tmp \
    && cp /tmp/BENCH_predicate_pushdown.json \
        benchmarks/BENCH_predicate_pushdown_baseline_smoke.json
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def _rows_by_case(payload: dict) -> dict[tuple, dict]:
    return {(row["workload"], row["query"], row["engine"]): row
            for row in payload.get("results", [])}


def check(current_path: Path, baseline_path: Path, tolerance: float,
          floor_seconds: float) -> int:
    current = _rows_by_case(json.loads(current_path.read_text(encoding="utf-8")))
    baseline = _rows_by_case(json.loads(baseline_path.read_text(encoding="utf-8")))

    failures: list[str] = []
    compared = 0
    for key, base_row in sorted(baseline.items()):
        base_speedup = base_row.get("speedup")
        label = "/".join(key)
        if base_speedup is None:
            continue
        row = current.get(key)
        if row is None:
            failures.append(f"{label}: case missing from current report")
            continue
        if base_row.get("nopushdown_seconds", 0.0) < floor_seconds:
            print(f"SKIP {label}: baseline below {floor_seconds * 1000:.1f} ms "
                  f"noise floor")
            continue
        speedup = row.get("speedup")
        if speedup is None:
            failures.append(f"{label}: current report carries no speedup")
            continue
        compared += 1
        allowed = base_speedup * (1.0 - tolerance)
        status = "ok" if speedup >= allowed else "REGRESSED"
        print(f"{status:>9} {label}: speedup {speedup:.2f}x "
              f"(baseline {base_speedup:.2f}x, allowed ≥ {allowed:.2f}x)")
        if speedup < allowed:
            failures.append(
                f"{label}: speedup {speedup:.2f}x fell more than "
                f"{tolerance:.0%} below the baseline {base_speedup:.2f}x")

    if not compared and not failures:
        failures.append("no case cleared the noise floor — nothing was checked")
    if failures:
        print("\nbench regression check FAILED:", file=sys.stderr)
        for failure in failures:
            print(f"  - {failure}", file=sys.stderr)
        return 1
    print(f"\nbench regression check passed ({compared} cases compared)")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--current", required=True, type=Path,
                        help="freshly produced BENCH_predicate_pushdown.json")
    parser.add_argument("--baseline", required=True, type=Path,
                        help="committed baseline report")
    parser.add_argument("--tolerance", type=float, default=0.30,
                        help="maximum allowed relative speedup drop (default 0.30)")
    parser.add_argument("--floor-ms", type=float, default=1.0,
                        help="skip cases whose baseline no-pushdown time is "
                             "below this many milliseconds (default 1.0)")
    arguments = parser.parse_args(argv)
    return check(arguments.current, arguments.baseline, arguments.tolerance,
                 arguments.floor_ms / 1000.0)


if __name__ == "__main__":
    sys.exit(main())
