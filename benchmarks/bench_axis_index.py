"""Supplementary bench: the structural axis index and the plan cache.

Measures, per workload document and engine, the same descendant-heavy
queries with the structural index enabled and disabled (the ``--no-index``
A/B of the CLI), and the repeated-``evaluate`` serving pattern with the
module/plan caches cold versus warm.  Writes the machine-readable
``BENCH_axis_index.json`` report::

    PYTHONPATH=src python benchmarks/bench_axis_index.py --sizes medium
    PYTHONPATH=src python benchmarks/bench_axis_index.py --sizes smoke --json-dir out

Warmup runs are measured under steady-state serving assumptions: the lazy
per-document index build and the parse caches are charged to warmup, the
reported time is the best of ``--repeats`` measured runs.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from dataclasses import dataclass
from pathlib import Path
from collections.abc import Callable

from repro.api import clear_query_caches, evaluate, query_cache_stats
from repro.datagen.hospital import HospitalConfig, generate_hospital
from repro.datagen.xmark import XMarkConfig, generate_auction_site
from repro.xquery.context import DocumentResolver

ENGINES = ("interpreter", "algebra")

BIDDER_FIXPOINT = """
with $x seeded by doc("auction.xml")//people/person
recurse (for $id in $x/@id
         let $b := doc("auction.xml")//open_auction[seller/@person = $id]/bidder/personref
         return doc("auction.xml")//people/person[@id = $b/@person]) using naive
"""


@dataclass(frozen=True)
class QueryCase:
    """One benchmarked query against one workload document."""

    workload: str
    label: str
    query: str
    #: Engines the case runs under (the whole-catalogue fixpoint is kept to
    #: sizes where the Naive algorithm finishes in seconds).
    engines: tuple[str, ...] = ENGINES


def _xmark_cases(size: str) -> list[QueryCase]:
    cases = [
        QueryCase("xmark", "descendant-chain",
                  'count(doc("auction.xml")//open_auction//personref)'),
        QueryCase("xmark", "descendant-people",
                  'count(doc("auction.xml")//people//person)'),
    ]
    if size == "smoke":
        cases.append(QueryCase("xmark", "bidder-fixpoint", BIDDER_FIXPOINT))
    return cases


def _hospital_cases(size: str) -> list[QueryCase]:
    return [
        QueryCase("hospital", "descendant-parents",
                  'count(doc("hospital.xml")//patient//parent)'),
        QueryCase("hospital", "descendant-names",
                  'count(doc("hospital.xml")//parent//name)'),
    ]


@dataclass(frozen=True)
class WorkloadDoc:
    name: str
    uri: str
    build: Callable
    cases: Callable[[str], list[QueryCase]]


WORKLOADS: dict[str, WorkloadDoc] = {
    "xmark": WorkloadDoc(
        "xmark", "auction.xml",
        lambda size: generate_auction_site(
            XMarkConfig.tiny() if size == "smoke" else XMarkConfig.medium()),
        _xmark_cases),
    "hospital": WorkloadDoc(
        "hospital", "hospital.xml",
        lambda size: generate_hospital(
            HospitalConfig.tiny() if size == "smoke" else HospitalConfig.medium()),
        _hospital_cases),
}


def _measure(query: str, resolver: DocumentResolver, engine: str,
             use_index: bool, repeats: int, warmup: int) -> tuple[float, int]:
    """Best-of-``repeats`` wall-clock seconds (after ``warmup`` runs)."""
    items = 0
    for _ in range(warmup):
        evaluate(query, documents=resolver, engine=engine, use_index=use_index)
    best = float("inf")
    for _ in range(repeats):
        started = time.perf_counter()
        result = evaluate(query, documents=resolver, engine=engine,
                          use_index=use_index)
        best = min(best, time.perf_counter() - started)
        items = len(result)
    return best, items


def run_axis_comparison(size: str, repeats: int, warmup: int,
                        workloads: tuple[str, ...]) -> list[dict]:
    rows: list[dict] = []
    for name in workloads:
        workload = WORKLOADS[name]
        document = workload.build(size)
        resolver = DocumentResolver()
        resolver.register(workload.uri, document)
        for case in workload.cases(size):
            for engine in case.engines:
                baseline, items = _measure(case.query, resolver, engine,
                                           use_index=False, repeats=repeats,
                                           warmup=warmup)
                indexed, indexed_items = _measure(case.query, resolver, engine,
                                                  use_index=True, repeats=repeats,
                                                  warmup=warmup)
                if items != indexed_items:
                    raise AssertionError(
                        f"{case.workload}/{case.label}/{engine}: indexed run "
                        f"returned {indexed_items} items, baseline {items}"
                    )
                rows.append({
                    "workload": case.workload,
                    "size": size,
                    "query": case.label,
                    "engine": engine,
                    "items": items,
                    "noindex_seconds": round(baseline, 5),
                    "index_seconds": round(indexed, 5),
                    "speedup": round(baseline / indexed, 2) if indexed else None,
                    "repeats": repeats,
                    "warmup": warmup,
                })
                print(f"{case.workload:9s} {case.label:18s} {engine:12s} "
                      f"no-index {baseline:8.4f}s  index {indexed:8.4f}s  "
                      f"speedup {baseline / indexed:6.2f}x")
    return rows


def run_plan_cache_comparison(size: str, repeats: int) -> dict:
    """Cold (caches cleared per call) vs warm repeated evaluation."""
    workload = WORKLOADS["xmark"]
    document = workload.build(size)
    resolver = DocumentResolver()
    resolver.register(workload.uri, document)
    # With the index answering the steps in microseconds, lexing/parsing/
    # compiling dominate a cold call — exactly the share the cache removes
    # in the repeated-query serving pattern.
    query = 'count(doc("auction.xml")//people//person)'
    report: dict = {"query": "descendant-people", "size": size, "engines": {}}
    for engine in ENGINES:
        cold = float("inf")
        for _ in range(repeats):
            clear_query_caches()
            started = time.perf_counter()
            evaluate(query, documents=resolver, engine=engine)
            cold = min(cold, time.perf_counter() - started)
        clear_query_caches()
        evaluate(query, documents=resolver, engine=engine)  # fill the caches
        warm = float("inf")
        for _ in range(repeats):
            started = time.perf_counter()
            evaluate(query, documents=resolver, engine=engine)
            warm = min(warm, time.perf_counter() - started)
        report["engines"][engine] = {
            "cold_seconds": round(cold, 5),
            "warm_seconds": round(warm, 5),
            "speedup": round(cold / warm, 2) if warm else None,
        }
        print(f"plan cache {engine:12s} cold {cold:8.4f}s  warm {warm:8.4f}s  "
              f"speedup {cold / warm:6.2f}x")
    report["cache_stats"] = query_cache_stats()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="Structural axis index + plan cache benchmark "
                    "(writes BENCH_axis_index.json)")
    parser.add_argument("--sizes", choices=["smoke", "medium"], default="medium",
                        help="document sizes: smoke (CI) or medium (the report)")
    parser.add_argument("--workloads", nargs="*", default=sorted(WORKLOADS),
                        choices=sorted(WORKLOADS))
    parser.add_argument("--repeats", type=int, default=3,
                        help="measured runs per combination (best is reported)")
    parser.add_argument("--warmup", type=int, default=1,
                        help="unmeasured warmup runs per combination")
    parser.add_argument("--json-dir", default=".",
                        help="directory BENCH_axis_index.json is written into")
    arguments = parser.parse_args(argv)

    rows = run_axis_comparison(arguments.sizes, arguments.repeats,
                               arguments.warmup, tuple(arguments.workloads))
    plan_cache = run_plan_cache_comparison(arguments.sizes, max(arguments.repeats, 3))

    payload = {
        "schema": "repro-bench-axis-index",
        "schema_version": 1,
        "label": "axis_index",
        "python": platform.python_version(),
        "results": rows,
        "plan_cache": plan_cache,
    }
    path = Path(arguments.json_dir) / "BENCH_axis_index.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
    print(f"\nwrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
