"""Experiment E2 — Table 2 row 5: Romeo and Juliet dialogs.

Horizontal structural recursion along ``following-sibling::SPEECH`` with
speaker alternation.  The paper reports evaluation up to 5x faster with
Delta (nodes fed back: 37,841 vs 5,638 at recursion depth 33).
"""

import pytest

from bench_utils import run_workload


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_dialogs_tiny_ifp(benchmark, harness, algorithm):
    run_workload(harness, benchmark, "dialogs", "tiny", "ifp", algorithm)


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_dialogs_default_ifp(benchmark, harness, algorithm):
    """The full synthetic play (longest alternating dialog of length 33)."""
    result = run_workload(harness, benchmark, "dialogs", "default", "ifp", algorithm,
                          seed_limit=150)
    assert result.recursion_depth >= 5


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_dialogs_tiny_udf(benchmark, harness, algorithm):
    run_workload(harness, benchmark, "dialogs", "tiny", "udf", algorithm)
