"""Experiment E3 — Table 2 rows 6-7: the curriculum consistency check.

Find courses that are among their own prerequisites (Rule 5 of the xlinkit
curriculum case study) via a transitive closure over ``fn:id`` links.  The
paper's instances have 800 (medium) and 4,000 (large) courses with recursion
depths 18 and 35; the larger the input, the better Delta pays off.
"""

import pytest

from bench_utils import run_workload


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_curriculum_tiny_ifp(benchmark, harness, algorithm):
    run_workload(harness, benchmark, "curriculum", "tiny", "ifp", algorithm)


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_curriculum_medium_ifp(benchmark, harness, algorithm):
    """The paper's medium instance (800 courses), limited seed set."""
    result = run_workload(harness, benchmark, "curriculum", "medium", "ifp", algorithm,
                          seed_limit=30)
    assert result.recursion_depth >= 10


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_curriculum_tiny_udf(benchmark, harness, algorithm):
    run_workload(harness, benchmark, "curriculum", "tiny", "udf", algorithm)


@pytest.mark.parametrize("algorithm", ["naive", "delta"])
def test_curriculum_tiny_algebra(benchmark, harness, algorithm):
    """The Relational XQuery backend: µ vs µ∆ on compiled plans."""
    run_workload(harness, benchmark, "curriculum", "tiny", "algebra", algorithm)
