"""Legacy setuptools shim.

The project is fully described by ``pyproject.toml``; this file only exists
so that editable installs keep working on minimal/offline environments where
pip cannot build PEP 660 editable wheels (no ``wheel`` package, no network
for build isolation)::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
