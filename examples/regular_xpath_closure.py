#!/usr/bin/env python3
"""Regular XPath: transitive closure of location steps as IFPs (Section 2).

Regular XPath extends XPath with a closure operator ``+``; the paper shows
that ``s+`` is exactly ``with $x seeded by . recurse $x/s`` and therefore
always eligible for Delta evaluation.  This example runs Regular XPath
closures over the curriculum data and over an organisation chart, and shows
the generated IFP expression.

Run with:  python examples/regular_xpath_closure.py
"""

from repro import parse_xml
from repro.datagen.curriculum import CurriculumConfig, generate_curriculum
from repro.regularxpath import parse_regular_xpath, to_xquery_expr, evaluate_regular_xpath
from repro.distributivity import is_distributivity_safe

ORG_CHART = """
<company>
  <employee name="Ada">
    <employee name="Grace">
      <employee name="Alan"/>
      <employee name="Edsger"/>
    </employee>
    <employee name="Barbara">
      <employee name="Donald"/>
    </employee>
  </employee>
</company>
"""


def main() -> None:
    print("== Reports chain in an organisation chart ==")
    org = parse_xml(ORG_CHART)
    ada = org.document_element().children[0]
    closure = evaluate_regular_xpath("(child::employee)+", [ada])
    print("everyone reporting (directly or not) to Ada:",
          [node.get_attribute("name").value for node in closure])

    print("\n== The translation: closure becomes an IFP ==")
    expression = parse_regular_xpath("(child::employee)+")
    translated = to_xquery_expr(expression)
    print("Regular XPath :", expression)
    print("XQuery AST    :", type(translated).__name__,
          f"(recursion variable ${translated.var}, algorithm {translated.algorithm!r})")
    print("body distributive per Figure 5?",
          is_distributivity_safe(translated.body, translated.var))

    print("\n== Prerequisite closure over generated curriculum data ==")
    curriculum = generate_curriculum(CurriculumConfig.tiny())
    last_course = curriculum.document_element().children[-1]
    print("course:", last_course.get_attribute("code").value)
    # A prerequisite link is: prerequisites/pre_code, then jump to the course
    # carrying that code.  Regular XPath has no value joins, so we follow the
    # structural part here and use fn:id via the XQuery form for the rest.
    codes = evaluate_regular_xpath("(child::prerequisites/child::pre_code)", [last_course])
    print("direct prerequisite codes:", [node.string_value() for node in codes])

    from repro import evaluate

    closure = evaluate(
        'with $x seeded by $course recurse $x/id(./prerequisites/pre_code)',
        documents={"curriculum.xml": curriculum},
        variables={"course": [last_course]},
        context_item=curriculum,
    )
    print("all prerequisites (via IFP + fn:id):",
          sorted(node.get_attribute("code").value for node in closure))


if __name__ == "__main__":
    main()
