#!/usr/bin/env python3
"""Distributivity analysis walkthrough (Sections 3 and 4).

Runs both distributivity checkers — the syntactic ``ds_$x(·)`` rules of
Figure 5 and the algebraic union push-up of Section 4 — over a collection of
recursion bodies, including the paper's own examples:

* Query Q1's body (distributive; both checkers agree),
* Query Q2's body (not distributive; the algebraic check is blocked at the
  count aggregate, exactly as Figure 9(b) shows),
* the id()-unfolded variant of Q1 (distributive, but only the algebraic
  check can tell — the Section 4.1 punchline),
* a ``count($x)`` body before and after the distributivity-hint rewriting.

Run with:  python examples/distributivity_analysis.py
"""

from repro.datagen.curriculum import CurriculumConfig, generate_curriculum
from repro.distributivity import analyze_distributivity, apply_distributivity_hint
from repro.algebra.distributivity import analyze_plan_distributivity
from repro.xquery.parser import parse_expression

BODIES = {
    "Q1 body": "$x/id (./prerequisites/pre_code)",
    "Q2 body": "if (count($x/self::a)) then $x/* else ()",
    "id-unfolded Q1": (
        'for $c in doc("curriculum.xml")/curriculum/course '
        'where $c/@code = $x/prerequisites/pre_code return $c'
    ),
    "positional": "$x[1]",
    "aggregating": "count($x) to 1",
    "constructor": "for $y in $x return <seen/>",
    "sibling walk": "$x/following-sibling::SPEECH[1]",
}


def main() -> None:
    curriculum = generate_curriculum(CurriculumConfig.tiny())
    documents = {"curriculum.xml": curriculum}

    header = f"{'recursion body':<18} {'syntactic (Fig. 5)':>20} {'algebraic (Sec. 4)':>20}"
    print(header)
    print("-" * len(header))
    for name, text in BODIES.items():
        body = parse_expression(text)
        syntactic = analyze_distributivity(body, "x")
        try:
            algebraic = analyze_plan_distributivity(
                body, "x", document=curriculum,
                documents=None if name != "id-unfolded Q1" else _resolver(documents),
            ).distributive
        except Exception:
            algebraic = False
        print(f"{name:<18} {_verdict(syntactic.safe):>20} {_verdict(algebraic):>20}")

    print("\n== Why is Q2 rejected? (syntactic derivation) ==")
    q2 = parse_expression(BODIES["Q2 body"])
    print(analyze_distributivity(q2, "x").format())

    print("\n== Distributivity hints (Section 3.2) ==")
    body = parse_expression("count($x) >= 1")
    print("count($x) >= 1               :", _verdict(analyze_distributivity(body, "x").safe))
    hinted = apply_distributivity_hint(body, "x")
    print("for $y in $x return count($y) >= 1 :",
          _verdict(analyze_distributivity(hinted, "x").safe),
          "(the author asserts distributivity by rewriting)")


def _verdict(safe: bool) -> str:
    return "distributive" if safe else "not inferred"


def _resolver(documents):
    from repro.xquery.context import DocumentResolver

    resolver = DocumentResolver()
    for uri, doc in documents.items():
        resolver.register(uri, doc)
    return resolver


if __name__ == "__main__":
    main()
