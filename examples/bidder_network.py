#!/usr/bin/env python3
"""Bidder network (Figure 10): the paper's scalability workload, end to end.

Generates a synthetic XMark-style auction site, then computes for every
person the transitive network of sellers and bidders reachable from them,
comparing algorithm Naive and algorithm Delta — the experiment behind the
first four rows of Table 2.

Run with:  python examples/bidder_network.py [--size tiny|small|medium] [--persons N]
"""

import argparse
import time

from repro.bench.harness import BenchmarkHarness
from repro.bench.queries import get_workload
from repro.bench.reporting import format_milliseconds
from repro.datagen.xmark import XMarkConfig, generate_auction_site, seller_to_bidder_edges


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--size", default="tiny", choices=["tiny", "small", "medium"],
                        help="document scale (default: tiny)")
    parser.add_argument("--persons", type=int, default=None,
                        help="how many persons to seed the network from (default: size-specific)")
    arguments = parser.parse_args()

    workload = get_workload("bidder-network")
    print("The query (IFP form):\n")
    print(workload.ifp_query(algorithm="delta", seed_limit=arguments.persons or 10))
    print()

    config = {"tiny": XMarkConfig.tiny(), "small": XMarkConfig.small(),
              "medium": XMarkConfig.medium()}[arguments.size]
    document = generate_auction_site(config)
    edges = seller_to_bidder_edges(document)
    print(f"document: {config.persons} persons, "
          f"{sum(len(v) for v in edges.values())} seller→bidder edges\n")

    harness = BenchmarkHarness()
    results = {}
    for algorithm in ("naive", "delta"):
        started = time.perf_counter()
        run = harness.run("bidder-network", arguments.size, engine="ifp",
                          algorithm=algorithm, seed_limit=arguments.persons)
        results[algorithm] = run
        print(f"{algorithm:>5}: {format_milliseconds(run.seconds):>12}   "
              f"nodes fed back {run.nodes_fed_back:>8,}   "
              f"max recursion depth {run.recursion_depth}")
        del started

    naive, delta = results["naive"], results["delta"]
    assert naive.result_digest == delta.result_digest, "Naive and Delta must agree (distributive body)"
    print(f"\nDelta speed-up: {naive.seconds / delta.seconds:.2f}x, "
          f"node-feed reduction: {naive.nodes_fed_back / delta.nodes_fed_back:.2f}x")
    print("(the paper reports 2.2-3.3x time and up to ~9x node-feed reduction on its testbed)")


if __name__ == "__main__":
    main()
