#!/usr/bin/env python3
"""Hospital hereditary-disease exploration (the last row of Table 2).

Generates synthetic patient records with nested ``parent`` subtrees (depth
at most 5), then for every patient counts the diagnosed ancestors by
recursing into the record — a "computationally light" vertical recursion for
which Delta still makes a measurable difference (Table 2: 99,381 vs 50,000
nodes fed back at depth 5).

Also shows the equivalent SQL:1999 WITH RECURSIVE formulation from Section 2
running on the bundled mini relational engine.

Run with:  python examples/hereditary_disease.py [--patients N]
"""

import argparse

from repro import evaluate
from repro.datagen.hospital import HospitalConfig, generate_hospital
from repro.sqlgen import Relation, curriculum_prerequisites

QUERY = """
declare variable $doc := doc("hospital.xml");
for $p in subsequence($doc/hospital/patient, 1, {limit})
return <patient>{{ $p/@id }}{{
    count((with $x seeded by $p recurse $x/parent using {algorithm})[@diagnosed = "yes"])
}}</patient>
"""


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--patients", type=int, default=60)
    arguments = parser.parse_args()

    config = HospitalConfig(patients=max(arguments.patients, 10))
    documents = {"hospital.xml": generate_hospital(config)}

    print(f"== {config.patients} patient records, parent subtrees of depth <= {config.max_depth} ==")
    for algorithm in ("naive", "delta"):
        query = QUERY.format(limit=arguments.patients, algorithm=algorithm)
        result = evaluate(query, documents=documents)
        affected = sum(1 for node in result if node.string_value() not in ("", "0"))
        print(f"{algorithm:>5}: {affected} of {len(result)} patients have diagnosed ancestors; "
              f"nodes fed back {result.nodes_fed_back}, recursion depth {result.recursion_depth}")

    print("\n== The SQL:1999 sidebar of Section 2, on the mini relational engine ==")
    courses = Relation("C", ("course", "prerequisite"), [
        ("c1", "c2"), ("c1", "c3"), ("c2", "c4"), ("c4", "c5"),
    ])
    query = curriculum_prerequisites(courses, "c1")
    for algorithm in ("naive", "delta"):
        outcome = query.evaluate(algorithm=algorithm)
        print(f"{algorithm:>5}: prerequisites of c1 = "
              f"{sorted(row[0] for row in outcome.relation)}, "
              f"tuples fed {outcome.tuples_fed}, iterations {outcome.iterations}")


if __name__ == "__main__":
    main()
