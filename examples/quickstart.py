#!/usr/bin/env python3
"""Quickstart: the paper's curriculum example (Example 1.1 / Query Q1).

Builds the recursive curriculum data of Figure 1, then computes all direct
and indirect prerequisites of course "c1" three ways:

1. the new ``with $x seeded by … recurse …`` IFP form (Query Q1),
2. the recursive user-defined function ``fix`` of Figure 2, and
3. the ``delta`` formulation of Figure 4,

and shows the distributivity analyses and Naive/Delta statistics.

Run with:  python examples/quickstart.py
"""

from repro import evaluate, ifp, is_distributive_algebraic, is_distributive_syntactic, parse_xml

CURRICULUM_XML = """
<!DOCTYPE curriculum [
  <!ELEMENT curriculum (course)*>
  <!ATTLIST course code ID #REQUIRED>
]>
<curriculum>
  <course code="c1"><prerequisites><pre_code>c2</pre_code><pre_code>c3</pre_code></prerequisites></course>
  <course code="c2"><prerequisites><pre_code>c4</pre_code></prerequisites></course>
  <course code="c3"><prerequisites/></course>
  <course code="c4"><prerequisites><pre_code>c5</pre_code></prerequisites></course>
  <course code="c5"><prerequisites/></course>
  <course code="c6"><prerequisites><pre_code>c1</pre_code></prerequisites></course>
</curriculum>
"""

QUERY_Q1 = """
with $x seeded by doc("curriculum.xml")/curriculum/course[@code="c1"]
recurse $x/id (./prerequisites/pre_code)
"""

QUERY_FIGURE_2 = """
declare function rec ($cs) as node()*
{ $cs/id (./prerequisites/pre_code)
};
declare function fix ($x) as node()*
{ let $res := rec ($x)
  return if (empty ($res except $x))
         then $x
         else fix ($res union $x)
};
let $seed := doc("curriculum.xml")/curriculum/course[@code="c1"]
return fix (rec ($seed))
"""

QUERY_FIGURE_4 = """
declare function rec ($cs) as node()*
{ $cs/id (./prerequisites/pre_code)
};
declare function delta ($x, $res) as node()*
{ let $delta := rec ($x) except $res
  return if (empty ($delta))
         then $res
         else delta ($delta, $delta union $res)
};
let $seed := doc("curriculum.xml")/curriculum/course[@code="c1"]
return delta (rec ($seed), rec ($seed))
"""


def codes(result) -> list[str]:
    return sorted(node.get_attribute("code").value for node in result)


def main() -> None:
    documents = {"curriculum.xml": parse_xml(CURRICULUM_XML)}

    print("== Query Q1: the IFP form ==")
    result = evaluate(QUERY_Q1, documents=documents)
    print("prerequisites of c1:", codes(result))
    print("algorithm chosen automatically (distributivity check), "
          f"nodes fed back: {result.nodes_fed_back}, recursion depth: {result.recursion_depth}")

    print("\n== Same query via the fix()/delta() user-defined functions ==")
    print("fix   (Figure 2):", codes(evaluate(QUERY_FIGURE_2, documents=documents)))
    print("delta (Figure 4):", codes(evaluate(QUERY_FIGURE_4, documents=documents)))

    print("\n== Distributivity of the recursion body (Section 3 / Section 4) ==")
    body = "$x/id (./prerequisites/pre_code)"
    print("body:", body)
    print("  syntactic check (Figure 5):", is_distributive_syntactic(body))
    print("  algebraic check (Section 4):",
          is_distributive_algebraic(body, document=documents["curriculum.xml"]))

    print("\n== Naive vs Delta, measured (Figure 3 algorithms) ==")
    seed = evaluate('doc("curriculum.xml")/curriculum/course[@code="c1"]', documents=documents).items
    for algorithm in ("naive", "delta"):
        run = ifp(body, seed, algorithm=algorithm, documents=documents)
        print(f"  {algorithm:>5}: result size {len(run.value)}, "
              f"nodes fed back {run.statistics.total_nodes_fed_back}, "
              f"iterations {run.statistics.recursion_depth}")

    print("\n== The SQL engine: the fixpoint as a real WITH RECURSIVE ==")
    # engine="sql" shreds the document into SQLite pre/post tables and runs
    # the (distributive) recursion as a single recursive CTE.  The same SQL
    # is printable without executing: repro-xquery --emit-sql query.xq
    result = evaluate(QUERY_Q1, documents=documents, settings={"engine": "sql"})
    print("prerequisites of c1 via SQLite:", codes(result))
    from repro.sqlbackend import fixpoint_statements
    from repro.xquery.parser import parse_query

    (_, emitted), = fixpoint_statements(parse_query(QUERY_Q1))
    print("the statement SQLite executes:\n")
    print(emitted.display())

    print("\n== The serving path: structural index + plan cache ==")
    # Axis steps are answered from a per-document structural index (pre/post
    # arrays + name inverted index, DESIGN.md §6) built lazily on first use;
    # repeated evaluate() calls are also served from the module/plan caches.
    # Both have A/B escape hatches: use_index=False (CLI --no-index) and
    # use_cache=False (CLI --no-plan-cache).
    import time

    from repro.api import query_cache_stats

    started = time.perf_counter()
    evaluate(QUERY_Q1, documents=documents)
    warm = time.perf_counter() - started
    print(f"  warm repeated evaluation: {warm * 1000:.2f} ms "
          f"(module cache: {query_cache_stats()['module']['hits']} hits)")

    print("\n== Predicate pushdown: value indexes + batch filter kernels ==")
    # Recognized predicate shapes — [@code = "c1"], [name = $v], [@attr],
    # [1], [last()], [position() < n] — filter whole candidate columns
    # through value inverted indexes instead of a per-candidate focus loop
    # (DESIGN.md §7).  The A/B escape hatch is use_pushdown=False (CLI
    # --no-pushdown); profile=True (CLI --profile) shows which kernels ran.
    needle = 'doc("curriculum.xml")//course[@code = "c6"]/prerequisites/pre_code'
    result = evaluate(needle, documents=documents, settings={"profile": True})
    print("  prerequisites of c6:", [item.string_value() for item in result])
    for kernel, counters in (result.profile or {}).items():
        print(f"  {kernel}: {counters['batch']} batch / "
              f"{counters['fallback']} fallback")
    slow = evaluate(needle, documents=documents, settings={"use_pushdown": False})
    assert list(slow.items) == list(result.items)  # item-identical either way

    print("\n== Sessions and the query service (DESIGN.md §8) ==")
    # A Session owns its own documents, caches and SQLite pool — the unit
    # the HTTP daemon (repro-serve) serves.  prepare() parses once and
    # reuses module + compiled plan across runs; register_document() is
    # the mutation model (snapshot semantics: in-flight queries finish on
    # the corpus they captured).
    from repro import EvalSettings, Session

    with Session(documents={"curriculum.xml": CURRICULUM_XML},
                 id_attributes=("code",),
                 settings=EvalSettings(engine="sql")) as session:
        prepared = session.prepare(QUERY_Q1)
        print("  prepared run 1:", codes(prepared()))
        print("  prepared run 2:", codes(prepared()))
        print("  generation:", session.generation,
              " module cache:", session.cache_stats()["module"])
    # The HTTP daemon over the same machinery:
    #   repro-serve --doc curriculum.xml=data/curriculum.xml --id-attribute code
    #   curl -X POST localhost:8720/query -d '{"query": "...", "engine": "sql"}'
    #   curl localhost:8720/stats
    #
    # Scaling past one process (DESIGN.md §12): a supervised prefork
    # fleet — N workers accept from one shared socket, crashed/hung
    # workers restart with backoff, and a durable corpus journal keeps
    # POST /documents item-identical across the fleet (each worker
    # replays it before serving):
    #   repro-serve --workers 4 --journal corpus.journal --port 8720
    #   curl localhost:8721/ready     # control endpoint: fleet readiness
    #   curl localhost:8721/metrics   # aggregated, worker="N"-labelled

    print("\n== Tracing: what did the query spend its time on? (DESIGN.md §9) ==")
    # trace=True returns a span tree on result.trace: parse/compile/execute
    # phases, one `fixpoint` span per IFP with a `round` child per iteration
    # (fed/produced/new/result_size — the Table 2 quantities, live), SQL
    # statement timings, kernel batch-vs-fallback summaries.  Same data:
    # repro-xquery --trace, or '{"trace": true}' on POST /query; GET /metrics
    # serves the service-level aggregates in Prometheus text format.
    from repro.observability import format_span_tree

    result = evaluate(QUERY_Q1, documents=documents, trace=True)
    print(format_span_tree(result.trace))


if __name__ == "__main__":
    main()
