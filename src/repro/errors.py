"""Exception hierarchy for the ``repro`` XQuery/IFP engine.

The hierarchy mirrors the places errors can arise in the pipeline:

* :class:`XMLSyntaxError` — the hand-written XML parser rejected a document.
* :class:`XQuerySyntaxError` — the XQuery lexer/parser rejected a query.
* :class:`XQueryStaticError` — the query is syntactically well-formed but
  statically wrong (unknown variable, unknown function, wrong arity, ...).
* :class:`XQueryDynamicError` — a runtime error during evaluation (bad
  argument types, division by zero, undefined fixed point, ...).
* :class:`XQueryTypeError` — a dynamic type error (e.g. atomizing a
  function item, comparing incomparable values).
* :class:`FixpointError` — IFP-specific failures such as exceeding the
  iteration bound (a stand-in for the "IFP is undefined" case of
  Definition 2.1).
* :class:`AlgebraError` — problems while compiling to or evaluating the
  relational algebra backend.
* :class:`SqlBackendError` — problems in the SQLite execution backend
  (shredding, SQL emission, result decoding).

All of these derive from :class:`ReproError` so callers can install a single
``except`` clause around the whole engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class XMLSyntaxError(ReproError):
    """Raised by :mod:`repro.xmlio` when an XML document is not well-formed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XQueryError(ReproError):
    """Common base for all XQuery processing errors.

    Each error carries an ``err_code`` loosely modelled on the W3C error
    codes (``XPST0003`` and friends) so tests can assert on the class of
    failure rather than on message text.
    """

    default_code = "FORG0001"

    def __init__(self, message: str, code: str | None = None):
        self.code = code or self.default_code
        super().__init__(f"[{self.code}] {message}")


class XQuerySyntaxError(XQueryError):
    """A query could not be tokenized or parsed."""

    default_code = "XPST0003"


class XQueryStaticError(XQueryError):
    """A query refers to an unknown variable/function or misuses syntax."""

    default_code = "XPST0008"


class XQueryDynamicError(XQueryError):
    """A runtime error raised while evaluating a query."""

    default_code = "FORG0001"


class XQueryTypeError(XQueryDynamicError):
    """A dynamic type error (XPTY-style)."""

    default_code = "XPTY0004"


class FixpointError(XQueryDynamicError):
    """The inflationary fixed point is undefined or diverged.

    Definition 2.1 leaves the IFP undefined when the iteration never reaches
    a fixed point (possible when the recursion body constructs new nodes).
    The engine converts that situation into this error once the configured
    iteration bound is exceeded.
    """

    default_code = "REPR0001"


class AlgebraError(ReproError):
    """Raised by the relational algebra backend (compiler or evaluator)."""


class SqlBackendError(ReproError):
    """Raised by the SQLite execution backend (shredding, emission, decode)."""


class DistributivityError(ReproError):
    """Raised when a distributivity analysis cannot be performed."""
