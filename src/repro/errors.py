"""Exception hierarchy for the ``repro`` XQuery/IFP engine.

The hierarchy mirrors the places errors can arise in the pipeline:

* :class:`XMLSyntaxError` — the hand-written XML parser rejected a document.
* :class:`XQuerySyntaxError` — the XQuery lexer/parser rejected a query.
* :class:`XQueryStaticError` — the query is syntactically well-formed but
  statically wrong (unknown variable, unknown function, wrong arity, ...).
* :class:`XQueryDynamicError` — a runtime error during evaluation (bad
  argument types, division by zero, undefined fixed point, ...).
* :class:`XQueryTypeError` — a dynamic type error (e.g. atomizing a
  function item, comparing incomparable values).
* :class:`FixpointError` — IFP-specific failures such as exceeding the
  iteration bound (a stand-in for the "IFP is undefined" case of
  Definition 2.1).
* :class:`AlgebraError` — problems while compiling to or evaluating the
  relational algebra backend.
* :class:`SqlBackendError` — problems in the SQLite execution backend
  (shredding, SQL emission, result decoding).
* :class:`GovernanceError` — the resource-governance layer stopped a query
  (:class:`QueryTimeout`, :class:`BudgetExceeded`, :class:`QueryCancelled`).

All of these derive from :class:`ReproError` so callers can install a single
``except`` clause around the whole engine.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by the ``repro`` package."""


class XMLSyntaxError(ReproError):
    """Raised by :mod:`repro.xmlio` when an XML document is not well-formed."""

    def __init__(self, message: str, line: int | None = None, column: int | None = None):
        self.line = line
        self.column = column
        if line is not None:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XQueryError(ReproError):
    """Common base for all XQuery processing errors.

    Each error carries an ``err_code`` loosely modelled on the W3C error
    codes (``XPST0003`` and friends) so tests can assert on the class of
    failure rather than on message text.
    """

    default_code = "FORG0001"

    def __init__(self, message: str, code: str | None = None):
        self.code = code or self.default_code
        #: the message without the ``[code]`` prefix (diagnostics reuse it)
        self.bare_message = message
        super().__init__(f"[{self.code}] {message}")


class XQuerySyntaxError(XQueryError):
    """A query could not be tokenized or parsed."""

    default_code = "XPST0003"


class XQueryStaticError(XQueryError):
    """A query refers to an unknown variable/function or misuses syntax."""

    default_code = "XPST0008"


class XQueryDynamicError(XQueryError):
    """A runtime error raised while evaluating a query."""

    default_code = "FORG0001"


def _at(message: str, line: int | None, column: int | None) -> str:
    if line is None:
        return message
    return f"{message} (line {line}, column {column})"


class UndefinedVariableError(XQueryStaticError, XQueryDynamicError):
    """A query references a variable that is bound nowhere in scope.

    Per the W3C rules this is the static error ``XPST0008``; the static
    analyzer (:mod:`repro.analysis`) raises it before any engine runs, so
    the class, code and message are identical across interpreter, algebra
    and SQL evaluations.  Historically the engines surfaced the condition
    mid-evaluation as a *dynamic* error, so the class also keeps
    :class:`XQueryDynamicError` in its bases for compatibility with callers
    that catch the old type.
    """

    default_code = "XPST0008"

    def __init__(self, name: str, line: int | None = None,
                 column: int | None = None):
        self.name = name
        self.line = line
        self.column = column
        self.plain_message = f"undefined variable ${name}"
        super().__init__(_at(self.plain_message, line, column), code="XPST0008")


class UndefinedFunctionError(XQueryStaticError):
    """A query calls a function that is neither declared nor built in."""

    default_code = "XPST0017"

    def __init__(self, name: str, arity: int, line: int | None = None,
                 column: int | None = None):
        self.name = name
        self.arity = arity
        self.line = line
        self.column = column
        self.plain_message = f"unknown function {name}#{arity}"
        super().__init__(_at(self.plain_message, line, column), code="XPST0017")


class WrongArityError(XQueryStaticError):
    """A known function is called with an argument count it does not accept."""

    default_code = "XPST0017"

    def __init__(self, name: str, arity: int, expected: str,
                 line: int | None = None, column: int | None = None):
        self.name = name
        self.arity = arity
        self.expected = expected
        self.line = line
        self.column = column
        self.plain_message = (f"function {name} called with {arity} argument(s), "
                              f"expected {expected}")
        super().__init__(_at(self.plain_message, line, column), code="XPST0017")


class DuplicateDeclarationError(XQueryStaticError):
    """The prolog declares the same variable or function (name, arity) twice."""

    default_code = "XQST0049"

    def __init__(self, kind: str, name: str, line: int | None = None,
                 column: int | None = None, code: str | None = None):
        self.kind = kind
        self.name = name
        self.line = line
        self.column = column
        self.plain_message = f"duplicate {kind} declaration: {name}"
        super().__init__(_at(self.plain_message, line, column),
                         code=code or ("XQST0034" if kind == "function" else "XQST0049"))


class XQueryTypeError(XQueryDynamicError):
    """A dynamic type error (XPTY-style)."""

    default_code = "XPTY0004"


class FixpointError(XQueryDynamicError):
    """The inflationary fixed point is undefined or diverged.

    Definition 2.1 leaves the IFP undefined when the iteration never reaches
    a fixed point (possible when the recursion body constructs new nodes).
    The engine converts that situation into this error once the configured
    iteration bound is exceeded.
    """

    default_code = "REPR0001"


class AlgebraError(ReproError):
    """Raised by the relational algebra backend (compiler or evaluator)."""


class SqlBackendError(ReproError):
    """Raised by the SQLite execution backend (shredding, emission, decode)."""


class DistributivityError(ReproError):
    """Raised when a distributivity analysis cannot be performed."""


class GovernanceError(ReproError):
    """Common base of every error raised by the resource-governance layer.

    Governance errors carry the engine-independent reason a query was
    stopped; the service layer maps each subclass onto an HTTP status
    (timeout → 408, budget → 429, cancellation → 503).
    """


class QueryTimeout(GovernanceError):
    """The query's wall-clock deadline (``ResourceLimits.timeout_s``) passed.

    Raised cooperatively: the interpreter checks at FLWOR-iteration and
    function-call boundaries, the fixpoint drivers and algebra µ/µ∆ loops
    at round boundaries, and the SQLite backend through a progress handler
    — so even a single ``WITH RECURSIVE`` statement honours the deadline.
    """

    def __init__(self, message: str | None = None, *, timeout_s: float | None = None):
        self.timeout_s = timeout_s
        if message is None:
            message = "query exceeded its deadline"
            if timeout_s is not None:
                message = f"query exceeded its {timeout_s:g}s deadline"
        super().__init__(message)


class BudgetExceeded(GovernanceError):
    """A non-time resource budget of :class:`ResourceLimits` was exhausted.

    ``budget`` names which bound tripped (``max_fixpoint_rounds``,
    ``max_frontier_nodes``, ``max_result_items`` or ``max_memory_kb``) so
    callers can distinguish divergence from merely-large results.
    """

    def __init__(self, message: str, *, budget: str | None = None,
                 limit: int | None = None, observed: int | None = None):
        self.budget = budget
        self.limit = limit
        self.observed = observed
        super().__init__(message)


class QueryCancelled(GovernanceError):
    """The query's :class:`CancelToken` was triggered mid-evaluation.

    Cancellation arrives from outside the evaluating thread — a client
    disconnect, a graceful service drain, or an explicit
    ``CancelToken.cancel()`` — and is observed at the same cooperative
    checkpoints as the deadline.
    """

    def __init__(self, message: str | None = None, *, reason: str | None = None):
        self.reason = reason
        if message is None:
            message = "query was cancelled"
            if reason:
                message = f"query was cancelled ({reason})"
        super().__init__(message)


class InjectedFault(ReproError):
    """An error raised on purpose by the fault-injection harness.

    Chaos tests activate named fault points (:mod:`repro.faults`) and assert
    that every injected failure surfaces as a typed :class:`ReproError` —
    this class marks the generic injections so tests can tell deliberate
    faults from real bugs.
    """

    def __init__(self, point: str, message: str | None = None):
        self.point = point
        super().__init__(message or f"injected fault at point '{point}'")
