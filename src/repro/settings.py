"""Evaluation settings: one frozen object instead of nine tuning kwargs.

:func:`repro.api.evaluate` grew a knob per PR — engine, backend, algorithm
policy, index/pushdown/cache escape hatches, profiling — and every layer
that forwards a query (the CLI, the benchmark harness, the service) had to
thread all of them through by hand.  :class:`EvalSettings` collapses them
into a single immutable, hashable value:

* immutable, so a settings object can be shared between threads and stored
  inside cache keys without defensive copying;
* hashable, so the compiled-plan cache keys on it directly
  (:meth:`EvalSettings.plan_key` normalizes away the fields that do not
  change the compiled plan's shape);
* convertible, so the engine-facing
  :class:`~repro.xquery.context.EvaluationOptions` is derived from it in
  exactly one place (:meth:`EvalSettings.to_options`) — the two cannot
  drift apart silently (a test asserts the shared fields stay in sync).

The legacy keyword arguments of ``evaluate()``/``evaluate_query()`` keep
working through :func:`merge_legacy_kwargs`, which emits a
:class:`DeprecationWarning` and folds them into a settings value.
"""

from __future__ import annotations

import dataclasses
import warnings
from dataclasses import dataclass
from enum import Enum
from collections.abc import Mapping
from typing import Any

from repro.limits import ResourceLimits


class Engine(str, Enum):
    """Which execution backend evaluates a query."""

    #: The tree-walking interpreter with the native IFP operator.
    INTERPRETER = "interpreter"
    #: The Relational XQuery backend (compile to algebra, evaluate plans).
    ALGEBRA = "algebra"
    #: The SQLite backend: documents shredded into pre/post tables and each
    #: fixpoint run as a recursive CTE (or the temp-table driver loop).
    SQL = "sql"


#: The tuning knobs ``evaluate()`` historically took as keyword arguments,
#: in their historical order — the deprecation shim accepts exactly these.
LEGACY_TUNING_KWARGS = (
    "ifp_algorithm", "distributivity_checker", "engine", "backend",
    "optimize", "use_index", "use_pushdown", "use_cache", "profile",
)


@dataclass(frozen=True)
class EvalSettings:
    """Immutable bundle of every engine/tuning knob of an evaluation.

    Attributes
    ----------
    ifp_algorithm:
        ``"auto"`` (choose Delta when the distributivity check allows),
        ``"naive"`` or ``"delta"``.
    distributivity_checker:
        ``"syntactic"`` (Figure 5), ``"algebraic"`` (Section 4),
        ``"analysis"`` (the strengthened cardinality-assisted proof of
        :mod:`repro.analysis.distributivity`) or ``"never"``.
    engine:
        :class:`Engine` member (strings are coerced).
    backend:
        Table storage backend of the algebra engine (``"row"`` /
        ``"columnar"``); ``None`` picks the default.
    optimize:
        Apply the AST-level rewrites of :mod:`repro.xquery.optimizer`.
    analyze:
        Run the static analyzer (:mod:`repro.analysis`) over the compiled
        module before execution: typed static errors (undefined variables/
        functions, wrong arity, duplicates) surface engine-independently
        and the :class:`~repro.analysis.report.AnalysisReport` is attached
        to the result.  The report is cached alongside the plan.
    use_index:
        Answer axis steps from the per-document structural index.
    use_pushdown:
        Route recognized predicate shapes through the batch kernels.
    use_cache:
        Serve parsed modules / compiled plans from the session caches.
    profile:
        Collect per-kernel batch-vs-fallback counters for this run.
    trace:
        Collect a per-query trace span tree
        (:mod:`repro.observability.tracing`): phase spans, per-fixpoint
        round spans with delta sizes, kernel counters.  The session
        builds the live :class:`~repro.observability.tracing.TraceContext`
        and returns the tree as ``QueryResult.trace``.
    max_ifp_iterations / max_recursion_depth:
        Safety bounds, forwarded to
        :class:`~repro.xquery.context.EvaluationOptions`.
    collect_statistics:
        Record per-IFP iteration traces (nodes fed back, depth).
    limits:
        :class:`~repro.limits.ResourceLimits` governing the evaluation
        (wall-clock deadline, fixpoint round/frontier/result budgets) or
        ``None`` for unlimited.  The session builds the live
        :class:`~repro.limits.Governor` from it (plus any per-call
        ``cancel_token``) and swaps it into ``options.limits`` — the same
        pattern as ``trace``.
    """

    ifp_algorithm: str = "auto"
    distributivity_checker: str = "syntactic"
    engine: Engine = Engine.INTERPRETER
    backend: str | None = None
    optimize: bool = True
    analyze: bool = True
    use_index: bool = True
    use_pushdown: bool = True
    use_cache: bool = True
    profile: bool = False
    trace: bool = False
    max_ifp_iterations: int = 100_000
    max_recursion_depth: int = 500
    collect_statistics: bool = True
    limits: ResourceLimits | None = None

    def __post_init__(self):
        # Coerce engine strings ("sql") into the enum so equality/hashing
        # of settings values never depends on how the caller spelled it.
        if not isinstance(self.engine, Engine):
            object.__setattr__(self, "engine", Engine(self.engine))

    def replace(self, **changes: Any) -> "EvalSettings":
        """A copy with *changes* applied (``dataclasses.replace``)."""
        return dataclasses.replace(self, **changes)

    def to_options(self):
        """The engine-facing :class:`EvaluationOptions` of these settings."""
        from repro.xquery.context import EvaluationOptions

        # ``trace`` is copied as the *boolean* here (keeping the two
        # dataclasses field-for-field in sync); the session swaps the live
        # TraceContext in before evaluation.  Engine sites normalize via
        # :func:`repro.observability.tracing.active_trace`.
        return EvaluationOptions(
            ifp_algorithm=self.ifp_algorithm,
            distributivity_checker=self.distributivity_checker,
            max_ifp_iterations=self.max_ifp_iterations,
            max_recursion_depth=self.max_recursion_depth,
            use_index=self.use_index,
            use_pushdown=self.use_pushdown,
            collect_statistics=self.collect_statistics,
            trace=self.trace,
            limits=self.limits,
        )

    def plan_key(self, resolved_backend: str) -> "EvalSettings":
        """These settings normalized down to what shapes a compiled plan.

        The algebra plan cache uses the returned value directly as the
        settings component of its key: fields that only steer *evaluation*
        (algorithm policy, index usage, profiling) are reset to defaults so
        equivalent plans share one entry, while fields baked into the plan
        (storage backend, predicate pushdown) survive.
        """
        return EvalSettings(
            engine=Engine.ALGEBRA,
            backend=resolved_backend,
            use_pushdown=self.use_pushdown,
            analyze=self.analyze,
        )

    def module_key(self, query: str) -> tuple:
        """The module-cache key of *query* under these settings."""
        return (query, bool(self.optimize))

    def analysis_key(self, module_fingerprint: str,
                     bound_variables: frozenset) -> tuple:
        """The analysis-cache key of a compiled module under these settings.

        Keyed on the module shape and the caller-bound variable *names*
        (their values never matter statically); the ``analyze`` flag itself
        gates the lookup, so it needs no component here.
        """
        return (module_fingerprint, bound_variables)


def coerce_settings(value: "EvalSettings | Mapping[str, Any] | None",
                    base: "EvalSettings | None" = None) -> EvalSettings:
    """Normalize *value* (settings, mapping of fields, or None) onto *base*."""
    base = base if base is not None else EvalSettings()
    if value is None:
        return base
    if isinstance(value, EvalSettings):
        return value
    if isinstance(value, Mapping):
        return base.replace(**dict(value))
    raise TypeError(
        f"settings must be an EvalSettings, a mapping of its fields or None "
        f"(got {type(value).__name__})"
    )


def merge_legacy_kwargs(settings: "EvalSettings | Mapping[str, Any] | None",
                        legacy: Mapping[str, Any],
                        stacklevel: int = 3) -> EvalSettings:
    """Fold the pre-``EvalSettings`` tuning kwargs into a settings value.

    *legacy* maps kwarg name → value-or-None; only non-``None`` entries are
    applied (the public functions default every legacy kwarg to ``None`` so
    "not passed" is distinguishable).  Passing any of them emits a
    :class:`DeprecationWarning` pointing at ``settings=``.
    """
    passed = {name: value for name, value in legacy.items() if value is not None}
    unknown = set(passed) - set(LEGACY_TUNING_KWARGS)
    if unknown:
        raise TypeError(f"unknown tuning keyword(s): {sorted(unknown)}")
    base = coerce_settings(settings)
    if not passed:
        return base
    warnings.warn(
        f"the tuning keyword(s) {sorted(passed)} are deprecated; pass "
        f"settings=EvalSettings(...) instead",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return base.replace(**passed)


__all__ = ["Engine", "EvalSettings", "LEGACY_TUNING_KWARGS",
           "coerce_settings", "merge_legacy_kwargs"]
