"""Session-owned evaluation state: caches, documents, SQLite pool.

Until PR 6 every piece of serving state was a module-level global — the
parsed-module and compiled-plan LRUs in :mod:`repro.api`, the structural
index registry, and a fresh in-memory SQLite store per SQL evaluation.
That is workable for scripts but wrong for a long-running concurrent
service: callers cannot isolate corpora, cannot drop one tenant's caches,
and cannot keep the SQL shred warm across requests.

A :class:`Session` owns all of it explicitly:

* its **document registry** (URI → document) with *snapshot semantics*:
  :meth:`Session.register_document` bumps a generation and invalidates the
  plan cache and SQLite pool; evaluations in flight finish against the
  snapshot resolver they captured, new requests see the new corpus and
  rebuild indexes/shreds lazily;
* its **module and plan caches** (:class:`repro.plancache.LRUCache`,
  fully lock-protected), keyed by query text and by the normalized
  :class:`~repro.settings.EvalSettings` plan key respectively;
* its **SQLite store pool** (:class:`repro.sqlbackend.pool.SqlStorePool`):
  one store per worker thread, shredded relations reused across requests;
* its **default settings**, overridable per call
  (``session.evaluate(query, engine="sql")``).

The module-level :func:`repro.api.evaluate` is a thin wrapper over one
process-wide default session, so existing code keeps its behavior.

Lock order (narrowest first, see DESIGN.md §8): an evaluation thread may
take the session lock, then a cache lock, then the structural-index
registry lock — never the reverse.  No lock is held while a query body
actually evaluates.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping, Sequence
from typing import Any, TYPE_CHECKING

from repro import faults as faults_module
from repro import plancache
from repro.fixpoint.stats import StatisticsCollector
from repro.limits import CancelToken, Governor, ResourceLimits
from repro.observability.tracing import Span, TraceContext, maybe_span
from repro.settings import Engine, EvalSettings, coerce_settings
from repro.xdm.node import DocumentNode
from repro.xmlio.parser import parse_xml
from repro.xquery import ast
from repro.xquery.context import DocumentResolver, DynamicContext, StaticContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.optimizer import optimize_module
from repro.xquery.parser import parse_query

if TYPE_CHECKING:
    from repro.analysis.report import AnalysisReport


@dataclass
class QueryResult:
    """The outcome of an evaluation (:meth:`Session.evaluate` and the
    module-level :func:`repro.api.evaluate`)."""

    items: list
    statistics: StatisticsCollector = field(default_factory=StatisticsCollector)
    #: Batch-vs-fallback kernel counters (``profile=True`` runs).
    profile: dict | None = None
    #: Root :class:`~repro.observability.tracing.Span` of ``trace=True``
    #: runs (``None`` otherwise): the query span tree — parse, compile,
    #: execute, decode phases with per-fixpoint-round children.
    trace: Span | None = None
    #: The static-analysis report of the compiled module
    #: (``settings.analyze`` runs, ``None`` otherwise): scope diagnostics,
    #: per-fixpoint distributivity facts, cardinality classes.
    analysis: "AnalysisReport | None" = None

    @property
    def nodes_fed_back(self) -> int:
        """Total nodes fed into recursion bodies across all IFPs in the query."""
        return self.statistics.total_nodes_fed_back

    @property
    def recursion_depth(self) -> int:
        return self.statistics.max_recursion_depth

    def string_values(self) -> list[str]:
        from repro.xdm.items import string_value_of_item

        return [string_value_of_item(item) for item in self.items]

    def __iter__(self):
        return iter(self.items)

    def __len__(self) -> int:
        return len(self.items)


def build_resolver(documents, id_attributes: Iterable[str]) -> DocumentResolver:
    """Normalize a documents argument (mapping / resolver / None)."""
    if isinstance(documents, DocumentResolver):
        return documents
    resolver = DocumentResolver()
    for uri, doc in (documents or {}).items():
        if isinstance(doc, str):
            doc = parse_xml(doc, id_attributes=id_attributes)
        resolver.register(uri, doc)
    return resolver


class Session:
    """An isolated evaluation context: documents, caches, SQLite pool.

    Parameters
    ----------
    documents:
        Initial corpus: mapping from URI to a parsed document or XML text
        (registered via :meth:`register_document`).
    settings / options:
        Default :class:`EvalSettings` of this session (``options`` is an
        accepted alias; a mapping of field names also works).  Per-call
        settings/overrides take precedence.
    id_attributes:
        Attribute names treated as IDs when XML text is parsed here.
    module_cache_size / plan_cache_size:
        Capacities of the per-session LRU caches.
    sql_store:
        ``"memory"`` (default) or ``"wal"`` — how the per-worker SQLite
        stores of the SQL engine are backed (see
        :class:`~repro.sqlbackend.pool.SqlStorePool`).
    sql_store_dir:
        Directory for ``"wal"`` store files (default: a private tempdir).
    faults:
        Optional fault-injection plan (:class:`repro.faults.FaultPlan` or a
        ``REPRO_FAULTS``-syntax string) activated process-wide for the
        session's lifetime and deactivated on :meth:`close`.  Chaos-testing
        hook; see :mod:`repro.faults`.
    """

    def __init__(self,
                 documents: Mapping[str, DocumentNode | str] | None = None,
                 *,
                 settings: EvalSettings | Mapping[str, Any] | None = None,
                 options: EvalSettings | Mapping[str, Any] | None = None,
                 id_attributes: Iterable[str] = ("id", "xml:id"),
                 module_cache_size: int = 256,
                 plan_cache_size: int = 64,
                 sql_store: str = "memory",
                 sql_store_dir: str | None = None,
                 faults: "faults_module.FaultPlan | str | None" = None):
        from repro.sqlbackend.pool import SqlStorePool

        if settings is not None and options is not None:
            raise TypeError("pass either settings= or options=, not both")
        self.settings = coerce_settings(settings if settings is not None else options)
        self.id_attributes = tuple(id_attributes)
        self._lock = threading.RLock()
        self._documents: dict[str, DocumentNode] = {}
        self._generation = 0
        self._snapshot: DocumentResolver | None = None
        self._module_cache = plancache.LRUCache(module_cache_size)
        self._plan_cache = plancache.LRUCache(plan_cache_size)
        self._analysis_cache = plancache.LRUCache(module_cache_size)
        self._sql_pool = SqlStorePool(mode=sql_store, directory=sql_store_dir)
        #: Serializes ``profile=True`` runs: the pushdown profiler is a
        #: process-global accumulator, so profiled evaluations must not
        #: interleave with each other (concurrent unprofiled traffic still
        #: runs, its kernel hits simply land in the active snapshot).
        self._profile_lock = threading.Lock()
        self._closed = False
        self._fault_plan: faults_module.FaultPlan | None = None
        if faults is not None:
            plan = (faults if isinstance(faults, faults_module.FaultPlan)
                    else faults_module.parse_plan(faults))
            self._fault_plan = plan
            faults_module.activate(plan)
        for uri, doc in (documents or {}).items():
            self.register_document(uri, doc)

    # -- documents & snapshots ----------------------------------------------

    @property
    def generation(self) -> int:
        """Monotonic counter of document-registry changes."""
        with self._lock:
            return self._generation

    def register_document(self, uri: str,
                          document: DocumentNode | str,
                          id_attributes: Iterable[str] | None = None) -> int:
        """Register (or replace) *document* under *uri*; returns the new
        generation.

        Replacing a document is the service's mutation model: queries in
        flight finish on the snapshot they captured, the compiled-plan
        cache and the SQLite store pool are invalidated, and the next
        request rebuilds lazily against the new corpus.
        """
        if isinstance(document, str):
            document = parse_xml(
                document,
                id_attributes=tuple(id_attributes or self.id_attributes))
        with self._lock:
            self._documents[uri] = document
            self._generation += 1
            self._snapshot = None
            self._plan_cache.bump_generation()
            self._sql_pool.invalidate()
            return self._generation

    def apply_journal_record(self, record: Mapping[str, Any]) -> int:
        """Apply one corpus-journal record (see :mod:`repro.service.journal`).

        The journal-driven registration hook of the prefork service: every
        worker's tailer funnels ``register``/``replace``/``remove`` records
        through here, so a replicated mutation takes exactly the same path
        — generation bump, plan-cache invalidation, SQL-pool invalidation —
        as a direct :meth:`register_document` call, and all workers
        converge on an identical corpus snapshot.  Returns the new
        generation.
        """
        op = record.get("op")
        if op in ("register", "replace"):
            xml = record.get("xml")
            if not isinstance(xml, str):
                raise ValueError(f"journal {op} record for {record.get('uri')!r} "
                                 f"carries no xml text")
            return self.register_document(
                str(record["uri"]), xml,
                id_attributes=record.get("id_attributes"))
        if op == "remove":
            return self.remove_document(str(record["uri"]))
        raise ValueError(f"unknown journal op {op!r}")

    def remove_document(self, uri: str) -> int:
        """Remove *uri* from the corpus; returns the new generation."""
        with self._lock:
            self._documents.pop(uri, None)
            self._generation += 1
            self._snapshot = None
            self._plan_cache.bump_generation()
            self._sql_pool.invalidate()
            return self._generation

    def document_uris(self) -> list[str]:
        with self._lock:
            return sorted(self._documents)

    def snapshot(self) -> DocumentResolver:
        """An immutable view of the current corpus.

        The returned resolver never changes: evaluations started against it
        keep seeing exactly these documents even while
        :meth:`register_document` moves the session forward.  A batch of
        queries can share one snapshot to amortize the capture.
        """
        with self._lock:
            resolver = self._snapshot
            if resolver is None:
                resolver = DocumentResolver()
                for uri, doc in self._documents.items():
                    resolver.register(uri, doc)
                self._snapshot = resolver
            return resolver

    # -- evaluation ----------------------------------------------------------

    def evaluate(self, query: str,
                 documents=None,
                 variables: Mapping[str, Sequence[Any] | Any] | None = None,
                 context_item: Any = None,
                 settings: EvalSettings | Mapping[str, Any] | None = None,
                 id_attributes: Iterable[str] | None = None,
                 cancel_token: CancelToken | None = None,
                 **overrides: Any) -> QueryResult:
        """Parse (through the module cache) and evaluate *query*.

        ``documents`` defaults to the session's current snapshot;
        *overrides* are :class:`EvalSettings` field names applied on top of
        ``settings`` (which itself defaults to the session settings), e.g.
        ``session.evaluate(q, engine="sql", use_index=False)``.
        ``cancel_token`` lets another thread stop the evaluation
        cooperatively (:class:`~repro.limits.CancelToken`).
        """
        settings = self._resolve_settings(settings, overrides)
        trace = (TraceContext("query", engine=str(settings.engine.value))
                 if settings.trace else None)
        module = self._module_for(query, settings, trace)
        return self._evaluate(module, documents, variables, context_item,
                              settings, id_attributes, pre_optimized=True,
                              trace=trace, cancel_token=cancel_token)

    def evaluate_query(self, module: ast.Module,
                       documents=None,
                       variables: Mapping[str, Sequence[Any] | Any] | None = None,
                       context_item: Any = None,
                       settings: EvalSettings | Mapping[str, Any] | None = None,
                       id_attributes: Iterable[str] | None = None,
                       cancel_token: CancelToken | None = None,
                       **overrides: Any) -> QueryResult:
        """Evaluate an already-parsed module (see :meth:`evaluate`).

        With ``settings.optimize`` the module is rewritten here per call
        (the fresh object cannot be plan-cached); :meth:`prepare` is the
        parse-once path that keeps the plan cache effective.
        """
        settings = self._resolve_settings(settings, overrides)
        return self._evaluate(module, documents, variables, context_item,
                              settings, id_attributes, pre_optimized=False,
                              cancel_token=cancel_token)

    def prepare(self, query: str,
                settings: EvalSettings | Mapping[str, Any] | None = None,
                **overrides: Any) -> "PreparedQuery":
        """Parse and optimize *query* once; bind-and-run many times.

        The returned :class:`PreparedQuery` shares this session's caches,
        so repeated ``prepared(variables=...)`` calls skip lexing, parsing
        and (on the algebra engine, for cache-safe modules) compilation.
        """
        settings = self._resolve_settings(settings, overrides)
        module = self._module_for(query, settings)
        return PreparedQuery(session=self, query=query, module=module,
                             settings=settings)

    def _resolve_settings(self, settings, overrides: Mapping[str, Any]) -> EvalSettings:
        resolved = coerce_settings(settings, self.settings)
        if overrides:
            resolved = resolved.replace(**overrides)
        return resolved

    def _module_for(self, query: str, settings: EvalSettings,
                    trace: TraceContext | None = None) -> ast.Module:
        """Parse *query*, serving repeated texts from the module cache."""
        with maybe_span(trace, "parse") as span:
            if not settings.use_cache:
                if span is not None:
                    span.set(module_cache="bypass")
                module = parse_query(query)
                return optimize_module(module) if settings.optimize else module
            key = settings.module_key(query)
            module = self._module_cache.get(key)
            if module is None:
                if span is not None:
                    span.set(module_cache="miss")
                module = parse_query(query)
                if settings.optimize:
                    module = optimize_module(module)
                self._module_cache.put(key, module)
            elif span is not None:
                span.set(module_cache="hit")
            return module

    def _evaluate(self, module: ast.Module, documents, variables, context_item,
                  settings: EvalSettings, id_attributes,
                  pre_optimized: bool, trace: TraceContext | None = None,
                  cancel_token: CancelToken | None = None) -> QueryResult:
        if settings.trace and trace is None:
            # evaluate_query()/PreparedQuery.run() land here without a
            # context (no parse phase to cover) — open the root now.
            trace = TraceContext("query", engine=str(settings.engine.value))
        if not settings.profile and trace is None:
            return self._evaluate_inner(module, documents, variables, context_item,
                                        settings, id_attributes, pre_optimized, None,
                                        cancel_token=cancel_token)

        from repro.xquery.pushdown import PROFILE

        # Profiled *and* traced runs serialize here: the pushdown profiler
        # is a process-global accumulator, so such evaluations must not
        # interleave with each other (concurrent plain traffic still runs,
        # its kernel hits simply land in the active snapshot).  Traced runs
        # borrow the same window to absorb the kernel counters as spans.
        with self._profile_lock:
            PROFILE.reset()
            PROFILE.enabled = True
            try:
                result = self._evaluate_inner(
                    module, documents, variables, context_item,
                    settings.replace(profile=False), id_attributes,
                    pre_optimized, trace, cancel_token=cancel_token)
            finally:
                PROFILE.enabled = False
            counters = PROFILE.snapshot()
        if settings.profile:
            result.profile = counters
        if trace is not None:
            for name, entry in counters.items():
                attrs = {key: (round(value, 6) if isinstance(value, float) else value)
                         for key, value in entry.items()}
                trace.end(trace.begin(f"kernel:{name}", **attrs))
            result.trace = trace.finish()
        return result

    def _evaluate_inner(self, module: ast.Module, documents, variables, context_item,
                        settings: EvalSettings, id_attributes,
                        pre_optimized: bool, trace: TraceContext | None,
                        cancel_token: CancelToken | None = None) -> QueryResult:
        plan_cacheable = pre_optimized or not settings.optimize
        if settings.optimize and not pre_optimized:
            with maybe_span(trace, "optimize"):
                module = optimize_module(module)
        if documents is None:
            resolver = self.snapshot()
        else:
            resolver = build_resolver(
                documents, tuple(id_attributes or self.id_attributes))

        analysis = None
        if settings.analyze:
            # One engine-independent static pass before dispatch: typed
            # static errors (undefined variable/function, wrong arity,
            # duplicate declaration) raise here — identically for the
            # interpreter, algebra and SQL paths — and the report rides
            # along on the result.
            with maybe_span(trace, "analyze") as span:
                analysis = self._analysis_for(module, variables, settings, span)
                if span is not None:
                    span.set(diagnostics=len(analysis.diagnostics),
                             fixpoints=len(analysis.fixpoints))
            analysis.raise_first()

        statistics = StatisticsCollector()
        options = settings.to_options()
        if trace is not None:
            # Swap the live context in over the boolean that to_options()
            # copied (see EvaluationOptions.trace).
            options.trace = trace
        governor = None
        if settings.limits is not None or cancel_token is not None:
            # Same swap pattern as trace: to_options() seeded the field
            # with the frozen ResourceLimits; the live Governor (deadline
            # started here, so compile time counts) replaces it.
            governor = Governor(settings.limits or ResourceLimits(),
                                token=cancel_token)
            options.limits = governor
        context = DynamicContext(
            static=StaticContext(options=options),
            documents=resolver,
            statistics=statistics,
        )
        for name, value in (variables or {}).items():
            context = context.bind(
                name, list(value) if isinstance(value, (list, tuple)) else [value])
        if context_item is not None:
            context = context.with_focus(context_item, 1, 1)

        activation = trace.activate() if trace is not None else nullcontext()
        with activation:
            if settings.engine is Engine.INTERPRETER:
                evaluator = Evaluator()
                with maybe_span(trace, "execute"):
                    items = evaluator.evaluate_module(module, context)
                result = QueryResult(items=items, statistics=statistics)
            elif settings.engine is Engine.SQL:
                from repro.sqlbackend.executor import SQLEvaluator

                evaluator = SQLEvaluator(store=self._sql_pool.store())
                with maybe_span(trace, "execute"):
                    items = evaluator.evaluate_module(module, context)
                result = QueryResult(items=items, statistics=statistics)
            else:
                result = self._evaluate_algebra(module, resolver, variables,
                                                statistics, settings,
                                                plan_cacheable, trace,
                                                governor=governor)
        result.analysis = analysis
        return result

    def _analysis_for(self, module: ast.Module, variables,
                      settings: EvalSettings, span=None) -> "AnalysisReport":
        """Run (or fetch) the static analysis of *module*.

        Cached like the plan: keyed on the module fingerprint plus the
        caller-bound variable *names* (values never matter statically),
        but only for modules whose shape makes fingerprinting sound.
        """
        from repro.analysis import analyze_module

        bound = frozenset((variables or {}).keys())
        if not (settings.use_cache and plancache.module_cache_safe(module)):
            if span is not None:
                span.set(analysis_cache="bypass")
            return analyze_module(module, bound)
        key = settings.analysis_key(plancache.fingerprint([module]), bound)
        report = self._analysis_cache.get(key)
        if report is None:
            if span is not None:
                span.set(analysis_cache="miss")
            report = analyze_module(module, bound)
            self._analysis_cache.put(key, report)
        elif span is not None:
            span.set(analysis_cache="hit")
        return report

    def _evaluate_algebra(self, module: ast.Module, resolver: DocumentResolver,
                          variables, statistics, settings: EvalSettings,
                          plan_cacheable: bool,
                          trace: TraceContext | None = None,
                          governor: Governor | None = None) -> QueryResult:
        """Compile (or fetch) and run the algebra plan of *module*."""
        from repro.algebra.compiler import AlgebraCompiler
        from repro.algebra.evaluator import AlgebraEvaluator
        from repro.algebra.operators import LiteralTable
        from repro.algebra.storage import resolve_backend
        from repro.sqlbackend.decode import decode_result_table

        plan = None
        plan_key = None
        compile_span = trace.begin("compile") if trace is not None else None
        plan_cache_state = "bypass"
        # The plan cache keys on module identity, so it only helps when the
        # caller passes a stable module object (as evaluate()/prepare()
        # arrange via the module cache).  A module this call just rewrote is
        # fresh per call: caching would only fill the LRU with entries that
        # can never hit, each pinning documents.  The settings component is
        # the normalized EvalSettings plan key — backend and pushdown shape
        # the compiled plan, everything else is evaluation-time.
        if settings.use_cache and plan_cacheable and plancache.module_cache_safe(module):
            plan_key = (
                plancache.fingerprint([module]),
                settings.plan_key(resolve_backend(settings.backend).backend_name),
                plancache.documents_fingerprint(resolver),
            )
            plan = self._plan_cache.get(plan_key)
            plan_cache_state = "hit" if plan is not None else "miss"
        if plan is None:
            default_document = None
            known = resolver.known_uris()
            if known:
                default_document = resolver.resolve(known[0])
            compiler = AlgebraCompiler(documents=resolver, document=default_document,
                                       functions=module.function_map(),
                                       backend=settings.backend,
                                       push_predicates=settings.use_pushdown)
            evaluator = Evaluator()
            compile_context = compiler.initial_context()
            bound_variables = {name: list(value) if isinstance(value, (list, tuple)) else [value]
                               for name, value in (variables or {}).items()}
            for declaration in module.variables:
                if declaration.value is None:
                    # External declaration: inline the caller's binding (such
                    # modules are never plan-cached — see module_cache_safe).
                    if not declaration.external or declaration.name not in bound_variables:
                        continue
                    value = bound_variables[declaration.name]
                else:
                    value = evaluator.evaluate(declaration.value,
                                               DynamicContext(documents=resolver))
                rows = [(1, position, item) for position, item in enumerate(value, start=1)]
                compile_context = compile_context.bind(
                    declaration.name,
                    LiteralTable(compiler.storage(("iter", "pos", "item"), rows)),
                )
            plan = compiler.compile(module.body, compile_context)
            if plan_key is not None:
                self._plan_cache.put(plan_key, plan)
        if compile_span is not None:
            compile_span.set(plan_cache=plan_cache_state)
            trace.end(compile_span)
        algebra_engine = AlgebraEvaluator(backend=settings.backend,
                                          use_index=settings.use_index,
                                          trace=trace, governor=governor)
        with maybe_span(trace, "execute"):
            table = algebra_engine.evaluate_plan(plan)
        with maybe_span(trace, "decode", rows=len(table)):
            items = decode_result_table(table)
        result = QueryResult(items=items, statistics=statistics)
        result.statistics.runs.extend(algebra_engine.statistics.fixpoint_runs)
        return result

    # -- caches & lifecycle --------------------------------------------------

    def clear_caches(self) -> None:
        """Drop every cached parsed module, compiled plan and analysis."""
        self._module_cache.clear()
        self._plan_cache.clear()
        self._analysis_cache.clear()

    def cache_stats(self) -> dict:
        """Hit/miss/size counters of the module, plan and analysis caches."""
        return {"module": self._module_cache.stats(),
                "plan": self._plan_cache.stats(),
                "analysis": self._analysis_cache.stats()}

    def stats(self) -> dict:
        """One snapshot of everything the session keeps hot."""
        with self._lock:
            generation = self._generation
            documents = len(self._documents)
        stats = self.cache_stats()
        stats.update({
            "generation": generation,
            "documents": documents,
            "sql_pool": self._sql_pool.stats(),
        })
        return stats

    def close(self) -> None:
        """Release pooled SQLite stores and drop the caches."""
        if self._closed:
            return
        self._closed = True
        if (self._fault_plan is not None
                and faults_module.active_plan() is self._fault_plan):
            faults_module.activate(None)
        self._sql_pool.close()
        self.clear_caches()

    def __enter__(self) -> "Session":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


@dataclass(frozen=True)
class PreparedQuery:
    """A parsed, optimized query bound to a session: run without re-parsing.

    Created by :meth:`Session.prepare`.  ``run`` (also ``__call__``)
    accepts fresh variable bindings, a context item, per-run documents and
    settings overrides; everything else — parsed module, session caches,
    compiled plan (algebra engine, cache-safe modules) — is reused.
    """

    session: Session
    query: str
    module: ast.Module
    settings: EvalSettings

    def run(self, documents=None,
            variables: Mapping[str, Sequence[Any] | Any] | None = None,
            context_item: Any = None,
            settings: EvalSettings | Mapping[str, Any] | None = None,
            cancel_token: CancelToken | None = None,
            **overrides: Any) -> QueryResult:
        resolved = coerce_settings(settings, self.settings)
        if overrides:
            resolved = resolved.replace(**overrides)
        return self.session._evaluate(self.module, documents, variables,
                                      context_item, resolved, None,
                                      pre_optimized=True,
                                      cancel_token=cancel_token)

    __call__ = run


# ---------------------------------------------------------------------------
# the default process session behind the module-level API
# ---------------------------------------------------------------------------

_DEFAULT_SESSION: Session | None = None
_DEFAULT_SESSION_LOCK = threading.Lock()


def default_session() -> Session:
    """The process-wide session serving :func:`repro.api.evaluate`."""
    global _DEFAULT_SESSION
    session = _DEFAULT_SESSION
    if session is None:
        with _DEFAULT_SESSION_LOCK:
            session = _DEFAULT_SESSION
            if session is None:
                session = _DEFAULT_SESSION = Session()
    return session


__all__ = ["Session", "PreparedQuery", "QueryResult", "build_resolver",
           "default_session"]
