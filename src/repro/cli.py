"""Command-line front end: run XQuery queries from the shell.

Installed as ``repro-xquery``::

    repro-xquery --doc curriculum.xml=data/curriculum.xml query.xq
    repro-xquery -e 'with $x seeded by doc("c.xml")//course[@code="c1"]
                     recurse $x/id(./prerequisites/pre_code)' --doc c.xml=c.xml
    repro-xquery --check-distributivity '$x/id(./prerequisites/pre_code)'
    repro-xquery --engine sql --doc c.xml=c.xml query.xq   # fixpoints on SQLite
    repro-xquery --emit-sql query.xq                       # print the CTE, don't run
"""

from __future__ import annotations

import argparse
import sys

from repro.api import evaluate, is_distributive_algebraic, is_distributive_syntactic
from repro.errors import GovernanceError
from repro.limits import ResourceLimits
from repro.settings import EvalSettings
from repro.xmlio.parser import parse_xml_file
from repro.xmlio.serializer import serialize_sequence
from repro.xquery.context import DocumentResolver


def _parse_doc_argument(argument: str) -> tuple[str, str]:
    if "=" not in argument:
        raise argparse.ArgumentTypeError(
            "--doc expects URI=PATH (e.g. --doc curriculum.xml=data/curriculum.xml)"
        )
    uri, path = argument.split("=", 1)
    return uri, path


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-xquery",
        description="Evaluate XQuery queries with the repro engine "
                    "(inflationary fixed points, Naive/Delta, distributivity analysis)",
    )
    parser.add_argument("query_file", nargs="?", help="file containing the query")
    parser.add_argument("-e", "--expression", help="query text given inline")
    parser.add_argument("--doc", action="append", default=[], type=_parse_doc_argument,
                        metavar="URI=PATH", help="register a document for fn:doc")
    parser.add_argument("--id-attribute", action="append", default=["id", "xml:id"],
                        help="attribute names to treat as IDs (repeatable)")
    parser.add_argument("--algorithm", choices=["auto", "naive", "delta"], default="auto",
                        help="global IFP evaluation policy")
    parser.add_argument("--checker",
                        choices=["syntactic", "algebraic", "analysis", "never"],
                        default="syntactic", help="distributivity checker used by 'auto'")
    parser.add_argument("--engine", choices=["interpreter", "algebra", "sql"],
                        default="interpreter")
    parser.add_argument("--backend", choices=["row", "columnar"], default=None,
                        help="table storage backend of the algebra engine "
                             "(default: columnar; only valid with --engine algebra)")
    parser.add_argument("--no-index", action="store_true",
                        help="disable the per-document structural index and answer "
                             "axis steps by walking node objects (A/B escape hatch)")
    parser.add_argument("--no-pushdown", action="store_true",
                        help="disable predicate pushdown and evaluate every "
                             "predicate through the per-item focus loop "
                             "(A/B escape hatch)")
    parser.add_argument("--no-plan-cache", action="store_true",
                        help="disable the parsed-module / compiled-plan caches")
    parser.add_argument("--profile", action="store_true",
                        help="print per-axis/per-kernel batch-vs-fallback hit "
                             "and timing counters after evaluation")
    parser.add_argument("--trace", action="store_true",
                        help="print the query's span tree (parse/compile/execute "
                             "phases, per-fixpoint-round sizes, SQL statement "
                             "timings) after evaluation")
    parser.add_argument("--timeout-s", type=float, default=None, metavar="SECONDS",
                        help="wall-clock deadline for the evaluation; exceeding "
                             "it exits with a QueryTimeout (status 3)")
    parser.add_argument("--max-fixpoint-rounds", type=int, default=None, metavar="N",
                        help="budget on fixpoint rounds per IFP evaluation; "
                             "exceeding it exits with a BudgetExceeded (status 3)")
    parser.add_argument("--emit-sql", action="store_true",
                        help="print the SQL the sql engine generates for every "
                             "with … recurse fixpoint in the query, then exit")
    parser.add_argument("--stats", action="store_true",
                        help="print IFP statistics (nodes fed back, recursion depth)")
    parser.add_argument("--check", action="store_true",
                        help="lint mode: run the static analyzer only (scopes, "
                             "arity, cardinality, distributivity), print "
                             "diagnostics with line:column, and exit 1 on "
                             "static errors without evaluating anything")
    parser.add_argument("--explain-analysis", action="store_true",
                        help="print the full static-analysis report (diagnostics, "
                             "per-fixpoint distributivity facts, cardinality) "
                             "after evaluation")
    parser.add_argument("--check-distributivity", metavar="BODY",
                        help="only analyse the given recursion body for $x and exit")
    arguments = parser.parse_args(argv)

    if arguments.backend is not None and arguments.engine != "algebra":
        parser.error(
            f"--backend selects the algebra engine's table storage and is not "
            f"used by --engine {arguments.engine}; drop it or use --engine algebra"
        )

    if arguments.check_distributivity is not None:
        body = arguments.check_distributivity
        syntactic = is_distributive_syntactic(body, "x")
        algebraic = is_distributive_algebraic(body, "x", strict=False)
        judgment = _static_judgment(body)
        print(f"syntactic (Figure 5):   {'distributive' if syntactic else 'not inferred'}")
        print(f"algebraic (Section 4):  {'distributive' if algebraic else 'not inferred'}")
        print(f"static analysis:        "
              f"{'distributive' if judgment.safe else 'not inferred'} "
              f"[{judgment.rule}]")
        return 0

    if arguments.expression:
        query = arguments.expression
    elif arguments.query_file:
        with open(arguments.query_file, encoding="utf-8") as handle:
            query = handle.read()
    else:
        parser.error("provide a query file or -e EXPRESSION")
        return 2

    if arguments.check:
        return _check_query(query)

    if arguments.emit_sql:
        return _emit_sql(query, arguments.algorithm,
                         push_predicates=not arguments.no_pushdown)

    resolver = DocumentResolver()
    for uri, path in arguments.doc:
        resolver.register(uri, parse_xml_file(path, id_attributes=arguments.id_attribute))

    limits = None
    if arguments.timeout_s is not None or arguments.max_fixpoint_rounds is not None:
        limits = ResourceLimits(timeout_s=arguments.timeout_s,
                                max_fixpoint_rounds=arguments.max_fixpoint_rounds)

    settings = EvalSettings(
        ifp_algorithm=arguments.algorithm,
        distributivity_checker=arguments.checker,
        engine=arguments.engine,
        backend=arguments.backend,
        use_index=not arguments.no_index,
        use_pushdown=not arguments.no_pushdown,
        use_cache=not arguments.no_plan_cache,
        profile=arguments.profile,
        trace=arguments.trace,
        limits=limits,
    )
    try:
        result = evaluate(query, documents=resolver, settings=settings)
    except GovernanceError as exc:
        print(f"{type(exc).__name__}: {exc}", file=sys.stderr)
        return 3
    print(serialize_sequence(result.items))
    if arguments.explain_analysis and result.analysis is not None:
        print("\n-- static analysis", file=sys.stderr)
        print(result.analysis.format(), file=sys.stderr)
    if arguments.trace and result.trace is not None:
        from repro.observability import format_span_tree

        print("\n-- query trace", file=sys.stderr)
        print(format_span_tree(result.trace), file=sys.stderr)
    if arguments.stats:
        print(
            f"\n-- IFP evaluations: {result.statistics.ifp_evaluations}, "
            f"nodes fed back: {result.nodes_fed_back}, "
            f"max recursion depth: {result.recursion_depth}",
            file=sys.stderr,
        )
    if arguments.profile:
        from repro.xquery.pushdown import format_profile

        print("\n-- pushdown profile (batch vs fallback)", file=sys.stderr)
        print(format_profile(result.profile or {}), file=sys.stderr)
    return 0


def _static_judgment(body: str):
    """The strengthened static distributivity judgment for a ``$x`` body."""
    from repro.analysis import analyze_distributivity_static
    from repro.xquery.parser import parse_expression

    return analyze_distributivity_static(
        parse_expression(body), "x", functions=None, seed=None, env=None
    )


def _check_query(query: str) -> int:
    """``--check``: lint the query statically, never evaluate it."""
    from repro.analysis import analyze_query
    from repro.errors import XQueryError

    try:
        report = analyze_query(query)
    except XQueryError as exc:
        # parse errors surface through the same lint channel
        print(f"error: {exc}", file=sys.stderr)
        return 1
    for diagnostic in report.diagnostics:
        print(diagnostic.format(), file=sys.stderr)
    if not report.ok():
        return 1
    print(f"ok: no static errors ({len(report.warnings())} warning(s))")
    return 0


def _emit_sql(query: str, ifp_algorithm: str, push_predicates: bool = True) -> int:
    """Print the SQL the sql engine would run for each fixpoint in *query*."""
    from repro.sqlbackend.executor import fixpoint_statements
    from repro.xquery.parser import parse_query

    pairs = fixpoint_statements(parse_query(query), ifp_algorithm=ifp_algorithm,
                                push_predicates=push_predicates)
    if not pairs:
        print("-- the query contains no with … recurse fixpoints")
        return 0
    for index, (expr, emitted) in enumerate(pairs, start=1):
        algorithm = f" using {expr.algorithm}" if expr.algorithm != "auto" else ""
        print(f"-- fixpoint {index}: with ${expr.var} seeded by … recurse …{algorithm}")
        if emitted is not None:
            print(emitted.display().rstrip() + ";")
        elif expr.algorithm == "naive" or (expr.algorithm == "auto"
                                           and ifp_algorithm == "naive"):
            print("-- forced Naive: executed by the iterative driver loop "
                  "over temp tables")
        else:
            print("-- not a linear step chain: executed by the iterative "
                  "driver loop (naive/delta over temp tables)")
        if index < len(pairs):
            print()
    return 0


if __name__ == "__main__":
    sys.exit(main())
