"""XQuery Data Model (XDM) substrate.

This package provides the data model everything else in :mod:`repro` is
built on: XML nodes with identity and document order, atomic values,
sequences, and the sequence-level operations the paper's definitions are
stated in terms of (``fs:ddo``, node-set ``union``/``except``/``intersect``,
set-equality, deep-equal, atomization and effective boolean value).

The important design decisions:

* **Node identity** is object identity plus a globally unique, monotonically
  increasing ``order_key`` assigned at construction time.  Because both the
  XML parser and the node constructors materialise nodes in document
  (pre-)order, the ``order_key`` doubles as the document-order sort key, also
  across separately constructed trees (XQuery leaves inter-tree order
  implementation defined but requires it to be stable).
* **Sequences** are plain Python lists of items (nodes or atomic values).
  Helper functions in :mod:`repro.xdm.sequence` implement the operations the
  W3C Formal Semantics defines on them.
"""

from repro.xdm.items import (
    UntypedAtomic,
    QName,
    is_atomic,
    is_node,
    is_numeric,
    atomize_item,
    string_value_of_item,
    xs_boolean,
    xs_double,
    xs_integer,
    xs_string,
)
from repro.xdm.node import (
    Node,
    DocumentNode,
    ElementNode,
    AttributeNode,
    TextNode,
    CommentNode,
    ProcessingInstructionNode,
    NodeKind,
    reset_node_counter,
)
from repro.xdm.document import (
    document,
    element,
    attribute,
    text,
    comment,
    processing_instruction,
    copy_node,
)
from repro.xdm.sequence import (
    ddo,
    node_union,
    node_except,
    node_intersect,
    set_equal,
    atomize,
    effective_boolean_value,
    nodes_only,
    ensure_node_sequence,
)
from repro.xdm.comparison import deep_equal, atomic_equal
from repro.xdm.index import (
    StructuralIndex,
    batch_step,
    cached_index,
    clear_index_registry,
    index_for,
    indexed_step,
)

__all__ = [
    "UntypedAtomic",
    "QName",
    "is_atomic",
    "is_node",
    "is_numeric",
    "atomize_item",
    "string_value_of_item",
    "xs_boolean",
    "xs_double",
    "xs_integer",
    "xs_string",
    "Node",
    "DocumentNode",
    "ElementNode",
    "AttributeNode",
    "TextNode",
    "CommentNode",
    "ProcessingInstructionNode",
    "NodeKind",
    "reset_node_counter",
    "document",
    "element",
    "attribute",
    "text",
    "comment",
    "processing_instruction",
    "copy_node",
    "ddo",
    "node_union",
    "node_except",
    "node_intersect",
    "set_equal",
    "atomize",
    "effective_boolean_value",
    "nodes_only",
    "ensure_node_sequence",
    "deep_equal",
    "atomic_equal",
    "StructuralIndex",
    "batch_step",
    "cached_index",
    "clear_index_registry",
    "index_for",
    "indexed_step",
]
