"""Sequence-level operations of the XQuery Data Model.

The functions in this module are the vocabulary the paper's definitions are
written in:

* :func:`ddo` — ``fs:distinct-doc-order``, the duplicate-eliminating,
  document-order-restoring function applied after every path step.
* :func:`node_union`, :func:`node_except`, :func:`node_intersect` — the
  ``union``/``except``/``intersect`` operators on node sequences.
* :func:`set_equal` — the paper's relaxed set-equality ``s=`` that ignores
  duplicates and order (Section 2); for node sequences it coincides with
  ``fs:ddo(X1) = fs:ddo(X2)``.
* :func:`atomize` and :func:`effective_boolean_value` — the coercions the
  evaluator applies to operands of comparisons, predicates and conditions.
"""

from __future__ import annotations

from collections.abc import Iterable, Sequence
from typing import Any

from repro.errors import XQueryTypeError
from repro.xdm.items import atomize_item, is_atomic, is_node, is_numeric
from repro.xdm.node import Node


def nodes_only(sequence: Iterable[Any]) -> bool:
    """Return ``True`` if every item in *sequence* is a node."""
    return all(is_node(item) for item in sequence)


def ensure_node_sequence(sequence: Sequence[Any], operation: str) -> list[Node]:
    """Validate that *sequence* contains only nodes and return it as a list.

    Raises :class:`~repro.errors.XQueryTypeError` otherwise — this is the
    error an XQuery processor raises when ``union``/``except`` (or a path
    step) is applied to atomic values.
    """
    items = list(sequence)
    for item in items:
        if not is_node(item):
            raise XQueryTypeError(
                f"{operation} requires a sequence of nodes, got {type(item).__name__}"
            )
    return items


def ddo(sequence: Iterable[Any]) -> list[Node]:
    """``fs:distinct-doc-order``: deduplicate by identity, sort by doc order."""
    seen: set[int] = set()
    unique: list[Node] = []
    for item in sequence:
        if not is_node(item):
            raise XQueryTypeError(
                f"fs:ddo requires nodes, got {type(item).__name__}"
            )
        if id(item) not in seen:
            seen.add(id(item))
            unique.append(item)
    unique.sort(key=lambda node: node.order_key)
    return unique


def node_union(left: Sequence[Any], right: Sequence[Any]) -> list[Node]:
    """The XQuery ``union`` operator (duplicate-free, document order)."""
    left_nodes = ensure_node_sequence(left, "union")
    right_nodes = ensure_node_sequence(right, "union")
    return ddo([*left_nodes, *right_nodes])


def node_except(left: Sequence[Any], right: Sequence[Any]) -> list[Node]:
    """The XQuery ``except`` operator (left minus right, document order)."""
    left_nodes = ensure_node_sequence(left, "except")
    right_nodes = ensure_node_sequence(right, "except")
    removed = {id(node) for node in right_nodes}
    return ddo([node for node in left_nodes if id(node) not in removed])


def node_intersect(left: Sequence[Any], right: Sequence[Any]) -> list[Node]:
    """The XQuery ``intersect`` operator (document order)."""
    left_nodes = ensure_node_sequence(left, "intersect")
    right_nodes = ensure_node_sequence(right, "intersect")
    kept = {id(node) for node in right_nodes}
    return ddo([node for node in left_nodes if id(node) in kept])


def set_equal(left: Sequence[Any], right: Sequence[Any]) -> bool:
    """The paper's set-equality ``s=`` on item sequences.

    Duplicates and order are ignored.  For node sequences this is identity
    based (``fs:ddo(X1) = fs:ddo(X2)``); for mixed/atomic sequences the
    comparison falls back to value equality of the atomic items, mirroring
    the ``(1,"a") s= ("a",1,1)`` example of Section 2.
    """
    left_items = list(left)
    right_items = list(right)
    if nodes_only(left_items) and nodes_only(right_items):
        left_ids = {id(node) for node in left_items}
        right_ids = {id(node) for node in right_items}
        return left_ids == right_ids
    return _atomic_multiset(left_items) == _atomic_multiset(right_items)


def _atomic_multiset(items: Sequence[Any]) -> set:
    values = set()
    for item in items:
        if is_node(item):
            values.add(("node", id(item)))
        else:
            values.add(("atom", type(item).__name__ if isinstance(item, bool) else "", item))
    return values


def atomize(sequence: Iterable[Any]) -> list[Any]:
    """Atomize a sequence (``fn:data``): nodes become their typed values."""
    return [atomize_item(item) for item in sequence]


def effective_boolean_value(sequence: Sequence[Any]) -> bool:
    """The effective boolean value (EBV) of a sequence.

    Rules (XQuery 1.0, 2.4.3): the empty sequence is false; a sequence whose
    first item is a node is true; a singleton boolean/number/string follows
    its value; anything else is a type error.
    """
    items = list(sequence)
    if not items:
        return False
    if is_node(items[0]):
        return True
    if len(items) == 1:
        value = items[0]
        if isinstance(value, bool):
            return value
        if is_numeric(value):
            return value != 0 and value == value
        if isinstance(value, str):
            return len(value) > 0
    raise XQueryTypeError("invalid argument to effective boolean value", code="FORG0006")


def item_sequence(value: Any) -> list[Any]:
    """Normalize a Python value into an item sequence.

    ``None`` becomes the empty sequence, lists/tuples are flattened one
    level, everything else becomes a singleton.
    """
    if value is None:
        return []
    if isinstance(value, (list, tuple)):
        return list(value)
    return [value]


def is_singleton_node(sequence: Sequence[Any]) -> bool:
    """True if *sequence* is exactly one node."""
    return len(sequence) == 1 and is_node(sequence[0])


def sequence_string(sequence: Sequence[Any]) -> str:
    """Space-joined string value of a sequence (used by constructors)."""
    from repro.xdm.items import string_value_of_item

    return " ".join(string_value_of_item(item) for item in sequence)


def is_atomic_sequence(sequence: Iterable[Any]) -> bool:
    """True if every item is atomic."""
    return all(is_atomic(item) for item in sequence)
