"""Programmatic construction of XDM trees.

These helpers are the node constructors of the engine: the XQuery evaluator
uses them to implement direct and computed constructors, the data generators
use them to synthesise benchmark documents, and tests use them to build
small fixtures without going through XML text.

Construction happens in document (pre-)order so that the global
``order_key`` counter yields correct document order (see
:mod:`repro.xdm.node`).
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import XQueryTypeError
from repro.xdm.node import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)

#: Things accepted as element content by :func:`element`.
Content = Node | str | int | float | bool | Iterable[object]


def document(*children: Content, base_uri: str | None = None) -> DocumentNode:
    """Build a document node with the given children.

    String/number content becomes text nodes; element IDs are registered from
    attributes flagged ``is_id``.
    """
    doc = DocumentNode(base_uri=base_uri)
    for child in _flatten(children):
        doc.append_child(_as_content_node(child))
    _renumber_subtree(doc)
    _register_ids(doc)
    return doc


def element(name: str, *content: Content, attrs: dict[str, str] | None = None) -> ElementNode:
    """Build an element node.

    Parameters
    ----------
    name:
        The element name.
    content:
        Child content: nodes, strings/numbers (turned into text nodes),
        attribute nodes, or (possibly nested) iterables of these.
    attrs:
        Convenience mapping of attribute name to value.
    """
    node = ElementNode(name)
    if attrs:
        for attr_name, attr_value in attrs.items():
            node.add_attribute(AttributeNode(attr_name, str(attr_value)))
    for item in _flatten(content):
        if isinstance(item, AttributeNode):
            node.add_attribute(item)
        elif isinstance(item, dict):
            for attr_name, attr_value in item.items():
                node.add_attribute(AttributeNode(attr_name, _stringify(attr_value)))
        else:
            node.append_child(_as_content_node(item))
    _renumber_subtree(node)
    return node


def _renumber_subtree(root: Node) -> None:
    """Re-assign document-order keys over a freshly assembled subtree.

    The builder functions receive their children as already-constructed
    nodes (Python evaluates arguments innermost first), so construction
    order is bottom-up and the order keys handed out at ``__init__`` time
    would put descendants *before* their ancestors.  Re-numbering the whole
    subtree in pre-order — element, then its attributes, then its children —
    restores the document-order invariant while keeping keys globally unique
    and monotone across separately built trees.
    """
    from repro.xdm.node import _next_order_key, _notify_structure_change

    # Rewriting order keys changes what any cached structural index of this
    # tree recorded; drop it before walking.  (The walk itself is iterative
    # so deep builds cannot exhaust the Python stack.)
    _notify_structure_change(root)
    stack: list[Node] = [root]
    while stack:
        node = stack.pop()
        node.order_key = _next_order_key()
        if isinstance(node, ElementNode):
            for attr in node.attributes:
                attr.order_key = _next_order_key()
        children = node.children
        if children:
            stack.extend(reversed(children))


def attribute(name: str, value: object, is_id: bool = False) -> AttributeNode:
    """Build an attribute node."""
    return AttributeNode(name, _stringify(value), is_id=is_id)


def text(content: object) -> TextNode:
    """Build a text node."""
    return TextNode(_stringify(content))


def comment(content: str) -> CommentNode:
    """Build a comment node."""
    return CommentNode(content)


def processing_instruction(target: str, content: str) -> ProcessingInstructionNode:
    """Build a processing-instruction node."""
    return ProcessingInstructionNode(target, content)


def copy_node(node: Node) -> Node:
    """Deep-copy a node, assigning fresh identities throughout.

    This is what XQuery's element constructors do when they embed existing
    nodes: the copies are new nodes with new identity, in document order.
    """
    if isinstance(node, DocumentNode):
        doc = DocumentNode(base_uri=node.base_uri)
        for child in node.children:
            doc.append_child(copy_node(child))
        _register_ids(doc)
        return doc
    if isinstance(node, ElementNode):
        copy = ElementNode(node.name)
        for attr in node.attributes:
            copy.add_attribute(AttributeNode(attr.name, attr.value, is_id=attr.is_id))
        for child in node.children:
            copy.append_child(copy_node(child))
        return copy
    if isinstance(node, AttributeNode):
        return AttributeNode(node.name, node.value, is_id=node.is_id)
    if isinstance(node, TextNode):
        return TextNode(node.content)
    if isinstance(node, CommentNode):
        return CommentNode(node.content)
    if isinstance(node, ProcessingInstructionNode):
        return ProcessingInstructionNode(node.name, node.content)
    raise XQueryTypeError(f"cannot copy node of kind {type(node).__name__}")


def register_ids(doc: DocumentNode, id_attribute_names: Iterable[str] = ()) -> None:
    """(Re)build the document's ID map.

    Attributes whose ``is_id`` flag is set are always registered; in addition
    any attribute whose name appears in *id_attribute_names* is treated as an
    ID attribute.  This mirrors how the paper's curriculum DTD declares
    ``course/@code`` as ``ID`` — callers that parse documents without a DTD
    can still opt attribute names in.
    """
    names = set(id_attribute_names)
    for node in doc.iter_tree():
        if isinstance(node, ElementNode):
            for attr in node.attributes:
                if attr.is_id or attr.name in names:
                    attr.is_id = True
                    doc.register_id(attr.value, node)


def _register_ids(doc: DocumentNode) -> None:
    register_ids(doc)


def _flatten(content: Iterable[object]):
    for item in content:
        if isinstance(item, (list, tuple)):
            yield from _flatten(item)
        else:
            yield item


def _as_content_node(item: object) -> Node:
    if isinstance(item, Node):
        return item
    if isinstance(item, (str, int, float, bool)):
        return TextNode(_stringify(item))
    raise XQueryTypeError(f"cannot use {type(item).__name__} as element content")


def _stringify(value: object) -> str:
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float) and value == int(value):
        return str(int(value))
    return str(value)
