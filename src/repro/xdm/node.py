"""XDM node classes: identity, document order and the tree axes.

Every node carries an ``order_key`` drawn from a process-global counter at
construction time.  Both the XML parser (:mod:`repro.xmlio.parser`) and the
node-construction helpers (:mod:`repro.xdm.document`) materialise nodes in
document (pre-)order, so sorting by ``order_key`` *is* sorting by document
order — including across independently constructed trees, for which XQuery
only requires a stable implementation-defined order.

The axis methods (``descendants``, ``ancestors``, ``following_siblings``,
...) return lists already in the natural order of the axis; the path
evaluator applies ``fs:ddo`` on top as required by the XQuery semantics.
"""

from __future__ import annotations

import itertools
from enum import Enum
from collections.abc import Iterator

from repro.errors import XQueryTypeError
from repro.xdm.items import UntypedAtomic


class NodeKind(str, Enum):
    """The seven XDM node kinds (namespace nodes are not modelled)."""

    DOCUMENT = "document"
    ELEMENT = "element"
    ATTRIBUTE = "attribute"
    TEXT = "text"
    COMMENT = "comment"
    PROCESSING_INSTRUCTION = "processing-instruction"


_node_counter = itertools.count(1)


def _next_order_key() -> int:
    return next(_node_counter)


def reset_node_counter() -> None:
    """Reset the global node counter (test isolation only).

    Node identity is never recycled during normal operation; tests that
    assert on concrete order keys may reset the counter to get reproducible
    values.
    """
    global _node_counter
    _node_counter = itertools.count(1)


#: Hook installed by :mod:`repro.xdm.index` on import: called with a node
#: whose tree is about to change structurally, so a cached structural index
#: covering it can be dropped.  ``None`` until that module is imported —
#: no index can exist before then, so construction pays nothing.
_structure_change_hook = None

#: Companion hook for *value* mutations (attribute rewrites, text edits):
#: the pre/post plane of a cached structural index stays valid, but its
#: lazily built value inverted indexes must be dropped.  Also ``None``
#: until :mod:`repro.xdm.index` is imported.
_value_change_hook = None


def _notify_structure_change(node: "Node") -> None:
    if _structure_change_hook is not None:
        _structure_change_hook(node)


def _notify_value_change(node: "Node") -> None:
    if _value_change_hook is not None:
        _value_change_hook(node)


class Node:
    """Base class of all XDM nodes.

    Attributes
    ----------
    order_key:
        Globally unique integer; document order == ascending ``order_key``.
    parent:
        The parent node, or ``None`` for roots and detached nodes.
    """

    __slots__ = ("order_key", "parent")

    node_kind: NodeKind

    def __init__(self) -> None:
        self.order_key: int = _next_order_key()
        self.parent: Node | None = None

    # -- identity and order -------------------------------------------------

    def is_same_node(self, other: "Node") -> bool:
        """Node identity comparison (the ``is`` operator of XQuery)."""
        return self is other

    def precedes(self, other: "Node") -> bool:
        """Document-order comparison (the ``<<`` operator of XQuery)."""
        return self.order_key < other.order_key

    def follows(self, other: "Node") -> bool:
        """Document-order comparison (the ``>>`` operator of XQuery)."""
        return self.order_key > other.order_key

    # -- structure ----------------------------------------------------------

    @property
    def children(self) -> list["Node"]:
        """Child nodes; empty for leaf node kinds."""
        return []

    @property
    def name(self) -> str | None:
        """The node name (elements, attributes, PIs) or ``None``."""
        return None

    def root(self) -> "Node":
        """The root of the tree containing this node."""
        node: Node = self
        while node.parent is not None:
            node = node.parent
        return node

    def document(self) -> "DocumentNode" | None:
        """The containing document node, if the tree is document-rooted."""
        root = self.root()
        return root if isinstance(root, DocumentNode) else None

    # -- values -------------------------------------------------------------

    def string_value(self) -> str:
        """The string value as defined per node kind by the XDM."""
        raise NotImplementedError

    def typed_value(self):
        """The typed value used by atomization.

        Without schema awareness, element and attribute content atomizes to
        ``xs:untypedAtomic``; text nodes likewise.
        """
        return UntypedAtomic(self.string_value())

    # -- axes ---------------------------------------------------------------

    def self_axis(self) -> list["Node"]:
        return [self]

    def child_axis(self) -> list["Node"]:
        return list(self.children)

    def descendant_axis(self) -> list["Node"]:
        result: list[Node] = []
        stack = list(reversed(self.children))
        while stack:
            node = stack.pop()
            result.append(node)
            stack.extend(reversed(node.children))
        return result

    def descendant_or_self_axis(self) -> list["Node"]:
        return [self, *self.descendant_axis()]

    def parent_axis(self) -> list["Node"]:
        return [self.parent] if self.parent is not None else []

    def ancestor_axis(self) -> list["Node"]:
        result: list[Node] = []
        node = self.parent
        while node is not None:
            result.append(node)
            node = node.parent
        return result

    def ancestor_or_self_axis(self) -> list["Node"]:
        return [self, *self.ancestor_axis()]

    def following_sibling_axis(self) -> list["Node"]:
        if self.parent is None or isinstance(self, AttributeNode):
            return []
        siblings = self.parent.children
        try:
            index = next(i for i, n in enumerate(siblings) if n is self)
        except StopIteration:  # pragma: no cover - defensive
            return []
        return list(siblings[index + 1:])

    def preceding_sibling_axis(self) -> list["Node"]:
        if self.parent is None or isinstance(self, AttributeNode):
            return []
        siblings = self.parent.children
        try:
            index = next(i for i, n in enumerate(siblings) if n is self)
        except StopIteration:  # pragma: no cover - defensive
            return []
        return list(reversed(siblings[:index]))

    def following_axis(self) -> list["Node"]:
        """All nodes after this one in document order, excluding descendants."""
        result: list[Node] = []
        node: Node = self
        while node is not None:
            for sibling in node.following_sibling_axis():
                result.append(sibling)
                result.extend(sibling.descendant_axis())
            node = node.parent  # type: ignore[assignment]
            if node is None:
                break
        return result

    def preceding_axis(self) -> list["Node"]:
        """All nodes before this one in document order, excluding ancestors."""
        ancestors = set(id(a) for a in self.ancestor_or_self_axis())
        root = self.root()
        result = []
        for node in root.descendant_or_self_axis():
            if node.order_key >= self.order_key:
                break
            if id(node) not in ancestors:
                result.append(node)
        return list(reversed(result))

    def attribute_axis(self) -> list["AttributeNode"]:
        return []

    # -- misc ---------------------------------------------------------------

    def iter_tree(self) -> Iterator["Node"]:
        """Pre-order iteration over this node and all descendants.

        Iterative (explicit stack) so arbitrarily deep documents cannot hit
        Python's recursion limit — same discipline as ``descendant_axis``.
        """
        stack: list[Node] = [self]
        while stack:
            node = stack.pop()
            yield node
            children = node.children
            if children:
                stack.extend(reversed(children))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{self.node_kind.value} #{self.order_key}>"


class DocumentNode(Node):
    """A document node: the root of a parsed XML document."""

    __slots__ = ("_children", "base_uri", "_id_map")

    node_kind = NodeKind.DOCUMENT

    def __init__(self, base_uri: str | None = None):
        super().__init__()
        self._children: list[Node] = []
        self.base_uri = base_uri
        self._id_map: dict[str, "ElementNode"] = {}

    @property
    def children(self) -> list[Node]:
        return self._children

    def append_child(self, child: Node) -> None:
        _notify_structure_change(child)  # invalidate the child's old tree
        child.parent = self
        self._children.append(child)
        _notify_structure_change(self)

    def document_element(self) -> "ElementNode" | None:
        """The single element child of the document, if any."""
        for child in self._children:
            if isinstance(child, ElementNode):
                return child
        return None

    def string_value(self) -> str:
        return "".join(
            child.string_value() for child in self._children if not isinstance(child, (CommentNode, ProcessingInstructionNode))
        )

    # -- ID handling (fn:id) -----------------------------------------------

    def register_id(self, value: str, element: "ElementNode") -> None:
        """Register *element* as the bearer of ID *value* (first one wins)."""
        self._id_map.setdefault(value, element)

    def lookup_id(self, value: str) -> "ElementNode" | None:
        """Return the element carrying ID *value*, or ``None``."""
        return self._id_map.get(value)

    def id_values(self) -> list[str]:
        """All registered ID values (document order of their elements)."""
        return sorted(self._id_map, key=lambda v: self._id_map[v].order_key)


class ElementNode(Node):
    """An element node with attributes and children."""

    __slots__ = ("_name", "_children", "_attributes")

    node_kind = NodeKind.ELEMENT

    def __init__(self, name: str):
        super().__init__()
        self._name = name
        self._children: list[Node] = []
        self._attributes: list[AttributeNode] = []

    @property
    def name(self) -> str:
        return self._name

    @property
    def children(self) -> list[Node]:
        return self._children

    @property
    def attributes(self) -> list["AttributeNode"]:
        return self._attributes

    def append_child(self, child: Node) -> None:
        if isinstance(child, AttributeNode):
            raise XQueryTypeError("attributes must be added with add_attribute()")
        _notify_structure_change(child)  # invalidate the child's old tree
        child.parent = self
        self._children.append(child)
        _notify_structure_change(self)

    def add_attribute(self, attribute: "AttributeNode") -> None:
        _notify_structure_change(attribute)
        attribute.parent = self
        self._attributes.append(attribute)
        _notify_structure_change(self)

    def attribute_axis(self) -> list["AttributeNode"]:
        return list(self._attributes)

    def get_attribute(self, name: str) -> "AttributeNode" | None:
        """Look up an attribute node by name, or ``None``."""
        for attribute in self._attributes:
            if attribute.name == name:
                return attribute
        return None

    def string_value(self) -> str:
        parts: list[str] = []
        for node in self.descendant_or_self_axis():
            if isinstance(node, TextNode):
                parts.append(node.content)
        return "".join(parts)


class AttributeNode(Node):
    """An attribute node; ``is_id`` marks DTD-declared ID attributes."""

    __slots__ = ("_name", "value", "is_id")

    node_kind = NodeKind.ATTRIBUTE

    def __init__(self, name: str, value: str, is_id: bool = False):
        super().__init__()
        self._name = name
        self.value = value
        self.is_id = is_id

    @property
    def name(self) -> str:
        return self._name

    def set_value(self, value: str) -> None:
        """Rewrite the attribute value, invalidating cached value indexes."""
        self.value = value
        _notify_value_change(self)

    def string_value(self) -> str:
        return self.value


class TextNode(Node):
    """A text node."""

    __slots__ = ("content",)

    node_kind = NodeKind.TEXT

    def __init__(self, content: str):
        super().__init__()
        self.content = content

    def set_value(self, content: str) -> None:
        """Rewrite the text content, invalidating cached value indexes.

        Element string values are concatenations of descendant text, so a
        text edit changes the value of every ancestor element as well — the
        hook drops the whole tree's value indexes.
        """
        self.content = content
        _notify_value_change(self)

    def string_value(self) -> str:
        return self.content


class CommentNode(Node):
    """A comment node."""

    __slots__ = ("content",)

    node_kind = NodeKind.COMMENT

    def __init__(self, content: str):
        super().__init__()
        self.content = content

    def string_value(self) -> str:
        return self.content

    def typed_value(self):
        return self.content


class ProcessingInstructionNode(Node):
    """A processing-instruction node."""

    __slots__ = ("_target", "content")

    node_kind = NodeKind.PROCESSING_INSTRUCTION

    def __init__(self, target: str, content: str):
        super().__init__()
        self._target = target
        self.content = content

    @property
    def name(self) -> str:
        return self._target

    def string_value(self) -> str:
        return self.content

    def typed_value(self):
        return self.content
