"""Per-document structural index: axis steps as array slices and dict hits.

This is the in-memory counterpart of the pre/post plane the SQL backend
shreds documents into (:mod:`repro.sqlbackend.schema`): one document-order
walk assigns every tree node a ``pre`` rank (entry tick) and ``post`` rank
(exit tick), after which

* document order      == ascending ``pre``,
* the descendants of the node at ``pre`` ``p`` are exactly the contiguous
  slice ``(p, p + size[p]]`` of the pre-order array (``size[p]`` being the
  subtree's descendant count), and
* ``a`` is an ancestor of ``d``  ⟺  ``pre[a] < pre[d] and post[a] > post[d]``.

On top of the plain arrays (``nodes``, ``post``, ``level``, ``parent_pre``,
``size``, ``sib_pos``) the index keeps a *name inverted index* — element
name → sorted list of ``pre`` ranks — so a ``descendant::n`` step is two
bisections into that list, and lazy per-node *child-by-name maps* so a
``child::n`` step is a dict lookup.  The batch kernels
(:func:`batch_step`) take a whole column of context nodes at once: for the
descendant axes the context intervals are merged (nested intervals are
skipped, which is what makes the result duplicate-free *by construction*),
for every other axis results are deduplicated with an identity set and
sorted once by ``order_key`` — never the quadratic per-node filtering the
naive axis methods would add up to.

Indexes are built lazily, once per tree root, and shared by every engine
(interpreter and algebra; the SQL backend has its own shredded copy).  A
small registry keeps the most recently used indexes; structural mutations
(``append_child``, ``add_attribute``, the builders' ``_renumber_subtree``)
invalidate the affected tree's entry through the hook this module installs
into :mod:`repro.xdm.node` on import — before that import no index exists,
so node construction pays nothing.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right
from collections import OrderedDict
from threading import RLock

from repro import faults
from repro.observability.tracing import current_trace
from repro.xdm import node as _node_module
from repro.xdm.node import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)

#: Axes whose natural order is reverse document order (mirrors the
#: evaluator's REVERSE_AXES; kept here so the index has no xquery import).
_REVERSE_AXES = {"ancestor", "ancestor-or-self", "parent", "preceding",
                 "preceding-sibling"}

_KIND_CLASSES = {
    "text": TextNode,
    "comment": CommentNode,
    "processing-instruction": ProcessingInstructionNode,
    "document-node": DocumentNode,
}

#: Shared empty results for value-index misses (never mutated).
_EMPTY_SET: frozenset = frozenset()
_EMPTY_DICT: dict = {}


class StructuralIndex:
    """Pre/post-plane arrays plus name indexes for one tree.

    Attribute nodes are deliberately *not* part of the pre-order arrays
    (exactly as in the SQL shredding): they never appear on the descendant
    or sibling axes, and the attribute axis reads the owning element's
    attribute list directly.
    """

    __slots__ = ("root", "generation", "nodes", "pre_of", "post", "level",
                 "parent_pre", "size", "sib_pos", "name_pres", "elem_pres",
                 "kind_pres", "_child_by_name", "_attr_owner_sets",
                 "_attr_value_sets", "_child_parent_sets", "_elem_value_sets",
                 "_child_value_parent_sets")

    def __init__(self, root: Node):
        self.root = root
        #: The global mutation generation this index was built at (see
        #: :func:`mutation_generation`); lets holders tell a fresh index
        #: from one built before the last structural change.
        self.generation = _MUTATION_GENERATION
        nodes: list[Node] = []
        post: list[int] = []
        level: list[int] = []
        parent_pre: list[int] = []
        size: list[int] = []
        sib_pos: list[int] = []
        pre_of: dict[int, int] = {}
        name_pres: dict[str, list[int]] = {}
        elem_pres: list[int] = []
        kind_pres: dict[type, list[int]] = {}

        # One explicit-stack walk assigns pre (entry tick) and post (exit
        # tick) from a shared counter, so deep documents cannot exhaust the
        # Python stack.  Frames are (node, parent_pre, level, sib_pos,
        # closing) — each node is pushed twice: once to enter, once to
        # close.  At close time every node entered after it is one of its
        # descendants (siblings enter only later), which yields the subtree
        # size directly.
        tick = 0
        stack: list[tuple[Node, int, int, int, bool]] = [(root, -1, 0, 0, False)]
        while stack:
            node, par, lvl, sib, closing = stack.pop()
            if closing:
                pre = pre_of[id(node)]
                size[pre] = len(nodes) - pre - 1
                post[pre] = tick
                tick += 1
                continue
            pre = len(nodes)
            nodes.append(node)
            pre_of[id(node)] = pre
            level.append(lvl)
            parent_pre.append(par)
            sib_pos.append(sib)
            size.append(0)   # patched at close time
            post.append(0)   # patched at close time
            tick += 1
            if isinstance(node, ElementNode):
                elem_pres.append(pre)
                name_pres.setdefault(node.name, []).append(pre)
            else:
                kind_pres.setdefault(type(node), []).append(pre)
            # Close-frame first so it pops only after all children closed.
            stack.append((node, par, lvl, sib, True))
            children = node.children
            for position in range(len(children) - 1, -1, -1):
                stack.append((children[position], pre, lvl + 1, position, False))

        self.nodes = nodes
        self.pre_of = pre_of
        self.post = post
        self.level = level
        self.parent_pre = parent_pre
        self.size = size
        self.sib_pos = sib_pos
        self.name_pres = name_pres
        self.elem_pres = elem_pres
        self.kind_pres = kind_pres
        self._child_by_name: dict[int, dict[str, list[Node]]] = {}
        self._reset_value_indexes()

    # -- value inverted indexes ----------------------------------------------
    #
    # Built lazily from the pre-order arrays on the first value-predicate
    # kernel call; dropped (only these — the plane arrays stay valid) by the
    # value-mutation hook (:func:`invalidate_value_indexes`).

    def _reset_value_indexes(self) -> None:
        #: attribute name → set of owner-element pres
        self._attr_owner_sets: dict[str, set[int]] | None = None
        #: attribute name → value → set of owner-element pres
        self._attr_value_sets: dict[str, dict[str, set[int]]] | None = None
        #: element name → set of parent pres (child-existence tests)
        self._child_parent_sets: dict[str, set[int]] = {}
        #: element name → string value → set of element pres
        self._elem_value_sets: dict[str, dict[str, set[int]]] = {}
        #: (element name, string value) → set of parent pres
        self._child_value_parent_sets: dict[tuple[str, str], set[int]] = {}

    def clear_value_indexes(self) -> None:
        """Drop the lazy value indexes (after a value mutation)."""
        self._reset_value_indexes()

    def _build_attr_indexes(self) -> tuple[dict, dict]:
        owner_sets: dict[str, set[int]] = {}
        value_sets: dict[str, dict[str, set[int]]] = {}
        nodes = self.nodes
        for pre in self.elem_pres:
            for attribute in nodes[pre].attributes:
                owner_sets.setdefault(attribute.name, set()).add(pre)
                value_sets.setdefault(attribute.name, {}).setdefault(
                    attribute.value, set()).add(pre)
        self._attr_owner_sets = owner_sets
        self._attr_value_sets = value_sets
        return owner_sets, value_sets

    # The lazy accessors read the built structure into a local before use:
    # a concurrent clear_value_indexes() then only costs a rebuild on the
    # next call instead of a None dereference mid-lookup.  Two threads
    # building the same index concurrently is benign (same content, last
    # assignment wins).

    def attr_owner_pres(self, name: str) -> set[int]:
        """Pres of elements carrying an attribute called *name*."""
        sets = self._attr_owner_sets
        if sets is None:
            sets, _ = self._build_attr_indexes()
        return sets.get(name, _EMPTY_SET)

    def attr_value_owner_pres(self, name: str, value: str) -> set[int]:
        """Pres of elements carrying attribute *name* with exactly *value*."""
        sets = self._attr_value_sets
        if sets is None:
            _, sets = self._build_attr_indexes()
        return sets.get(name, _EMPTY_DICT).get(value, _EMPTY_SET)

    def child_name_parent_pres(self, name: str) -> set[int]:
        """Pres of nodes having an element child called *name*."""
        parents = self._child_parent_sets.get(name)
        if parents is None:
            parent_pre = self.parent_pre
            parents = {parent_pre[p] for p in self.name_pres.get(name, ())
                       if parent_pre[p] >= 0}
            self._child_parent_sets[name] = parents
        return parents

    def elem_value_pres(self, name: str, value: str) -> set[int]:
        """Pres of elements called *name* whose string value equals *value*."""
        by_value = self._elem_value_sets.get(name)
        if by_value is None:
            by_value = {}
            nodes = self.nodes
            for pre in self.name_pres.get(name, ()):
                by_value.setdefault(nodes[pre].string_value(), set()).add(pre)
            self._elem_value_sets[name] = by_value
        return by_value.get(value, _EMPTY_SET)

    def child_value_parent_pres(self, name: str, value: str) -> set[int]:
        """Pres of nodes having a child element *name* with string value
        *value* — the membership set of ``[name = "value"]``."""
        key = (name, value)
        parents = self._child_value_parent_sets.get(key)
        if parents is None:
            parent_pre = self.parent_pre
            parents = {parent_pre[p] for p in self.elem_value_pres(name, value)
                       if parent_pre[p] >= 0}
            self._child_value_parent_sets[key] = parents
        return parents

    # -- basic lookups --------------------------------------------------------

    def __len__(self) -> int:
        return len(self.nodes)

    def pre(self, node: Node) -> int | None:
        """The pre rank of *node* in this tree, or ``None`` (attributes,
        nodes of other trees)."""
        return self.pre_of.get(id(node))

    def is_ancestor(self, ancestor: Node, descendant: Node) -> bool:
        a = self.pre_of.get(id(ancestor))
        d = self.pre_of.get(id(descendant))
        if a is None or d is None:
            return False
        return a < d <= a + self.size[a]

    # -- single-node kernels --------------------------------------------------
    #
    # Every kernel returns the matched nodes in the axis's natural order
    # (reverse axes nearest-first), exactly like the naive axis methods, or
    # ``None`` when this index cannot answer (node not covered).

    def step(self, node: Node, axis: str, kind: str,
             name: str | None) -> list[Node] | None:
        """One axis step with node test, answered from the index."""
        if axis == "attribute":
            return _match_attributes(node, kind, name)
        if axis == "self":
            return [node] if _matches(node, kind, name, axis) else []
        if isinstance(node, AttributeNode):
            # Attributes are outside the pre-order plane; their only
            # non-empty tree axes go upward through the owner element.
            return _attribute_upward(node, axis, kind, name)
        pre = self.pre_of.get(id(node))
        if pre is None:
            return None
        if axis == "descendant":
            return self._range_matches(pre + 1, pre + self.size[pre], kind, name)
        if axis == "descendant-or-self":
            return self._range_matches(pre, pre + self.size[pre], kind, name)
        if axis == "child":
            return self._children(pre, node, kind, name)
        if axis == "parent":
            parent = self.parent_pre[pre]
            if parent < 0:
                return []
            return [n for n in (self.nodes[parent],) if _matches(n, kind, name, axis)]
        if axis in ("ancestor", "ancestor-or-self"):
            result = []
            p = pre if axis == "ancestor-or-self" else self.parent_pre[pre]
            while p >= 0:
                candidate = self.nodes[p]
                if _matches(candidate, kind, name, axis):
                    result.append(candidate)
                p = self.parent_pre[p]
            return result
        if axis == "following-sibling":
            parent = self.parent_pre[pre]
            if parent < 0:
                return []
            siblings = self.nodes[parent].children
            return [s for s in siblings[self.sib_pos[pre] + 1:]
                    if _matches(s, kind, name, axis)]
        if axis == "preceding-sibling":
            parent = self.parent_pre[pre]
            if parent < 0:
                return []
            siblings = self.nodes[parent].children
            return [s for s in reversed(siblings[:self.sib_pos[pre]])
                    if _matches(s, kind, name, axis)]
        if axis == "following":
            return self._range_matches(pre + self.size[pre] + 1,
                                       len(self.nodes) - 1, kind, name)
        if axis == "preceding":
            matches = self._range_matches(0, pre - 1, kind, name)
            if matches:
                ancestors = set()
                p = self.parent_pre[pre]
                while p >= 0:
                    ancestors.add(id(self.nodes[p]))
                    p = self.parent_pre[p]
                matches = [n for n in matches if id(n) not in ancestors]
            matches.reverse()
            return matches
        return None

    def descendant_interval(self, node: Node,
                            or_self: bool = False) -> tuple[int, int] | None:
        """The inclusive pre-order interval covering *node*'s subtree."""
        pre = self.pre_of.get(id(node))
        if pre is None:
            return None
        return (pre if or_self else pre + 1, pre + self.size[pre])

    def range_matches(self, lo: int, hi: int, kind: str,
                      name: str | None) -> list[Node]:
        """Nodes in the inclusive pre interval ``[lo, hi]`` passing the test."""
        return self._range_matches(lo, hi, kind, name)

    # -- internals ------------------------------------------------------------

    def _range_matches(self, lo: int, hi: int, kind: str,
                       name: str | None) -> list[Node]:
        if hi < lo:
            return []
        nodes = self.nodes
        if kind == "node":
            return nodes[lo:hi + 1]
        pres = self._test_pres(kind, name)
        if pres is None:
            # Rare tests (e.g. a PI with a target name): slice then filter.
            return [n for n in nodes[lo:hi + 1] if _matches(n, kind, name, "descendant")]
        start = bisect_left(pres, lo)
        stop = bisect_right(pres, hi, start)
        return [nodes[p] for p in pres[start:stop]]

    def _test_pres(self, kind: str, name: str | None) -> list[int] | None:
        """The sorted pre list matching a node test, or ``None``."""
        if kind == "name":
            if name == "*":
                return self.elem_pres
            return self.name_pres.get(name, [])
        if kind == "element":
            if name is None:
                return self.elem_pres
            return self.name_pres.get(name, [])
        if kind == "attribute":
            return []  # the tree walk never yields attribute nodes
        cls = _KIND_CLASSES.get(kind)
        if cls is None:
            return None
        if kind == "processing-instruction" and name is not None:
            return None  # needs a per-node target check
        return self.kind_pres.get(cls, [])

    def _children(self, pre: int, node: Node, kind: str,
                  name: str | None) -> list[Node]:
        if kind in ("name", "element") and name not in (None, "*"):
            by_name = self._child_by_name.get(pre)
            if by_name is None:
                by_name = {}
                for child in node.children:
                    if isinstance(child, ElementNode):
                        by_name.setdefault(child.name, []).append(child)
                self._child_by_name[pre] = by_name
            return list(by_name.get(name, ()))
        return [c for c in node.children if _matches(c, kind, name, "child")]


# ---------------------------------------------------------------------------
# node tests (mirrors Evaluator._node_test; cross-checked by the property
# test suite in tests/test_structural_index.py)
# ---------------------------------------------------------------------------


def _matches(node: Node, kind: str, name: str | None, axis: str) -> bool:
    if kind == "name":
        if axis == "attribute":
            if not isinstance(node, AttributeNode):
                return False
        elif not isinstance(node, ElementNode):
            return False
        return name == "*" or node.name == name
    if kind == "node":
        return True
    if kind == "text":
        return isinstance(node, TextNode)
    if kind == "comment":
        return isinstance(node, CommentNode)
    if kind == "processing-instruction":
        return isinstance(node, ProcessingInstructionNode) and (
            name is None or node.name == name)
    if kind == "element":
        return isinstance(node, ElementNode) and (name is None or node.name == name)
    if kind == "attribute":
        return isinstance(node, AttributeNode) and (name is None or node.name == name)
    if kind == "document-node":
        return isinstance(node, DocumentNode)
    return False


def _match_attributes(node: Node, kind: str, name: str | None) -> list[Node]:
    attributes = node.attribute_axis()
    return [a for a in attributes if _matches(a, kind, name, "attribute")]


def _attribute_upward(node: AttributeNode, axis: str, kind: str,
                      name: str | None) -> list[Node] | None:
    if axis in ("descendant", "child", "following-sibling", "preceding-sibling"):
        return []
    if axis == "descendant-or-self":
        return [node] if _matches(node, kind, name, axis) else []
    if axis == "parent":
        owner = node.parent
        return [owner] if owner is not None and _matches(owner, kind, name, axis) else []
    if axis in ("ancestor", "ancestor-or-self"):
        result = []
        current = node if axis == "ancestor-or-self" else node.parent
        while current is not None:
            if _matches(current, kind, name, axis):
                result.append(current)
            current = current.parent
        return result
    # following / preceding of attribute nodes keep their naive definitions;
    # fall back rather than re-deriving them here.
    return None


# ---------------------------------------------------------------------------
# the per-root registry and its invalidation hook
# ---------------------------------------------------------------------------

#: Most-recently-used cache of live indexes: id(root) → (root, index).  The
#: root is kept as a strong reference both to pin the id() and because a
#: cached index is only useful while its document is reachable anyway.
_REGISTRY: "OrderedDict[int, tuple[Node, StructuralIndex]]" = OrderedDict()

#: Guards the registry against concurrent service traffic.  The lock is
#: held only for registry bookkeeping, never while *building* would-be-hot
#: state inside an index (the lazy value indexes build lock-free); the
#: worst concurrent case is two threads building the same index and one
#: winning the registry slot.  Lock order (see DESIGN.md §8): a thread
#: holding a Session lock may take this lock; never the reverse.
_REGISTRY_LOCK = RLock()

#: Monotonic counter bumped on every structural or value mutation that
#: reaches the hooks below.  Snapshot holders (the per-worker SQLite store
#: pool, service stats) compare it against the generation they captured to
#: detect that *any* indexed/shredded tree changed underneath them.
_MUTATION_GENERATION = 0

#: Bound on live indexes (evaluation constructs many small transient trees;
#: their indexes must not accumulate).
REGISTRY_LIMIT = 64


def _root_of(node: Node) -> Node:
    while node.parent is not None:
        node = node.parent
    return node


def mutation_generation() -> int:
    """The current global mutation generation (monotonic, process-wide)."""
    return _MUTATION_GENERATION


def index_for(node: Node, build: bool = True) -> StructuralIndex | None:
    """The structural index of *node*'s tree (built lazily, cached per root)."""
    root = _root_of(node)
    with _REGISTRY_LOCK:
        entry = _REGISTRY.get(id(root))
        if entry is not None and entry[0] is root:
            _REGISTRY.move_to_end(id(root))
            return entry[1]
    if not build:
        return None
    faults.trigger("index-build")
    trace = current_trace()
    if trace is not None:
        with trace.span("index-build") as span:
            built = StructuralIndex(root)
            span.set(nodes=len(built))
    else:
        built = StructuralIndex(root)
    with _REGISTRY_LOCK:
        # A racing thread may have registered its own build meanwhile;
        # serve that one so every caller shares a single index object.
        entry = _REGISTRY.get(id(root))
        if entry is not None and entry[0] is root:
            _REGISTRY.move_to_end(id(root))
            return entry[1]
        _REGISTRY[id(root)] = (root, built)
        if len(_REGISTRY) > REGISTRY_LIMIT:
            _REGISTRY.popitem(last=False)
    return built


def cached_index(node: Node) -> StructuralIndex | None:
    """The cached index of *node*'s tree, or ``None`` (never builds)."""
    return index_for(node, build=False)


def invalidate_index(node: Node) -> None:
    """Drop the cached index of the tree currently containing *node*.

    Installed into :mod:`repro.xdm.node` as the structure-change hook; the
    mutators call it *before* re-parenting (to catch the old tree) and after
    (to catch the new one).  The empty-registry fast path keeps bulk
    document construction at O(1) per mutation until a first index exists.
    """
    global _MUTATION_GENERATION
    with _REGISTRY_LOCK:
        _MUTATION_GENERATION += 1
        if not _REGISTRY:
            return
        _REGISTRY.pop(id(_root_of(node)), None)


def invalidate_value_indexes(node: Node) -> None:
    """Drop the *value* indexes of the tree containing *node*.

    Installed into :mod:`repro.xdm.node` as the value-change hook
    (``set_value`` on attributes and text nodes).  Structural arrays stay
    valid — only the lazy value inverted indexes are reset, so the next
    value predicate rebuilds them from the current values.
    """
    global _MUTATION_GENERATION
    with _REGISTRY_LOCK:
        _MUTATION_GENERATION += 1
        if not _REGISTRY:
            return
        entry = _REGISTRY.get(id(_root_of(node)))
        if entry is not None:
            entry[1].clear_value_indexes()


def clear_index_registry() -> None:
    """Drop every cached index (test isolation / memory pressure)."""
    global _MUTATION_GENERATION
    with _REGISTRY_LOCK:
        _MUTATION_GENERATION += 1
        _REGISTRY.clear()


def registry_size() -> int:
    with _REGISTRY_LOCK:
        return len(_REGISTRY)


_node_module._structure_change_hook = invalidate_index
_node_module._value_change_hook = invalidate_value_indexes


# ---------------------------------------------------------------------------
# step entry points used by the engines
# ---------------------------------------------------------------------------

#: Axes answered from the pre-order plane arrays, where the batch kernels
#: are an *algorithmic* win (merged interval slices instead of per-node
#: walks plus an O(m log m) ddo): re-fed fixpoint contexts should batch
#: these even when a per-node memo is available.
PLANE_AXES = frozenset({"descendant", "descendant-or-self", "following"})

#: Axes where the index beats the naive axis methods for a *single* context
#: node.  The pointer-chasing axes (child, parent, ancestor, attribute,
#: self) are already answered optimally from the node objects; the indexed
#: variants would only add a root walk on top.
_SINGLE_NODE_AXES = {"descendant", "descendant-or-self", "following",
                     "preceding", "following-sibling", "preceding-sibling"}


def indexed_step(node: Node, axis: str, kind: str,
                 name: str | None) -> list[Node] | None:
    """One context node's axis step via the structural index.

    Returns the matched nodes in the axis's natural order, or ``None`` when
    the index does not expect to beat the naive axis methods (the caller
    falls back to them).
    """
    if axis not in _SINGLE_NODE_AXES:
        return None
    if isinstance(node, AttributeNode):
        return _attribute_upward(node, axis, kind, name)
    return index_for(node).step(node, axis, kind, name)


class IndexSet:
    """Resolves nodes to their tree's index, walking to a root only once
    per distinct tree rather than once per context node.

    The engines keep one per batch (the algebra step macro: one per
    ``compute`` call) so that per-node kernel dispatch — including the
    pointer-cheap axes the bare :func:`indexed_step` does not index —
    amortizes the root walk across the whole context column.
    """

    __slots__ = ("indexes",)

    def __init__(self):
        self.indexes: list[StructuralIndex] = []

    def for_node(self, node: Node) -> StructuralIndex:
        for idx in self.indexes:
            if id(node) in idx.pre_of:
                return idx
        idx = index_for(node)
        self.indexes.append(idx)
        return idx

    def step(self, node: Node, axis: str, kind: str,
             name: str | None) -> list[Node] | None:
        """One node's axis step, any axis, in the axis's natural order."""
        if axis == "attribute":
            return _match_attributes(node, kind, name)
        if axis == "self":
            return [node] if _matches(node, kind, name, axis) else []
        if isinstance(node, AttributeNode):
            return _attribute_upward(node, axis, kind, name)
        return self.for_node(node).step(node, axis, kind, name)


def batch_step(nodes: list[Node], axis: str, kind: str,
               name: str | None) -> list[Node] | None:
    """A whole column of context nodes through one axis step.

    Returns the union of the per-node step results, deduplicated and in
    document order (the ``fs:ddo`` the step macro encapsulates), or ``None``
    when the kernels cannot answer for some context node.

    The descendant axes use pre-order interval merging: context intervals
    are visited in ascending ``pre`` and nested intervals contribute nothing
    new, so the concatenated slice lookups are duplicate-free and sorted by
    construction.  ``following`` unions to a single suffix slice.  The
    pointer-chasing axes stay on the node objects; everything is
    deduplicated once by identity and sorted once by ``order_key``.
    """
    if not nodes:
        return []
    distinct = nodes
    if len(nodes) > 1:
        seen: set[int] = set()
        distinct = []
        for node in nodes:
            if id(node) not in seen:
                seen.add(id(node))
                distinct.append(node)

    if axis in ("descendant", "descendant-or-self", "following"):
        return _batch_plane(distinct, axis, kind, name)

    collected: list[Node] = []
    if axis == "attribute":
        for node in distinct:
            collected.extend(_match_attributes(node, kind, name))
    elif axis == "self":
        collected = [n for n in distinct if _matches(n, kind, name, axis)]
    elif axis == "parent":
        for node in distinct:
            parent = node.parent
            if parent is not None and _matches(parent, kind, name, axis):
                collected.append(parent)
    elif axis in ("ancestor", "ancestor-or-self"):
        for node in distinct:
            current = node if axis == "ancestor-or-self" else node.parent
            while current is not None:
                if _matches(current, kind, name, axis):
                    collected.append(current)
                current = current.parent
    elif axis == "child":
        indexes = IndexSet()
        for node in distinct:
            if isinstance(node, AttributeNode):
                continue
            idx = indexes.for_node(node)
            pre = idx.pre_of.get(id(node))
            if pre is None:
                return None
            collected.extend(idx._children(pre, node, kind, name))
    elif axis in ("following-sibling", "preceding-sibling", "preceding"):
        indexes = IndexSet()
        for node in distinct:
            if isinstance(node, AttributeNode):
                result = _attribute_upward(node, axis, kind, name)
                if result is None:
                    return None
                collected.extend(result)
                continue
            idx = indexes.for_node(node)
            result = idx.step(node, axis, kind, name)
            if result is None:
                return None
            collected.extend(result)
    else:
        return None

    return _ddo_by_order_key(collected, already_unique=len(distinct) == 1
                             and axis not in _REVERSE_AXES)


def _ddo_by_order_key(collected: list[Node], already_unique: bool) -> list[Node]:
    if already_unique:
        return collected
    seen: set[int] = set()
    unique: list[Node] = []
    for item in collected:
        if id(item) not in seen:
            seen.add(id(item))
            unique.append(item)
    unique.sort(key=lambda n: n.order_key)
    return unique


def _batch_plane(distinct: list[Node], axis: str, kind: str,
                 name: str | None) -> list[Node] | None:
    """Batch kernels over the pre-order plane (descendant axes, following)."""
    indexes = IndexSet()
    by_index: "OrderedDict[int, tuple[StructuralIndex, list[int]]]" = OrderedDict()
    or_self = axis == "descendant-or-self"
    for node in distinct:
        if isinstance(node, AttributeNode):
            if axis == "following":
                return None  # keeps its naive attribute definition
            if or_self and _matches(node, kind, name, axis):
                # An attribute context contributes only itself; merge below
                # would lose it, so fall back to the generic sort path.
                return None
            continue
        idx = indexes.for_node(node)
        pre = idx.pre_of.get(id(node))
        if pre is None:
            return None
        entry = by_index.get(id(idx))
        if entry is None:
            by_index[id(idx)] = (idx, [pre])
        else:
            entry[1].append(pre)

    per_tree: list[list[Node]] = []
    for idx, pres in by_index.values():
        if axis == "following":
            # The union of per-node suffixes is the suffix of the earliest
            # subtree end.
            start = min(pre + idx.size[pre] + 1 for pre in pres)
            per_tree.append(idx.range_matches(start, len(idx.nodes) - 1, kind, name))
            continue
        pres.sort()
        matches: list[Node] = []
        covered_hi = -1
        for pre in pres:
            hi = pre + idx.size[pre]
            if hi <= covered_hi:
                continue  # nested inside an already-covered subtree
            lo = pre if or_self else pre + 1
            if lo <= covered_hi:
                lo = covered_hi + 1
            matches.extend(idx.range_matches(lo, hi, kind, name))
            covered_hi = hi
        per_tree.append(matches)

    if len(per_tree) == 1:
        return per_tree[0]
    merged = [node for matches in per_tree for node in matches]
    merged.sort(key=lambda n: n.order_key)
    return merged
