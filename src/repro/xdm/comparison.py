"""Value and deep equality for XDM items and sequences.

``fn:deep-equal`` is needed both by the built-in function library and by the
paper's undecidability argument in Section 3.2 (footnote 2); atomic equality
with untyped promotion underlies general comparisons, which drive the
value-based joins of the benchmark queries.
"""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.xdm.items import UntypedAtomic, is_node, is_numeric, xs_double
from repro.xdm.node import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)


def atomic_equal(left: Any, right: Any) -> bool:
    """Equality of two atomic values with untyped/numeric promotion.

    * untyped vs numeric — untyped is cast to ``xs:double``;
    * untyped vs string/untyped — compared as strings;
    * numeric vs numeric — numeric comparison;
    * otherwise — equality of equal types only.
    """
    if isinstance(left, UntypedAtomic) and is_numeric(right):
        try:
            return xs_double(left) == right
        except Exception:
            return False
    if isinstance(right, UntypedAtomic) and is_numeric(left):
        try:
            return left == xs_double(right)
        except Exception:
            return False
    if isinstance(left, UntypedAtomic) or isinstance(right, UntypedAtomic):
        return str(left) == str(right)
    if isinstance(left, bool) or isinstance(right, bool):
        return isinstance(left, bool) and isinstance(right, bool) and left == right
    if is_numeric(left) and is_numeric(right):
        return left == right
    if isinstance(left, str) and isinstance(right, str):
        return left == right
    return type(left) is type(right) and left == right


def atomic_less_than(left: Any, right: Any) -> bool:
    """Ordering of two atomic values with untyped/numeric promotion."""
    if isinstance(left, UntypedAtomic) and is_numeric(right):
        return xs_double(left) < right
    if isinstance(right, UntypedAtomic) and is_numeric(left):
        return left < xs_double(right)
    if isinstance(left, UntypedAtomic) or isinstance(right, UntypedAtomic):
        return str(left) < str(right)
    if is_numeric(left) and is_numeric(right):
        return left < right
    if isinstance(left, str) and isinstance(right, str):
        return left < right
    from repro.errors import XQueryTypeError

    raise XQueryTypeError(
        f"cannot order values of types {type(left).__name__} and {type(right).__name__}"
    )


def deep_equal(left: Sequence[Any], right: Sequence[Any]) -> bool:
    """``fn:deep-equal`` over two sequences."""
    left_items = list(left)
    right_items = list(right)
    if len(left_items) != len(right_items):
        return False
    return all(_deep_equal_item(a, b) for a, b in zip(left_items, right_items))


def _deep_equal_item(left: Any, right: Any) -> bool:
    if is_node(left) != is_node(right):
        return False
    if not is_node(left):
        try:
            return atomic_equal(left, right)
        except Exception:
            return False
    return _deep_equal_node(left, right)


def _deep_equal_node(left: Node, right: Node) -> bool:
    if type(left) is not type(right):
        return False
    if isinstance(left, (TextNode, CommentNode)):
        return left.string_value() == right.string_value()
    if isinstance(left, AttributeNode):
        return left.name == right.name and left.value == right.value  # type: ignore[union-attr]
    if isinstance(left, ProcessingInstructionNode):
        return left.name == right.name and left.content == right.content  # type: ignore[union-attr]
    if isinstance(left, ElementNode):
        right_element: ElementNode = right  # type: ignore[assignment]
        if left.name != right_element.name:
            return False
        left_attrs = {attr.name: attr.value for attr in left.attributes}
        right_attrs = {attr.name: attr.value for attr in right_element.attributes}
        if left_attrs != right_attrs:
            return False
        return _deep_equal_content(left.children, right_element.children)
    if isinstance(left, DocumentNode):
        return _deep_equal_content(left.children, right.children)
    return False  # pragma: no cover - all kinds handled above


def _deep_equal_content(left: Sequence[Node], right: Sequence[Node]) -> bool:
    """Compare element/document content, ignoring comments and PIs."""
    left_relevant = [n for n in left if not isinstance(n, (CommentNode, ProcessingInstructionNode))]
    right_relevant = [n for n in right if not isinstance(n, (CommentNode, ProcessingInstructionNode))]
    if len(left_relevant) != len(right_relevant):
        return False
    return all(_deep_equal_node(a, b) for a, b in zip(left_relevant, right_relevant))
