"""Atomic values and item-level helpers of the XQuery Data Model.

The engine represents atomic values with native Python types wherever the
mapping is unambiguous:

===================  ==========================================
XDM type             Python representation
===================  ==========================================
``xs:string``        :class:`str`
``xs:integer``       :class:`int` (not ``bool``)
``xs:double``        :class:`float`
``xs:decimal``       :class:`float` (collapsed onto double)
``xs:boolean``       :class:`bool`
``xs:untypedAtomic`` :class:`UntypedAtomic` (a ``str`` subclass)
``xs:QName``         :class:`QName`
===================  ==========================================

Collapsing ``xs:decimal`` onto ``float`` loses the distinction between exact
and approximate numerics; none of the paper's queries depend on it and the
simplification keeps arithmetic rules short.  ``xs:untypedAtomic`` must stay
distinguishable from ``xs:string`` because general comparisons promote
untyped values to the type of the other operand (e.g. ``@code = 42`` compares
numerically), which drives the curriculum and bidder-network joins.
"""

from __future__ import annotations

from typing import Any

from repro.errors import XQueryTypeError


class UntypedAtomic(str):
    """An ``xs:untypedAtomic`` value.

    Behaves as a string for most purposes, but general comparisons detect the
    type and apply the promotion rules of XQuery 1.0 (untyped compares
    numerically against numbers, as string against strings).
    """

    __slots__ = ()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"UntypedAtomic({str.__repr__(self)})"


class QName:
    """A (prefix, local name) pair.

    The engine is namespace-light: prefixes are carried around verbatim and
    compared literally, which is all the paper's queries need.
    """

    __slots__ = ("prefix", "local")

    def __init__(self, local: str, prefix: str | None = None):
        self.prefix = prefix
        self.local = local

    @classmethod
    def parse(cls, lexical: str) -> "QName":
        """Parse a lexical QName such as ``fn:count`` or ``person``."""
        if ":" in lexical:
            prefix, local = lexical.split(":", 1)
            return cls(local, prefix)
        return cls(lexical)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, QName):
            return NotImplemented
        return self.prefix == other.prefix and self.local == other.local

    def __hash__(self) -> int:
        return hash((self.prefix, self.local))

    def __str__(self) -> str:
        if self.prefix:
            return f"{self.prefix}:{self.local}"
        return self.local

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"QName({str(self)!r})"


#: Types accepted as atomic values throughout the engine.
_ATOMIC_TYPES = (str, int, float, bool, QName)


def is_atomic(item: Any) -> bool:
    """Return ``True`` if *item* is an XDM atomic value."""
    return isinstance(item, _ATOMIC_TYPES)


def is_node(item: Any) -> bool:
    """Return ``True`` if *item* is an XDM node.

    Implemented here (rather than with ``isinstance(item, Node)``) via duck
    typing on the ``node_kind`` attribute to avoid a circular import between
    :mod:`repro.xdm.items` and :mod:`repro.xdm.node`.
    """
    return hasattr(item, "node_kind")


def is_numeric(item: Any) -> bool:
    """Return ``True`` for ``xs:integer``/``xs:double`` values (not booleans)."""
    return isinstance(item, (int, float)) and not isinstance(item, bool)


def atomize_item(item: Any) -> Any:
    """Atomize a single item (nodes yield their typed value)."""
    if is_node(item):
        return item.typed_value()
    if is_atomic(item):
        return item
    raise XQueryTypeError(f"cannot atomize item of type {type(item).__name__}")


def string_value_of_item(item: Any) -> str:
    """The string value of an item (``fn:string`` on a single item)."""
    if is_node(item):
        return item.string_value()
    return format_atomic(item)


def format_atomic(value: Any) -> str:
    """Serialize an atomic value using XQuery's canonical lexical forms."""
    if isinstance(value, bool):
        return "true" if value else "false"
    if isinstance(value, float):
        if value != value:  # NaN
            return "NaN"
        if value == float("inf"):
            return "INF"
        if value == float("-inf"):
            return "-INF"
        if value == int(value) and abs(value) < 1e16:
            return str(int(value))
        return repr(value)
    if isinstance(value, (str, int)):
        return str(value)
    if isinstance(value, QName):
        return str(value)
    raise XQueryTypeError(f"cannot convert {type(value).__name__} to xs:string")


def xs_string(value: Any) -> str:
    """Cast an atomic value to ``xs:string``."""
    return format_atomic(value)


def xs_boolean(value: Any) -> bool:
    """Cast an atomic value to ``xs:boolean`` (XQuery casting rules)."""
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and value == value
    if isinstance(value, str):
        lexical = value.strip()
        if lexical in ("true", "1"):
            return True
        if lexical in ("false", "0"):
            return False
        raise XQueryTypeError(f"cannot cast {value!r} to xs:boolean", code="FORG0001")
    raise XQueryTypeError(f"cannot cast {type(value).__name__} to xs:boolean")


def xs_double(value: Any) -> float:
    """Cast an atomic value to ``xs:double``."""
    if isinstance(value, bool):
        return 1.0 if value else 0.0
    if isinstance(value, (int, float)):
        return float(value)
    if isinstance(value, str):
        lexical = value.strip()
        try:
            if lexical == "INF":
                return float("inf")
            if lexical == "-INF":
                return float("-inf")
            if lexical == "NaN":
                return float("nan")
            return float(lexical)
        except ValueError as exc:
            raise XQueryTypeError(f"cannot cast {value!r} to xs:double", code="FORG0001") from exc
    raise XQueryTypeError(f"cannot cast {type(value).__name__} to xs:double")


def xs_integer(value: Any) -> int:
    """Cast an atomic value to ``xs:integer``."""
    if isinstance(value, bool):
        return 1 if value else 0
    if isinstance(value, int):
        return value
    if isinstance(value, float):
        if value != value or value in (float("inf"), float("-inf")):
            raise XQueryTypeError(f"cannot cast {value!r} to xs:integer", code="FOCA0002")
        return int(value)
    if isinstance(value, str):
        try:
            return int(value.strip())
        except ValueError as exc:
            raise XQueryTypeError(f"cannot cast {value!r} to xs:integer", code="FORG0001") from exc
    raise XQueryTypeError(f"cannot cast {type(value).__name__} to xs:integer")


def numeric_promote(value: Any) -> float | int:
    """Promote an untyped or string value to a number for general comparison."""
    if is_numeric(value):
        return value
    return xs_double(value)
