"""repro — reproduction of "An Inflationary Fixed Point Operator in XQuery".

The package bundles a small but complete XQuery engine (data model, XML
parser, XQuery parser, interpreter), the paper's inflationary fixed point
operator with Naive and Delta evaluation, syntactic and algebraic
distributivity analyses, a Pathfinder-style relational algebra backend,
Regular XPath, workload generators and the benchmark harness that
regenerates the paper's Table 2.

Quick start::

    from repro import parse_xml, evaluate

    doc = parse_xml(CURRICULUM_XML)
    result = evaluate(
        'with $x seeded by doc("c.xml")/curriculum/course[@code="c1"] '
        'recurse $x/id(./prerequisites/pre_code)',
        documents={"c.xml": doc},
    )

See :mod:`repro.api` for the full convenience API and the ``examples/``
directory of the repository for runnable scenarios.
"""

from repro.api import (
    BudgetExceeded,
    CancelToken,
    Engine,
    EvalSettings,
    PreparedQuery,
    QueryCancelled,
    QueryResult,
    QueryTimeout,
    ResourceLimits,
    Session,
    analyze_query_text,
    clear_query_caches,
    default_session,
    evaluate,
    evaluate_query,
    ifp,
    is_distributive_algebraic,
    is_distributive_static,
    is_distributive_syntactic,
    load_documents,
    parse_query,
    parse_query_text,
    query_cache_stats,
    transitive_closure,
)
from repro.xmlio.parser import parse_xml, parse_xml_file

__version__ = "1.1.0"

__all__ = [
    "BudgetExceeded",
    "CancelToken",
    "Engine",
    "EvalSettings",
    "PreparedQuery",
    "QueryCancelled",
    "QueryResult",
    "QueryTimeout",
    "ResourceLimits",
    "Session",
    "analyze_query_text",
    "clear_query_caches",
    "default_session",
    "evaluate",
    "evaluate_query",
    "ifp",
    "is_distributive_algebraic",
    "is_distributive_static",
    "is_distributive_syntactic",
    "load_documents",
    "parse_query",
    "parse_query_text",
    "query_cache_stats",
    "transitive_closure",
    "parse_xml",
    "parse_xml_file",
    "__version__",
]
