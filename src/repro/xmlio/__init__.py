"""XML parsing and serialization for the ``repro`` engine.

A deliberately small, hand-written, dependency-free XML 1.0 parser that
covers what the paper's documents need: elements, attributes, character
data, entity references, CDATA sections, comments, processing instructions,
and an internal-DTD scan that picks up ``<!ATTLIST ... ID ...>`` declarations
so that ``fn:id`` works on documents such as the curriculum data of
Figure 1 (where ``course/@code`` is declared ``ID``).
"""

from repro.xmlio.parser import parse_xml, parse_xml_file, XMLParser
from repro.xmlio.serializer import serialize, serialize_sequence

__all__ = ["parse_xml", "parse_xml_file", "XMLParser", "serialize", "serialize_sequence"]
