"""A hand-written, dependency-free XML 1.0 parser producing XDM trees.

Supported constructs
--------------------
* elements with attributes (quoted with ``"`` or ``'``)
* character data with the five predefined entities plus character references
* CDATA sections
* comments and processing instructions
* an XML declaration (``<?xml ...?>``), which is skipped
* an internal DTD subset (``<!DOCTYPE root [ ... ]>``) from which ID
  attribute declarations and internal general entities are extracted (see
  :mod:`repro.xmlio.dtd`)

Namespaces are treated literally (``xmlns`` attributes are ordinary
attributes and prefixed names are just names containing ``:``), which is
all the paper's workloads need.

Well-formedness violations raise :class:`~repro.errors.XMLSyntaxError` with
line/column information.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.errors import XMLSyntaxError
from repro.xdm.document import register_ids
from repro.xdm.node import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    ProcessingInstructionNode,
    TextNode,
)
from repro.xmlio.dtd import DTDInfo, parse_internal_dtd

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}

_NAME_START_EXTRA = set("_:")
_NAME_EXTRA = set("_:-.")


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char in _NAME_START_EXTRA


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in _NAME_EXTRA


class XMLParser:
    """Recursive-descent XML parser.

    Parameters
    ----------
    id_attributes:
        Extra attribute names to treat as ID-typed regardless of the DTD
        (e.g. ``{"id"}`` so ``fn:id`` works on DTD-less documents).
    strip_whitespace_text:
        When true (the default), text nodes consisting exclusively of
        whitespace between elements are dropped.  Pretty-printed benchmark
        documents otherwise drown queries in irrelevant text nodes.
    """

    def __init__(self, id_attributes: Iterable[str] = ("id", "xml:id"),
                 strip_whitespace_text: bool = True):
        self.id_attribute_names = set(id_attributes)
        self.strip_whitespace_text = strip_whitespace_text
        self._text = ""
        self._pos = 0
        self._dtd = DTDInfo()

    # -- public entry points -------------------------------------------------

    def parse(self, text: str, base_uri: str | None = None) -> DocumentNode:
        """Parse *text* into a :class:`~repro.xdm.node.DocumentNode`."""
        self._text = text
        self._pos = 0
        self._dtd = DTDInfo()
        doc = DocumentNode(base_uri=base_uri)
        self._skip_prolog(doc)
        root = self._parse_element()
        doc.append_child(root)
        self._skip_misc()
        if self._pos < len(self._text):
            self._error("content after document element")
        register_ids(doc, self.id_attribute_names)
        return doc

    # -- prolog ---------------------------------------------------------------

    def _skip_prolog(self, doc: DocumentNode) -> None:
        while True:
            self._skip_whitespace()
            if self._peek(5) == "<?xml" and self._text[self._pos + 5:self._pos + 6] in (" ", "?"):
                self._consume_until("?>")
            elif self._peek(4) == "<!--":
                doc.append_child(self._parse_comment())
            elif self._peek(2) == "<?":
                doc.append_child(self._parse_pi())
            elif self._peek(9) == "<!DOCTYPE":
                self._parse_doctype()
            else:
                break

    def _skip_misc(self) -> None:
        while True:
            self._skip_whitespace()
            if self._peek(4) == "<!--":
                self._parse_comment()
            elif self._peek(2) == "<?":
                self._parse_pi()
            else:
                break

    def _parse_doctype(self) -> None:
        start = self._pos
        self._pos += len("<!DOCTYPE")
        depth = 0
        internal_start = None
        while self._pos < len(self._text):
            char = self._text[self._pos]
            if char == "[":
                if depth == 0:
                    internal_start = self._pos + 1
                depth += 1
            elif char == "]":
                depth -= 1
                if depth == 0 and internal_start is not None:
                    self._dtd = parse_internal_dtd(self._text[internal_start:self._pos])
            elif char == ">" and depth == 0:
                self._pos += 1
                return
            self._pos += 1
        self._pos = start
        self._error("unterminated DOCTYPE declaration")

    # -- elements -------------------------------------------------------------

    def _parse_element(self) -> ElementNode:
        if not self._match("<"):
            self._error("expected element start tag")
        name = self._parse_name()
        element = ElementNode(name)
        self._parse_attributes(element, name)
        self._skip_whitespace()
        if self._match("/>"):
            return element
        if not self._match(">"):
            self._error(f"malformed start tag for element '{name}'")
        self._parse_content(element)
        if not self._match("</"):
            self._error(f"expected end tag for element '{name}'")
        end_name = self._parse_name()
        if end_name != name:
            self._error(f"mismatched end tag: expected '</{name}>', got '</{end_name}>'")
        self._skip_whitespace()
        if not self._match(">"):
            self._error(f"malformed end tag for element '{name}'")
        return element

    def _parse_attributes(self, element: ElementNode, element_name: str) -> None:
        seen: set[str] = set()
        while True:
            self._skip_whitespace()
            char = self._peek(1)
            if char in (">", "/") or not char:
                return
            attr_name = self._parse_name()
            if attr_name in seen:
                self._error(f"duplicate attribute '{attr_name}'")
            seen.add(attr_name)
            self._skip_whitespace()
            if not self._match("="):
                self._error(f"expected '=' after attribute name '{attr_name}'")
            self._skip_whitespace()
            value = self._parse_attribute_value()
            is_id = (
                self._dtd.is_id_attribute(element_name, attr_name)
                or attr_name in self.id_attribute_names
            )
            element.add_attribute(AttributeNode(attr_name, value, is_id=is_id))

    def _parse_attribute_value(self) -> str:
        quote = self._peek(1)
        if quote not in ('"', "'"):
            self._error("attribute value must be quoted")
        self._pos += 1
        start = self._pos
        while self._pos < len(self._text) and self._text[self._pos] != quote:
            if self._text[self._pos] == "<":
                self._error("'<' not allowed in attribute value")
            self._pos += 1
        if self._pos >= len(self._text):
            self._error("unterminated attribute value")
        raw = self._text[start:self._pos]
        self._pos += 1
        return self._expand_entities(raw)

    def _parse_content(self, element: ElementNode) -> None:
        buffer: list[str] = []

        def flush_text() -> None:
            if not buffer:
                return
            content = "".join(buffer)
            buffer.clear()
            if self.strip_whitespace_text and not content.strip():
                return
            element.append_child(TextNode(content))

        while self._pos < len(self._text):
            if self._peek(2) == "</":
                flush_text()
                return
            if self._peek(4) == "<!--":
                flush_text()
                element.append_child(self._parse_comment())
            elif self._peek(9) == "<![CDATA[":
                buffer.append(self._parse_cdata())
            elif self._peek(2) == "<?":
                flush_text()
                element.append_child(self._parse_pi())
            elif self._peek(1) == "<":
                flush_text()
                element.append_child(self._parse_element())
            else:
                start = self._pos
                while self._pos < len(self._text) and self._text[self._pos] not in "<":
                    self._pos += 1
                buffer.append(self._expand_entities(self._text[start:self._pos]))
        self._error("unexpected end of document inside element content")

    def _parse_comment(self) -> CommentNode:
        if not self._match("<!--"):
            self._error("expected comment")
        end = self._text.find("-->", self._pos)
        if end < 0:
            self._error("unterminated comment")
        content = self._text[self._pos:end]
        if "--" in content:
            self._error("'--' not allowed inside comment")
        self._pos = end + 3
        return CommentNode(content)

    def _parse_cdata(self) -> str:
        if not self._match("<![CDATA["):
            self._error("expected CDATA section")
        end = self._text.find("]]>", self._pos)
        if end < 0:
            self._error("unterminated CDATA section")
        content = self._text[self._pos:end]
        self._pos = end + 3
        return content

    def _parse_pi(self) -> ProcessingInstructionNode:
        if not self._match("<?"):
            self._error("expected processing instruction")
        target = self._parse_name()
        end = self._text.find("?>", self._pos)
        if end < 0:
            self._error("unterminated processing instruction")
        content = self._text[self._pos:end].strip()
        self._pos = end + 2
        return ProcessingInstructionNode(target, content)

    # -- lexical helpers -------------------------------------------------------

    def _parse_name(self) -> str:
        start = self._pos
        if self._pos >= len(self._text) or not _is_name_start(self._text[self._pos]):
            self._error("expected a name")
        self._pos += 1
        while self._pos < len(self._text) and _is_name_char(self._text[self._pos]):
            self._pos += 1
        return self._text[start:self._pos]

    def _expand_entities(self, raw: str) -> str:
        if "&" not in raw:
            return raw
        result: list[str] = []
        index = 0
        while index < len(raw):
            char = raw[index]
            if char != "&":
                result.append(char)
                index += 1
                continue
            end = raw.find(";", index)
            if end < 0:
                self._error("unterminated entity reference")
            entity = raw[index + 1:end]
            if entity.startswith("#x") or entity.startswith("#X"):
                result.append(chr(int(entity[2:], 16)))
            elif entity.startswith("#"):
                result.append(chr(int(entity[1:])))
            elif entity in _PREDEFINED_ENTITIES:
                result.append(_PREDEFINED_ENTITIES[entity])
            elif entity in self._dtd.entities:
                result.append(self._dtd.entities[entity])
            else:
                self._error(f"unknown entity reference '&{entity};'")
            index = end + 1
        return "".join(result)

    def _skip_whitespace(self) -> None:
        while self._pos < len(self._text) and self._text[self._pos] in " \t\r\n":
            self._pos += 1

    def _peek(self, length: int) -> str:
        return self._text[self._pos:self._pos + length]

    def _match(self, token: str) -> bool:
        if self._text.startswith(token, self._pos):
            self._pos += len(token)
            return True
        return False

    def _consume_until(self, token: str) -> None:
        end = self._text.find(token, self._pos)
        if end < 0:
            self._error(f"expected '{token}'")
        self._pos = end + len(token)

    def _error(self, message: str) -> None:
        line = self._text.count("\n", 0, self._pos) + 1
        last_newline = self._text.rfind("\n", 0, self._pos)
        column = self._pos - last_newline
        raise XMLSyntaxError(message, line=line, column=column)


def parse_xml(text: str, id_attributes: Iterable[str] = ("id", "xml:id"),
              base_uri: str | None = None, strip_whitespace_text: bool = True) -> DocumentNode:
    """Parse an XML string into an XDM document node."""
    parser = XMLParser(id_attributes=id_attributes, strip_whitespace_text=strip_whitespace_text)
    return parser.parse(text, base_uri=base_uri)


def parse_xml_file(path: str, id_attributes: Iterable[str] = ("id", "xml:id"),
                   strip_whitespace_text: bool = True) -> DocumentNode:
    """Parse an XML file into an XDM document node."""
    with open(path, "r", encoding="utf-8") as handle:
        text = handle.read()
    return parse_xml(text, id_attributes=id_attributes, base_uri=path,
                     strip_whitespace_text=strip_whitespace_text)
