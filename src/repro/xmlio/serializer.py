"""Serialization of XDM nodes and sequences back to XML text."""

from __future__ import annotations

from collections.abc import Sequence
from typing import Any

from repro.xdm.items import format_atomic, is_node
from repro.xdm.node import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)


def _escape_text(value: str) -> str:
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def _escape_attribute(value: str) -> str:
    return _escape_text(value).replace('"', "&quot;")


def serialize(node: Node, indent: int | None = None) -> str:
    """Serialize a single node to XML text.

    ``indent`` enables pretty printing with the given indentation width;
    by default output is compact (no insignificant whitespace is added).
    """
    parts: list[str] = []
    _serialize_node(node, parts, indent, 0)
    return "".join(parts)


def serialize_sequence(sequence: Sequence[Any], indent: int | None = None) -> str:
    """Serialize an item sequence (nodes as XML, atomic values space-joined)."""
    parts: list[str] = []
    pending_atomics: list[str] = []
    for item in sequence:
        if is_node(item):
            if pending_atomics:
                parts.append(" ".join(pending_atomics))
                pending_atomics = []
            parts.append(serialize(item, indent=indent))
        else:
            pending_atomics.append(format_atomic(item))
    if pending_atomics:
        parts.append(" ".join(pending_atomics))
    return " ".join(part for part in parts if part)


def _serialize_node(node: Node, parts: list[str], indent: int | None, depth: int) -> None:
    pad = "" if indent is None else "\n" + " " * (indent * depth) if depth or parts else " " * (indent * depth)
    if isinstance(node, DocumentNode):
        for child in node.children:
            _serialize_node(child, parts, indent, depth)
        return
    if isinstance(node, TextNode):
        parts.append(_escape_text(node.content))
        return
    if isinstance(node, CommentNode):
        parts.append(f"{pad}<!--{node.content}-->")
        return
    if isinstance(node, ProcessingInstructionNode):
        parts.append(f"{pad}<?{node.name} {node.content}?>")
        return
    if isinstance(node, AttributeNode):
        parts.append(f'{node.name}="{_escape_attribute(node.value)}"')
        return
    if isinstance(node, ElementNode):
        attrs = "".join(f' {a.name}="{_escape_attribute(a.value)}"' for a in node.attributes)
        if not node.children:
            parts.append(f"{pad}<{node.name}{attrs}/>")
            return
        parts.append(f"{pad}<{node.name}{attrs}>")
        only_text = all(isinstance(child, TextNode) for child in node.children)
        for child in node.children:
            _serialize_node(child, parts, None if only_text else indent, depth + 1)
        if indent is not None and not only_text:
            parts.append("\n" + " " * (indent * depth))
        parts.append(f"</{node.name}>")
        return
    raise TypeError(f"cannot serialize {type(node).__name__}")  # pragma: no cover
