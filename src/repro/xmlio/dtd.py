"""Minimal internal-DTD handling.

The engine does not validate against DTDs.  The only information it extracts
is which attributes are declared with type ``ID`` — exactly what ``fn:id``
(and therefore the paper's curriculum queries, Example 1.1 / Query Q1) needs.

``<!ATTLIST course code ID #REQUIRED>`` therefore registers ``code`` as an
ID attribute of ``course`` elements.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field


_ATTLIST_RE = re.compile(r"<!ATTLIST\s+(?P<element>[^\s>]+)\s+(?P<rest>[^>]*)>", re.DOTALL)
_ATTDEF_RE = re.compile(
    r"(?P<name>[^\s]+)\s+(?P<type>ID|IDREFS|IDREF|CDATA|NMTOKENS|NMTOKEN|ENTITIES|ENTITY|NOTATION|\([^)]*\))\s+"
    r"(?P<default>#REQUIRED|#IMPLIED|(#FIXED\s+)?(\"[^\"]*\"|'[^']*'))",
    re.DOTALL,
)
_ENTITY_RE = re.compile(
    r"<!ENTITY\s+(?P<name>[^\s%][^\s]*)\s+(\"(?P<dq>[^\"]*)\"|'(?P<sq>[^']*)')\s*>", re.DOTALL
)


@dataclass
class DTDInfo:
    """What the engine remembers from an internal DTD subset."""

    #: Maps element name -> set of attribute names declared with type ID.
    id_attributes: dict[str, set[str]] = field(default_factory=dict)
    #: Internal general entity declarations (name -> replacement text).
    entities: dict[str, str] = field(default_factory=dict)

    def is_id_attribute(self, element_name: str, attribute_name: str) -> bool:
        """True if *attribute_name* was declared ``ID`` for *element_name*."""
        return attribute_name in self.id_attributes.get(element_name, set())


def parse_internal_dtd(dtd_text: str) -> DTDInfo:
    """Extract ID attribute declarations and entities from an internal subset.

    The function is intentionally forgiving: it scans for ``ATTLIST`` and
    ``ENTITY`` declarations and ignores everything else (element and notation
    declarations, conditional sections, parameter entities).
    """
    info = DTDInfo()
    for match in _ATTLIST_RE.finditer(dtd_text):
        element_name = match.group("element")
        rest = match.group("rest")
        for attdef in _ATTDEF_RE.finditer(rest):
            if attdef.group("type") == "ID":
                info.id_attributes.setdefault(element_name, set()).add(attdef.group("name"))
    for match in _ENTITY_RE.finditer(dtd_text):
        replacement = match.group("dq") if match.group("dq") is not None else match.group("sq")
        info.entities[match.group("name")] = replacement or ""
    return info
