"""Curriculum data generator (Figure 1 DTD, ToXgene-style instances).

The paper's curriculum experiment (Table 2, rows "Curriculum (medium)" with
800 courses and "Curriculum (large)" with 4,000 courses) runs a consistency
check — find courses that are among their own prerequisites, i.e. courses on
a prerequisite cycle — as a transitive closure over ``fn:id`` links.

The generator produces a course catalogue whose prerequisite graph mixes:

* a layered DAG backbone (courses mostly require lower-numbered courses),
  which drives the recursion depth, and
* a configurable number of intentional cycles, so the consistency check has
  violations to report.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xdm.document import attribute, document, element, text
from repro.xdm.node import DocumentNode
from repro.xmlio.serializer import serialize


@dataclass(frozen=True)
class CurriculumConfig:
    """Parameters of a synthetic curriculum instance.

    The prerequisite graph is layered: every course sits on one of
    ``levels`` levels and draws its prerequisites from nearby courses on the
    level directly below.  The level count therefore controls the recursion
    depth of the transitive closure (the paper reports depth 18 for the
    medium and 35 for the large instance), while ``max_prerequisites`` and
    ``band_width`` control its fan-out.
    """

    courses: int = 800
    levels: int = 18
    max_prerequisites: int = 3
    #: How far sideways (in course positions on the level below) a
    #: prerequisite may reach; small bands keep closures narrow.
    band_width: int = 4
    #: Number of intentional prerequisite cycles injected into the graph.
    cycles: int = 4
    #: Length of each injected cycle (in courses).
    cycle_length: int = 4
    seed: int = 42

    @classmethod
    def medium(cls) -> "CurriculumConfig":
        """The paper's medium instance: 800 courses, recursion depth ~18."""
        return cls(courses=800, levels=18)

    @classmethod
    def large(cls) -> "CurriculumConfig":
        """The paper's large instance: 4,000 courses, recursion depth ~35."""
        return cls(courses=4000, levels=35, cycles=8)

    @classmethod
    def tiny(cls) -> "CurriculumConfig":
        """A small instance for unit tests and the quickstart example."""
        return cls(courses=40, levels=8, cycles=2, cycle_length=3)


def course_code(index: int) -> str:
    """The ID value of the *index*-th course (1-based)."""
    return f"c{index}"


def generate_curriculum(config: CurriculumConfig = CurriculumConfig()) -> DocumentNode:
    """Generate a curriculum document following the Figure 1 DTD."""
    rng = random.Random(config.seed)
    prerequisites = _prerequisite_graph(config, rng)

    course_elements = []
    for index in range(1, config.courses + 1):
        pre_elements = [element("pre_code", text(course_code(p))) for p in prerequisites[index]]
        course_elements.append(
            element(
                "course",
                attribute("code", course_code(index), is_id=True),
                element("prerequisites", *pre_elements),
            )
        )
    return document(element("curriculum", *course_elements))


def generate_curriculum_xml(config: CurriculumConfig = CurriculumConfig()) -> str:
    """Generate the same instance as XML text (useful for files on disk)."""
    return serialize(generate_curriculum(config))


def _course_level(index: int, config: CurriculumConfig) -> int:
    """The level (0-based, 0 = foundational) of the *index*-th course."""
    per_level = max(1, config.courses // config.levels)
    return min((index - 1) // per_level, config.levels - 1)


def _prerequisite_graph(config: CurriculumConfig, rng: random.Random) -> dict[int, list[int]]:
    """Build the prerequisite adjacency lists (course index → prerequisites)."""
    prerequisites: dict[int, list[int]] = {index: [] for index in range(1, config.courses + 1)}
    per_level = max(1, config.courses // config.levels)

    for index in range(1, config.courses + 1):
        level = _course_level(index, config)
        if level == 0:
            continue
        position_in_level = (index - 1) % per_level
        below_start = (level - 1) * per_level + 1
        below_end = min(level * per_level, config.courses)
        low = max(below_start, below_start + position_in_level - config.band_width)
        high = min(below_end, below_start + position_in_level + config.band_width)
        candidates = list(range(low, high + 1))
        rng.shuffle(candidates)
        count = rng.randint(1, config.max_prerequisites)
        prerequisites[index] = sorted(candidates[:count])

    # Inject cycles: walk an existing prerequisite chain downwards for
    # cycle_length - 1 steps and close it with a back edge, so every course
    # on the chain becomes (transitively) its own prerequisite.
    injected = 0
    attempts = 0
    while injected < config.cycles and attempts < config.cycles * 20:
        attempts += 1
        # Bias cycles towards the advanced end of the catalogue so that the
        # consistency check (which seeds from the advanced courses) finds
        # violations without having to scan the whole catalogue.
        low_bound = max(per_level + 1, config.courses - 2 * per_level)
        start = rng.randint(low_bound, config.courses)
        chain = [start]
        current = start
        for _ in range(config.cycle_length - 1):
            if not prerequisites[current]:
                break
            current = rng.choice(prerequisites[current])
            chain.append(current)
        if len(chain) < 2:
            continue
        bottom = chain[-1]
        if start not in prerequisites[bottom]:
            prerequisites[bottom].append(start)
        injected += 1
    return prerequisites


def expected_cyclic_courses(config: CurriculumConfig) -> set[str]:
    """The codes of courses placed on an injected cycle (ground truth for tests).

    Note that random backbone edges may create additional cycles; the
    returned set is therefore a subset of all courses that are among their
    own prerequisites.
    """
    rng = random.Random(config.seed)
    prerequisites = _prerequisite_graph(config, rng)
    # Recompute which courses can reach themselves (exact ground truth).
    cyclic: set[str] = set()
    for start in prerequisites:
        seen: set[int] = set()
        frontier = set(prerequisites[start])
        while frontier:
            if start in frontier:
                cyclic.add(course_code(start))
                break
            seen |= frontier
            frontier = {p for member in frontier for p in prerequisites[member]} - seen
    return cyclic
