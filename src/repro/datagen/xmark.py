"""XMark-style auction data generator (bidder network workload).

The paper's scalability experiment computes a *bidder network* over XMark
documents: starting from a person, recursively connect the sellers of
auctions to the bidders of those auctions (Figure 10).  The query touches
only a small part of the XMark schema::

    site
    ├── people
    │   └── person @id
    │       └── name
    └── open_auctions
        └── open_auction @id
            ├── seller  @person      (IDREF to a person)
            └── bidder
                └── personref @person

The generator reproduces that sub-schema and, crucially, the *growth
behaviour* the paper reports: the number of edges in the seller→bidder graph
grows super-linearly with the scale factor, so the transitive network blows
up quadratically and Delta's advantage widens with document size.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xdm.document import attribute, document, element, text
from repro.xdm.node import DocumentNode
from repro.xmlio.serializer import serialize


@dataclass(frozen=True)
class XMarkConfig:
    """Parameters of a synthetic auction-site instance.

    The named constructors mirror the paper's four scale factors.  The
    absolute sizes are scaled down relative to the original XMark documents
    so that a pure-Python engine explores the same Naive/Delta behaviour in
    sensible wall-clock time; the *ratios* between the sizes follow the
    paper (0.01 / 0.05 / 0.15 / 0.33 ≈ 1 : 5 : 15 : 33).
    """

    persons: int = 120
    auctions_per_person: float = 1.5
    bidders_per_auction: int = 3
    #: Persons are grouped into communities; sellers and bidders are mostly
    #: drawn from the same community, which makes the bidder network dense
    #: inside a community (quadratic growth) yet keeps recursion depths in
    #: the two-digit range like the paper's.
    community_size: int = 40
    #: Probability that a bidder is drawn from outside the seller's community.
    cross_community_probability: float = 0.02
    seed: int = 7

    @classmethod
    def small(cls) -> "XMarkConfig":
        return cls(persons=60, community_size=20)

    @classmethod
    def medium(cls) -> "XMarkConfig":
        return cls(persons=300, community_size=60)

    @classmethod
    def large(cls) -> "XMarkConfig":
        return cls(persons=900, community_size=120)

    @classmethod
    def huge(cls) -> "XMarkConfig":
        return cls(persons=1980, community_size=180)

    @classmethod
    def tiny(cls) -> "XMarkConfig":
        """A very small instance for unit tests."""
        return cls(persons=16, community_size=8, auctions_per_person=1.0)


def person_id(index: int) -> str:
    return f"person{index}"


def generate_auction_site(config: XMarkConfig = XMarkConfig()) -> DocumentNode:
    """Generate an auction-site document for the bidder-network query."""
    rng = random.Random(config.seed)

    person_elements = [
        element(
            "person",
            attribute("id", person_id(index), is_id=True),
            element("name", text(f"Person {index}")),
        )
        for index in range(config.persons)
    ]

    auction_elements = []
    auction_count = int(config.persons * config.auctions_per_person)
    for auction_index in range(auction_count):
        seller = rng.randrange(config.persons)
        bidders = _pick_bidders(seller, config, rng)
        bidder_elements = [
            element("bidder", element("personref", attribute("person", person_id(bidder))))
            for bidder in bidders
        ]
        auction_elements.append(
            element(
                "open_auction",
                attribute("id", f"open_auction{auction_index}", is_id=True),
                element("seller", attribute("person", person_id(seller))),
                *bidder_elements,
            )
        )

    site = element(
        "site",
        element("people", *person_elements),
        element("open_auctions", *auction_elements),
    )
    return document(site)


def generate_auction_site_xml(config: XMarkConfig = XMarkConfig()) -> str:
    """Generate the same instance as XML text."""
    return serialize(generate_auction_site(config))


def _pick_bidders(seller: int, config: XMarkConfig, rng: random.Random) -> list[int]:
    community = seller // config.community_size
    community_low = community * config.community_size
    community_high = min(config.persons, community_low + config.community_size)
    bidders: list[int] = []
    for _ in range(config.bidders_per_auction):
        if rng.random() < config.cross_community_probability:
            bidders.append(rng.randrange(config.persons))
        else:
            bidders.append(rng.randrange(community_low, community_high))
    return bidders


def seller_to_bidder_edges(doc: DocumentNode) -> dict[str, set[str]]:
    """Extract the seller → bidder edges (ground truth for tests).

    The bidder-network query connects a person ``p`` to every person who bid
    in an auction sold by ``p``; this helper recomputes those edges directly
    from the document structure.
    """
    edges: dict[str, set[str]] = {}
    site = doc.document_element()
    for auction in site.iter_tree():
        if getattr(auction, "name", None) != "open_auction":
            continue
        seller_ref = None
        bidder_refs = []
        for child in auction.children:
            if child.name == "seller":
                seller_attr = child.get_attribute("person")
                seller_ref = seller_attr.value if seller_attr else None
            elif child.name == "bidder":
                for personref in child.children:
                    if personref.name == "personref":
                        ref = personref.get_attribute("person")
                        if ref is not None:
                            bidder_refs.append(ref.value)
        if seller_ref is None:
            continue
        edges.setdefault(seller_ref, set()).update(bidder_refs)
    return edges
