"""Hospital patient-record generator (hereditary-disease workload).

The paper's last experiment explores 50,000 hospital patient records to
investigate a hereditary disease: the recursion follows the hierarchical
structure of the XML input, descending from a patient into nested ``parent``
subtrees of maximum depth 5 (Table 2 reports recursion depth 5).

The generator emits::

    hospital
    └── patient @id [@diagnosed]
        ├── name
        └── parent ...      (nested ancestors, up to max_depth levels)

where each nested ``parent`` element is itself structured like a patient and
carries the hereditary-disease flag with a configurable probability.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xdm.document import attribute, document, element, text
from repro.xdm.node import DocumentNode
from repro.xmlio.serializer import serialize


@dataclass(frozen=True)
class HospitalConfig:
    """Parameters of a synthetic hospital-records instance."""

    patients: int = 1000
    max_depth: int = 5
    #: Probability that a patient/ancestor node carries the disease flag.
    diagnosis_probability: float = 0.15
    #: Probability that an ancestor level actually exists (controls how many
    #: records reach the maximum depth).
    parent_probability: float = 0.85
    seed: int = 11

    @classmethod
    def paper(cls) -> "HospitalConfig":
        """The paper's instance size (50,000 patients)."""
        return cls(patients=50_000)

    @classmethod
    def medium(cls) -> "HospitalConfig":
        """A scaled-down default that keeps the pure-Python run short."""
        return cls(patients=1000)

    @classmethod
    def tiny(cls) -> "HospitalConfig":
        return cls(patients=25)


def generate_hospital(config: HospitalConfig = HospitalConfig()) -> DocumentNode:
    """Generate a hospital-records document."""
    rng = random.Random(config.seed)
    patients = [
        _patient(config, rng, index, depth=config.max_depth, tag="patient")
        for index in range(config.patients)
    ]
    return document(element("hospital", *patients))


def generate_hospital_xml(config: HospitalConfig = HospitalConfig()) -> str:
    return serialize(generate_hospital(config))


def _patient(config: HospitalConfig, rng: random.Random, index: int, depth: int, tag: str):
    children = [element("name", text(f"Patient {index}" if tag == "patient" else "Ancestor"))]
    if depth > 1:
        for _ in range(2):  # two parents
            if rng.random() < config.parent_probability:
                children.append(_patient(config, rng, index, depth - 1, tag="parent"))
    attrs = [attribute("id", f"{tag}{index}_{depth}_{rng.randrange(1_000_000)}")]
    if rng.random() < config.diagnosis_probability:
        attrs.append(attribute("diagnosed", "yes"))
    return element(tag, *attrs, *children)


def diseased_ancestor_count(doc: DocumentNode) -> int:
    """Ground truth: number of ``parent`` elements flagged as diagnosed."""
    count = 0
    for node in doc.document_element().iter_tree():
        if getattr(node, "name", None) == "parent":
            flag = node.get_attribute("diagnosed")
            if flag is not None and flag.value == "yes":
                count += 1
    return count
