"""Play markup generator (Romeo-and-Juliet dialog workload).

The paper's "Romeo and Juliet" experiment measures a horizontal structural
recursion: starting from ``SPEECH`` elements, each recursion level extends
the current dialog sequences by one more ``SPEECH`` along the
``following-sibling`` axis, provided the speakers alternate.  The reported
maximum recursion depth (33) equals the length of the longest uninterrupted
alternating dialog.

The generator emits Shakespeare-style markup (PLAY/ACT/SCENE/SPEECH/SPEAKER/
LINE) whose scenes contain alternating two-speaker dialog runs of
configurable length, interleaved with crowd scenes that break the runs — so
the recursion depth is controlled by configuration rather than luck.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.xdm.document import document, element, text
from repro.xdm.node import DocumentNode
from repro.xmlio.serializer import serialize

_CHARACTERS = [
    "ROMEO", "JULIET", "MERCUTIO", "BENVOLIO", "TYBALT", "NURSE",
    "FRIAR LAURENCE", "CAPULET", "LADY CAPULET", "MONTAGUE", "PARIS", "PRINCE",
]


@dataclass(frozen=True)
class PlayConfig:
    """Parameters of a synthetic play."""

    acts: int = 5
    scenes_per_act: int = 5
    speeches_per_scene: int = 40
    #: Length of the longest alternating two-speaker dialog (the recursion depth).
    longest_dialog: int = 33
    #: Average length of ordinary alternating dialog runs.
    typical_dialog: int = 6
    lines_per_speech: int = 3
    seed: int = 3

    @classmethod
    def romeo_and_juliet(cls) -> "PlayConfig":
        """A play sized like Romeo and Juliet (about 840 speeches, depth 33)."""
        return cls()

    @classmethod
    def tiny(cls) -> "PlayConfig":
        return cls(acts=1, scenes_per_act=2, speeches_per_scene=12,
                   longest_dialog=5, typical_dialog=3)


def generate_play(config: PlayConfig = PlayConfig()) -> DocumentNode:
    """Generate a play document with controlled dialog-run lengths."""
    rng = random.Random(config.seed)
    act_elements = []
    longest_placed = False
    for act_index in range(1, config.acts + 1):
        scene_elements = []
        for scene_index in range(1, config.scenes_per_act + 1):
            place_longest = (not longest_placed
                             and act_index == config.acts
                             and scene_index == config.scenes_per_act)
            scene_elements.append(_generate_scene(config, rng, scene_index, place_longest))
            if place_longest:
                longest_placed = True
        act_elements.append(
            element("ACT", element("TITLE", text(f"ACT {act_index}")), *scene_elements)
        )
    play = element("PLAY", element("TITLE", text("The Tragedy of Romeo and Juliet (synthetic)")), *act_elements)
    return document(play)


def generate_play_xml(config: PlayConfig = PlayConfig()) -> str:
    return serialize(generate_play(config))


def _generate_scene(config: PlayConfig, rng: random.Random, scene_index: int,
                    place_longest: bool) -> object:
    speeches = []
    remaining = config.speeches_per_scene
    if place_longest:
        speeches.extend(_dialog_run(config, rng, config.longest_dialog))
        remaining -= config.longest_dialog
    while remaining > 0:
        run_length = min(remaining, max(2, int(rng.gauss(config.typical_dialog, 1.5))))
        speeches.extend(_dialog_run(config, rng, run_length))
        remaining -= run_length
        if remaining > 0:
            # A crowd interjection breaks the alternation (three speakers in
            # a row from different characters would still alternate, so the
            # breaker repeats the previous speaker).
            speeches.append(_speech(config, rng, speaker=_last_speaker(speeches)))
            remaining -= 1
    return element("SCENE", element("TITLE", text(f"SCENE {scene_index}")), *speeches)


def _dialog_run(config: PlayConfig, rng: random.Random, length: int) -> list:
    first, second = rng.sample(_CHARACTERS, 2)
    return [
        _speech(config, rng, speaker=first if index % 2 == 0 else second)
        for index in range(length)
    ]


def _speech(config: PlayConfig, rng: random.Random, speaker: str) -> object:
    lines = [
        element("LINE", text(f"Line {rng.randrange(10_000)} of {speaker.title()}."))
        for _ in range(config.lines_per_speech)
    ]
    return element("SPEECH", element("SPEAKER", text(speaker)), *lines)


def _last_speaker(speeches: list) -> str:
    for speech in reversed(speeches):
        for child in speech.children:
            if child.name == "SPEAKER":
                return child.string_value()
    return _CHARACTERS[0]


def longest_alternating_run(doc: DocumentNode) -> int:
    """Ground truth: the longest alternating-speaker SPEECH run in the document."""
    longest = 0
    for scene in doc.document_element().iter_tree():
        if getattr(scene, "name", None) != "SCENE":
            continue
        speeches = [child for child in scene.children if child.name == "SPEECH"]
        speakers = [next((c.string_value() for c in s.children if c.name == "SPEAKER"), "") for s in speeches]
        run = 1 if speakers else 0
        for previous, current in zip(speakers, speakers[1:]):
            if current != previous:
                run += 1
            else:
                run = 1
            longest = max(longest, run)
        longest = max(longest, run if speakers else 0)
    return longest
