"""Synthetic workload generators for the paper's four benchmark datasets.

The paper evaluates on XMark auction data, Shakespeare's Romeo and Juliet,
ToXgene-generated curriculum instances and a hospital patient-record
corpus.  None of those exact instances are redistributable or generatable
offline here, so this package provides deterministic generators that
reproduce the *structural properties the queries depend on*:

* :mod:`repro.datagen.xmark` — an auction site with ``people/person`` and
  ``open_auctions/open_auction/{seller,bidder/personref}``; the seller →
  bidder graph grows super-linearly with the scale factor so the bidder
  network shows the same quadratic blow-up the paper reports.
* :mod:`repro.datagen.plays` — play markup (ACT/SCENE/SPEECH/SPEAKER/LINE)
  with alternating-speaker dialog runs for the horizontal recursion query.
* :mod:`repro.datagen.curriculum` — the Figure 1 DTD: courses with
  prerequisite code lists, including cycles so the consistency check finds
  violations.
* :mod:`repro.datagen.hospital` — patient records nested parent trees of
  bounded depth carrying a hereditary-disease flag.

All generators are seeded (``random.Random(seed)``) and therefore fully
reproducible; they can emit either XDM documents directly or XML text.
"""

from repro.datagen.curriculum import generate_curriculum, CurriculumConfig
from repro.datagen.xmark import generate_auction_site, XMarkConfig
from repro.datagen.plays import generate_play, PlayConfig
from repro.datagen.hospital import generate_hospital, HospitalConfig

__all__ = [
    "generate_curriculum",
    "CurriculumConfig",
    "generate_auction_site",
    "XMarkConfig",
    "generate_play",
    "PlayConfig",
    "generate_hospital",
    "HospitalConfig",
]
