"""Compiled-plan caching for the repeated-evaluation serving path.

Production traffic overwhelmingly re-runs the same query texts against
long-lived documents, so :func:`repro.api.evaluate` keeps two process-wide
LRU caches:

* the **module cache** — query text → parsed (and optionally optimized)
  :class:`~repro.xquery.ast.Module`, shared by every engine: a warm hit
  skips lexing, parsing and the AST rewrites entirely;
* the **plan cache** — ``(query, engine knobs, document identities)`` →
  compiled algebra plan, so the algebra engine also skips compilation and
  prolog-variable evaluation.

Plan entries pin the document nodes they were compiled against (strong
references in the key object) and are only served when the caller's
documents are *the same objects*, which both prevents cross-corpus mixups
and makes ``id()`` reuse after garbage collection harmless.  Plans whose
prolog variables construct nodes are never cached: re-running such a
declaration must mint fresh node identities (see
:func:`contains_constructor`).

The AST and plans are immutable once built (evaluation state lives in the
per-run engine objects), which is what makes sharing across calls sound —
the benchmark harness has relied on module reuse since PR 1.
"""

from __future__ import annotations

import dataclasses
from collections import OrderedDict
from threading import Lock
from collections.abc import Hashable, Iterable
from typing import Any

from repro.xquery import ast


class LRUCache:
    """A small thread-safe LRU mapping with hit/miss accounting.

    Every operation — including :meth:`stats`, :meth:`clear` and
    :meth:`__len__` — runs under one lock, so concurrent ``evaluate()``
    traffic can never observe a half-updated cache (the PR 3 version
    locked ``get``/``put`` but read counters and size unlocked, which let
    ``query_cache_stats()`` race with eviction).

    Entries carry a *generation* stamped at :meth:`put` time.  Bumping the
    cache generation (:meth:`bump_generation`) makes every existing entry
    stale without touching it: a stale entry is reported as a miss and
    evicted lazily on the next ``get``.  :class:`~repro.session.Session`
    uses this for snapshot semantics — re-registering a document bumps the
    plan-cache generation, in-flight evaluations keep the plan objects they
    already fetched, and new requests rebuild lazily.
    """

    __slots__ = ("capacity", "_entries", "_lock", "hits", "misses",
                 "generation")

    def __init__(self, capacity: int):
        if capacity <= 0:
            raise ValueError("cache capacity must be positive")
        self.capacity = capacity
        #: key → (value, generation at put time)
        self._entries: "OrderedDict[Hashable, tuple[Any, int]]" = OrderedDict()
        self._lock = Lock()
        self.hits = 0
        self.misses = 0
        self.generation = 0

    def get(self, key: Hashable) -> Any | None:
        with self._lock:
            try:
                value, generation = self._entries[key]
            except KeyError:
                self.misses += 1
                return None
            if generation != self.generation:
                del self._entries[key]
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._entries[key] = (value, self.generation)
            self._entries.move_to_end(key)
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)

    def bump_generation(self) -> int:
        """Invalidate every current entry; return the new generation."""
        with self._lock:
            self.generation += 1
            return self.generation

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self.hits = 0
            self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._entries)

    def stats(self) -> dict:
        with self._lock:
            return {
                "size": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "generation": self.generation,
            }


def iter_expressions(expr: Any):
    """Generic pre-order walk over an AST expression (dataclass fields)."""
    stack = [expr]
    while stack:
        node = stack.pop()
        if isinstance(node, (tuple, list)):
            stack.extend(node)
            continue
        if not isinstance(node, ast.Expr):
            continue
        yield node
        for field in dataclasses.fields(node):
            stack.append(getattr(node, field.name))


def contains_constructor(expr: Any) -> bool:
    """Does *expr* (or any subexpression) construct nodes?

    Used to keep plans with node-minting prolog variables out of the plan
    cache: their values are baked in at compile time, and XQuery requires a
    fresh identity per evaluation.
    """
    for node in iter_expressions(expr):
        if isinstance(node, (ast.DirectElementConstructor, ast.ComputedConstructor)):
            return True
    return False


def module_cache_safe(module: ast.Module) -> bool:
    """Is a compiled plan of *module* reusable across evaluations?

    The body may construct nodes (the plan's constructor operators mint
    fresh identities each run); prolog variable *values* may not, because
    they are evaluated once at compile time and frozen into the plan.
    External variables also disqualify a module: their caller-supplied
    bindings are baked into the plan (literal tables, pushed predicate
    constants), and the plan key does not cover those values.
    """
    return not any(
        declaration.external or (
            declaration.value is not None and contains_constructor(declaration.value))
        for declaration in module.variables
    )


def documents_fingerprint(resolver) -> tuple:
    """A hashable identity key over a resolver's registered documents.

    The returned tuple holds the document objects themselves (hashed by
    identity), so a cache entry keyed by it can never outlive a mismatch:
    equal keys imply the very same document nodes.  Each document's
    *structural index* object is part of the key too: mutating a tree
    drops its index registry entry (see :mod:`repro.xdm.index`), so the
    rebuilt index is a different object and plans whose prolog-variable
    values were baked in against the old tree can never be served again.
    """
    from repro.xdm.index import index_for

    parts = []
    for uri in resolver.known_uris():
        doc = resolver.resolve(uri)
        parts.append((uri, _Pinned(doc), _Pinned(index_for(doc))))
    return tuple(parts)


class _Pinned:
    """Identity-hashed strong reference used inside cache keys."""

    __slots__ = ("obj",)

    def __init__(self, obj: Any):
        self.obj = obj

    def __hash__(self) -> int:
        return id(self.obj) & 0x7FFFFFFF

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Pinned) and self.obj is other.obj


def fingerprint(values: Iterable[Any]) -> tuple:
    """Pin arbitrary objects into a hashable, identity-compared key part."""
    return tuple(_Pinned(value) for value in values)
