"""Algorithm *Naive* (Figure 3a of the paper).

::

    res <- e_rec(e_seed);
    do
        res <- e_rec(res) union res;
    while res grows;

The whole accumulated result is fed back into the recursion body on every
round, so nodes discovered early are re-processed again and again — the
redundant work that motivates the Delta variant.
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro import faults
from repro.errors import FixpointError
from repro.xdm.node import Node
from repro.xdm.sequence import ensure_node_sequence
from repro.fixpoint.stats import FixpointStatistics


def _order_key(node: Node) -> int:
    return node.order_key


def _merge_new(result: list, seen: set, produced: Sequence) -> int:
    """Fold *produced* into *result*, keeping it duplicate-free and in
    document order; returns the number of genuinely new nodes.

    ``seen`` is a set of order keys (globally unique per node, so key
    membership == node identity), which replaces the old per-round
    ``node_union`` — an O(total log total) re-sort plus identity-set
    rebuild over the whole accumulated result every round — with O(new)
    set probes and a near-linear Timsort append.
    """
    fresh = []
    for node in produced:
        key = node.order_key
        if key not in seen:
            seen.add(key)
            fresh.append(node)
    if fresh:
        result.extend(fresh)
        result.sort(key=_order_key)
    return len(fresh)


def naive_fixpoint(body: Callable[[list], list], seed: Sequence,
                   max_iterations: int = 100_000,
                   statistics: FixpointStatistics | None = None,
                   seed_is_initial_result: bool = False,
                   trace=None, governor=None) -> list:
    """Compute the IFP of *body* seeded by *seed* with algorithm Naive.

    Parameters
    ----------
    body:
        The recursion body ``e_rec`` as a callable from a node sequence to a
        node sequence (the evaluator closes over the recursion variable).
    seed:
        The seed sequence ``e_seed`` (must contain only nodes).
    max_iterations:
        Bound standing in for Definition 2.1's "the IFP is undefined":
        exceeded only if the body keeps producing fresh nodes forever.
    statistics:
        Optional collector for the per-iteration measurements of Table 2.
    seed_is_initial_result:
        Definition 2.1 starts from ``res_0 = e_rec(e_seed)``.  The iteration
        table of Example 2.4, however, treats the seed itself as ``res_0``.
        Setting this flag selects the latter reading: the seed is taken as
        the initial result (and is therefore always contained in the IFP).
    trace:
        Optional :class:`~repro.observability.tracing.TraceContext`; when
        present every round becomes a ``round`` span carrying the fed /
        produced / new / accumulated sizes alongside its wall time.
    governor:
        Optional :class:`~repro.limits.Governor`; consulted once per round
        (deadline, cancellation, round/frontier/result budgets) with the
        sizes this driver already computes.

    Returns
    -------
    list
        The fixed point ``res_k`` in document order.
    """
    seed_nodes = ensure_node_sequence(list(seed), "inflationary fixed point seed")

    result: list = []
    seen: set = set()
    if seed_is_initial_result:
        _merge_new(result, seen, seed_nodes)
        if statistics is not None:
            statistics.algorithm = "naive"
            statistics.record(0, 0, len(seed_nodes), len(result), len(result))
    else:
        fed = seed_nodes
        span = trace.begin("round", iteration=0) if trace is not None else None
        produced = body(list(fed))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        _merge_new(result, seen, produced)  # normalise: distinct, document order
        if span is not None:
            span.set(fed=len(fed), produced=len(produced),
                     new=len(result), result_size=len(result))
            trace.end(span)
        if statistics is not None:
            statistics.algorithm = "naive"
            statistics.record(0, len(fed), len(produced), len(result), len(result))

    iteration = 0
    while True:
        iteration += 1
        if iteration > max_iterations:
            raise FixpointError(
                f"inflationary fixed point did not converge within {max_iterations} iterations"
            )
        fed_count = len(result)
        if governor is not None:
            governor.check_round(iteration, frontier=fed_count,
                                 result_size=len(result))
        faults.trigger("slow-span")
        span = trace.begin("round", iteration=iteration) if trace is not None else None
        produced = body(list(result))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        new_nodes = _merge_new(result, seen, produced)
        if span is not None:
            span.set(fed=fed_count, produced=len(produced),
                     new=new_nodes, result_size=len(result))
            trace.end(span)
        if statistics is not None:
            statistics.record(iteration, fed_count, len(produced), new_nodes, len(result))
        if new_nodes == 0:
            return result
