"""Statistics collected during fixed point evaluation.

Table 2 of the paper compares Naive and Delta not only by wall-clock time
but also by the *total number of nodes fed back* into the recursion body and
by the *recursion depth*.  Both are properties of the iteration itself, so
the algorithms record them here as they run.
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class IterationRecord:
    """One round of the fixed point iteration.

    Attributes
    ----------
    iteration:
        Zero-based iteration number (iteration 0 is the seed application).
    fed_back:
        Number of items handed to the recursion body in this round.
    produced:
        Number of items the body returned (before de-duplication).
    new_nodes:
        Number of items that were new with respect to the accumulated
        result after this round.
    result_size:
        Size of the accumulated result after this round.
    """

    iteration: int
    fed_back: int
    produced: int
    new_nodes: int
    result_size: int


@dataclass
class FixpointStatistics:
    """Aggregated statistics for one IFP evaluation."""

    algorithm: str = "naive"
    iterations: list[IterationRecord] = field(default_factory=list)

    def record(self, iteration: int, fed_back: int, produced: int,
               new_nodes: int, result_size: int) -> None:
        self.iterations.append(
            IterationRecord(iteration, fed_back, produced, new_nodes, result_size)
        )

    # -- the quantities reported in Table 2 ----------------------------------

    @property
    def total_nodes_fed_back(self) -> int:
        """Total number of items fed into the recursion body, summed over rounds."""
        return sum(record.fed_back for record in self.iterations)

    @property
    def recursion_depth(self) -> int:
        """Number of body invocations until the fixed point was reached."""
        return len(self.iterations)

    @property
    def result_size(self) -> int:
        return self.iterations[-1].result_size if self.iterations else 0

    def merge(self, other: "FixpointStatistics") -> None:
        """Accumulate another run's statistics (used per-seed in benchmarks)."""
        offset = len(self.iterations)
        for record in other.iterations:
            self.iterations.append(
                IterationRecord(
                    iteration=offset + record.iteration,
                    fed_back=record.fed_back,
                    produced=record.produced,
                    new_nodes=record.new_nodes,
                    result_size=record.result_size,
                )
            )

    def summary(self) -> dict:
        """A plain-dict summary convenient for reports and JSON output."""
        return {
            "algorithm": self.algorithm,
            "iterations": self.recursion_depth,
            "total_nodes_fed_back": self.total_nodes_fed_back,
            "result_size": self.result_size,
        }


class StatisticsCollector:
    """Aggregates the statistics of every IFP evaluated during one query.

    An instance can be installed as ``DynamicContext.statistics``; the
    evaluator calls :meth:`record_ifp` after every ``with … recurse``
    evaluation.  The bidder-network benchmark evaluates one IFP per person,
    so a single query may contribute thousands of records.
    """

    def __init__(self) -> None:
        self.runs: list[FixpointStatistics] = []
        self.traces: list[tuple[str, list]] = []

    def record_ifp(self, statistics: FixpointStatistics) -> None:
        self.runs.append(statistics)

    def trace(self, label: str, value: list) -> None:
        self.traces.append((label, value))

    @property
    def total_nodes_fed_back(self) -> int:
        return sum(run.total_nodes_fed_back for run in self.runs)

    @property
    def max_recursion_depth(self) -> int:
        return max((run.recursion_depth for run in self.runs), default=0)

    @property
    def ifp_evaluations(self) -> int:
        return len(self.runs)

    def summary(self) -> dict:
        return {
            "ifp_evaluations": self.ifp_evaluations,
            "total_nodes_fed_back": self.total_nodes_fed_back,
            "max_recursion_depth": self.max_recursion_depth,
        }
