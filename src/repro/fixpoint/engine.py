"""Fixed point engine: one entry point over the Naive and Delta algorithms.

The engine is deliberately independent of the XQuery evaluator — the
recursion body is just a callable over node sequences — so the same code
path serves the XQuery ``with … recurse`` form, the Regular XPath
translation, the relational algebra µ/µ∆ operators and direct library use
from Python (see ``examples/``).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable, Sequence

from repro.errors import FixpointError
from repro.fixpoint.delta import delta_fixpoint
from repro.fixpoint.naive import naive_fixpoint
from repro.fixpoint.stats import FixpointStatistics

#: Algorithms the engine knows about.
ALGORITHMS = ("naive", "delta")


@dataclass
class FixpointResult:
    """Value plus statistics of one IFP evaluation."""

    value: list
    statistics: FixpointStatistics

    @property
    def algorithm(self) -> str:
        return self.statistics.algorithm


class FixpointEngine:
    """Evaluates inflationary fixed points with a selectable algorithm.

    Parameters
    ----------
    max_iterations:
        Iteration bound standing in for "the IFP is undefined"
        (Definition 2.1).
    collect_statistics:
        Whether to record the per-iteration measurements of Table 2.
    """

    def __init__(self, max_iterations: int = 100_000, collect_statistics: bool = True):
        self.max_iterations = max_iterations
        self.collect_statistics = collect_statistics

    def run(self, body: Callable[[list], list], seed: Sequence,
            algorithm: str = "naive", seed_is_initial_result: bool = False,
            trace=None, governor=None) -> FixpointResult:
        """Compute the IFP of *body* seeded by *seed*.

        ``algorithm`` must be ``"naive"`` or ``"delta"``; deciding *which*
        one is legal is the caller's job (the XQuery evaluator consults the
        distributivity analyses, benchmarks pin it explicitly).
        ``seed_is_initial_result`` selects the Example 2.4 reading where the
        seed itself is ``res_0`` (see :func:`~repro.fixpoint.naive.naive_fixpoint`).
        ``trace`` (a :class:`~repro.observability.tracing.TraceContext`)
        wraps the run in a ``fixpoint`` span with per-round children.
        ``governor`` (a :class:`~repro.limits.Governor`) is consulted at
        every round boundary for deadlines, cancellation and budgets.
        """
        if algorithm not in ALGORITHMS:
            raise FixpointError(f"unknown fixed point algorithm '{algorithm}'")
        statistics = FixpointStatistics(algorithm=algorithm) if self.collect_statistics else None
        span = (trace.begin("fixpoint", algorithm=algorithm, seed=len(seed))
                if trace is not None else None)
        try:
            if algorithm == "delta":
                value = delta_fixpoint(body, seed, self.max_iterations, statistics,
                                       seed_is_initial_result=seed_is_initial_result,
                                       trace=trace, governor=governor)
            else:
                value = naive_fixpoint(body, seed, self.max_iterations, statistics,
                                       seed_is_initial_result=seed_is_initial_result,
                                       trace=trace, governor=governor)
        finally:
            if span is not None:
                trace.end(span)
        if span is not None:
            span.set(result_size=len(value),
                     rounds=statistics.recursion_depth if statistics else None)
        return FixpointResult(value=value, statistics=statistics or FixpointStatistics(algorithm=algorithm))

    def run_both(self, body: Callable[[list], list], seed: Sequence,
                 seed_is_initial_result: bool = False) -> dict[str, FixpointResult]:
        """Run Naive and Delta on the same input (used by tests/benchmarks)."""
        return {
            name: self.run(body, seed, algorithm=name,
                           seed_is_initial_result=seed_is_initial_result)
            for name in ALGORITHMS
        }
