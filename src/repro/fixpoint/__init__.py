"""Inflationary fixed point evaluation (the paper's core contribution).

The package implements Definition 2.1's IFP semantics together with the two
evaluation strategies of Figure 3:

* :mod:`repro.fixpoint.naive`  — algorithm **Naive**: feed the whole
  accumulated result back into the recursion body each round.
* :mod:`repro.fixpoint.delta`  — algorithm **Delta** (semi-naive / delta
  iteration): feed only the nodes not seen in earlier rounds.

:class:`repro.fixpoint.engine.FixpointEngine` wraps both behind one entry
point, enforces the iteration bound that stands in for "the IFP is
undefined", and collects the per-iteration statistics that the paper's
Table 2 reports (total number of nodes fed back, recursion depth).
"""

from repro.fixpoint.engine import FixpointEngine, FixpointResult
from repro.fixpoint.naive import naive_fixpoint
from repro.fixpoint.delta import delta_fixpoint
from repro.fixpoint.stats import FixpointStatistics, IterationRecord

__all__ = [
    "FixpointEngine",
    "FixpointResult",
    "naive_fixpoint",
    "delta_fixpoint",
    "FixpointStatistics",
    "IterationRecord",
]
