"""Algorithm *Delta* (Figure 3b of the paper; semi-naive / delta iteration).

::

    res <- e_rec(e_seed);
    Δ   <- res;
    do
        Δ   <- e_rec(Δ) except res;
        res <- Δ union res;
    while res grows;

Only the nodes that were not encountered in earlier iterations are fed back
into the recursion body.  Theorem 3.2: this computes the same result as
Naive whenever the body is *distributive* for the recursion variable; for
non-distributive bodies (Example 2.4 / Query Q2) the two algorithms may
disagree, which is why the engine only switches to Delta after a
distributivity check (or when explicitly forced).
"""

from __future__ import annotations

from collections.abc import Callable, Sequence

from repro import faults
from repro.errors import FixpointError
from repro.xdm.sequence import ensure_node_sequence, node_except, node_union
from repro.fixpoint.stats import FixpointStatistics


def delta_fixpoint(body: Callable[[list], list], seed: Sequence,
                   max_iterations: int = 100_000,
                   statistics: FixpointStatistics | None = None,
                   seed_is_initial_result: bool = False,
                   trace=None, governor=None) -> list:
    """Compute the IFP of *body* seeded by *seed* with algorithm Delta.

    The signature mirrors :func:`repro.fixpoint.naive.naive_fixpoint`; see
    there for parameter semantics (including ``seed_is_initial_result``,
    which selects the Example 2.4 reading where the seed itself is the
    initial result and initial delta, and ``trace``, which attaches one
    ``round`` span per iteration carrying the frontier/delta sizes).
    """
    seed_nodes = ensure_node_sequence(list(seed), "inflationary fixed point seed")

    if seed_is_initial_result:
        result = node_union(seed_nodes, [])
        delta = list(result)
        if statistics is not None:
            statistics.algorithm = "delta"
            statistics.record(0, 0, len(seed_nodes), len(result), len(result))
    else:
        fed = seed_nodes
        span = trace.begin("round", iteration=0) if trace is not None else None
        produced = body(list(fed))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        result = node_union(produced, [])
        delta = list(result)
        if span is not None:
            span.set(fed=len(fed), produced=len(produced),
                     new=len(delta), result_size=len(result))
            trace.end(span)
        if statistics is not None:
            statistics.algorithm = "delta"
            statistics.record(0, len(fed), len(produced), len(result), len(result))

    iteration = 0
    while delta:
        iteration += 1
        if iteration > max_iterations:
            raise FixpointError(
                f"inflationary fixed point did not converge within {max_iterations} iterations"
            )
        fed = delta
        if governor is not None:
            governor.check_round(iteration, frontier=len(fed),
                                 result_size=len(result))
        faults.trigger("slow-span")
        span = trace.begin("round", iteration=iteration) if trace is not None else None
        produced = body(list(fed))
        ensure_node_sequence(produced, "inflationary fixed point body result")
        delta = node_except(produced, result)
        combined = node_union(delta, result)
        if span is not None:
            span.set(fed=len(fed), produced=len(produced),
                     new=len(delta), result_size=len(combined))
            trace.end(span)
        if statistics is not None:
            statistics.record(iteration, len(fed), len(produced), len(delta), len(combined))
        result = combined
    return result
