"""The syntactic distributivity approximation ``ds_$x(·)`` (Figure 5).

The checker walks the AST bottom-up and applies the paper's inference rules.
It is *sound* (whenever it answers "safe", the expression is distributive
for the recursion variable, and algorithm Delta preserves the IFP
semantics) but deliberately incomplete: expressions such as
``count($x) >= 1`` or the ``id($x/…)`` variant of Query Q1 are distributive
yet rejected — precisely the cases the paper uses to motivate the
distributivity hint (Section 3.2) and the algebraic check (Section 4).

Beyond the rules shown in Figure 5 the implementation encodes the two
observations made in the accompanying text:

* a subexpression whose value does not depend on ``$x`` is distributive,
  *unless* it constructs nodes (fresh node identities break set-equality);
* there is no rule for node constructors, positional filters, aggregations,
  general comparisons, or built-in calls receiving ``$x`` — all of these are
  conservatively rejected when ``$x`` occurs free in them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.xquery import ast


@dataclass
class DistributivityJudgment:
    """The result of the ``ds_$x(·)`` analysis for one (sub)expression.

    ``rule`` names the Figure 5 rule (or the engine-specific reason) that
    decided the judgment; ``children`` holds the sub-judgments so reports
    and tests can inspect the whole derivation tree.
    """

    expression: ast.Expr
    variable: str
    safe: bool
    rule: str
    detail: str = ""
    children: list["DistributivityJudgment"] = field(default_factory=list)

    def failures(self) -> list["DistributivityJudgment"]:
        """All failing leaf judgments (useful for 'why was Delta not used?')."""
        if self.safe:
            return []
        leaf_failures = [child_failure for child in self.children for child_failure in child.failures()]
        return leaf_failures or [self]

    def format(self, indent: int = 0) -> str:
        """A human-readable rendering of the derivation tree."""
        marker = "✓" if self.safe else "✗"
        line = f"{'  ' * indent}{marker} {self.rule}: {type(self.expression).__name__}"
        if self.detail:
            line += f" — {self.detail}"
        lines = [line]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)


FunctionMap = Mapping[tuple[str, int], ast.FunctionDecl]


def is_distributivity_safe(expr: ast.Expr, variable: str,
                           functions: FunctionMap | Iterable[ast.FunctionDecl] | None = None,
                           trusted_builtins: frozenset[str] = frozenset()) -> bool:
    """Return ``True`` iff the Figure 5 rules infer ``ds_$variable(expr)``."""
    return analyze_distributivity(expr, variable, functions, trusted_builtins).safe


def analyze_distributivity(expr: ast.Expr, variable: str,
                           functions: FunctionMap | Iterable[ast.FunctionDecl] | None = None,
                           trusted_builtins: frozenset[str] = frozenset()) -> DistributivityJudgment:
    """Run the ``ds_$x(·)`` analysis and return the full derivation tree.

    Parameters
    ----------
    expr:
        The recursion body ``e_rec``.
    variable:
        The recursion variable ``$x``.
    functions:
        User-defined function declarations, either as the mapping produced by
        :meth:`repro.xquery.ast.Module.function_map` or as an iterable of
        declarations (needed by the FUNCALL rule).
    trusted_builtins:
        Extra built-in function names the caller asserts to be distributive
        in every argument (the paper notes that e.g. ``fn:id`` would need
        its own rule); empty by default to stay faithful to Figure 5.
    """
    checker = _SyntacticChecker(_normalize_functions(functions), trusted_builtins)
    return checker.check(expr, variable)


def _normalize_functions(functions) -> dict[tuple[str, int], ast.FunctionDecl]:
    if functions is None:
        return {}
    if isinstance(functions, Mapping):
        return dict(functions)
    return {(decl.name, decl.arity): decl for decl in functions}


class _SyntacticChecker:
    """Bottom-up application of the Figure 5 rules."""

    def __init__(self, functions: dict[tuple[str, int], ast.FunctionDecl],
                 trusted_builtins: frozenset[str]):
        self.functions = functions
        self.trusted_builtins = trusted_builtins
        self._in_progress: set[tuple[str, int, str]] = set()

    # -- entry -------------------------------------------------------------

    def check(self, expr: ast.Expr, variable: str) -> DistributivityJudgment:
        free = expr.free_variables()

        # CONST / VAR: literals and variable references are always safe.
        if isinstance(expr, (ast.Literal, ast.EmptySequence, ast.ContextItem, ast.RootExpr)):
            return self._judge(expr, variable, True, "CONST")
        if isinstance(expr, ast.VarRef):
            return self._judge(expr, variable, True, "VAR")

        # Node constructors anywhere in the expression create fresh node
        # identities on every (re-)evaluation; splitting the input would
        # yield different nodes, so distributivity fails (Section 3.2).
        if expr.contains_node_constructor():
            return self._judge(
                expr, variable, False, "NODE-CONSTRUCTOR",
                "the expression constructs new nodes",
            )

        # Independence: e does not mention $x at all (and, per the check
        # above, constructs no nodes) — its value is the same for every
        # split of the input.
        if variable not in free:
            return self._judge(expr, variable, True, "INDEPENDENT",
                               "recursion variable does not occur free")

        # $x occurs free: dispatch on the expression form.
        handler = getattr(self, f"_check_{type(expr).__name__}", None)
        if handler is None:
            return self._judge(
                expr, variable, False, "UNSUPPORTED",
                f"no distributivity rule covers {type(expr).__name__} with ${variable} free",
            )
        return handler(expr, variable)

    def _judge(self, expr: ast.Expr, variable: str, safe: bool, rule: str,
               detail: str = "", children: list[DistributivityJudgment] | None = None) -> DistributivityJudgment:
        return DistributivityJudgment(expr, variable, safe, rule, detail, children or [])

    # -- CONCAT -------------------------------------------------------------

    def _check_SequenceExpr(self, expr: ast.SequenceExpr, variable: str) -> DistributivityJudgment:
        children = [self.check(item, variable) for item in expr.items]
        safe = all(child.safe for child in children)
        return self._judge(expr, variable, safe, "CONCAT", children=children)

    def _check_UnionExpr(self, expr: ast.UnionExpr, variable: str) -> DistributivityJudgment:
        children = [self.check(expr.left, variable), self.check(expr.right, variable)]
        safe = all(child.safe for child in children)
        return self._judge(expr, variable, safe, "CONCAT", children=children)

    # -- IF -------------------------------------------------------------------

    def _check_IfExpr(self, expr: ast.IfExpr, variable: str) -> DistributivityJudgment:
        if variable in expr.condition.free_variables():
            return self._judge(
                expr, variable, False, "IF",
                f"${variable} occurs free in the condition (the condition inspects the whole sequence)",
            )
        children = [self.check(expr.then_branch, variable), self.check(expr.else_branch, variable)]
        safe = all(child.safe for child in children)
        return self._judge(expr, variable, safe, "IF", children=children)

    # -- FOR1 / FOR2 ------------------------------------------------------------

    def _check_ForExpr(self, expr: ast.ForExpr, variable: str) -> DistributivityJudgment:
        in_sequence = variable in expr.sequence.free_variables()
        in_body = variable in expr.body.free_variables()
        if in_sequence and in_body:
            return self._judge(
                expr, variable, False, "FOR",
                f"${variable} occurs free in both the range and the body (violates linearity)",
            )
        if not in_sequence:
            # FOR1: $x only in the body.
            child = self.check(expr.body, variable)
            return self._judge(expr, variable, child.safe, "FOR1", children=[child])
        # FOR2: $x only in the range expression.
        if expr.position_var is not None and expr.position_var in expr.body.free_variables():
            return self._judge(
                expr, variable, False, "FOR2",
                "positional variable of the iteration over the recursion variable is used in the body",
            )
        child = self.check(expr.sequence, variable)
        return self._judge(expr, variable, child.safe, "FOR2", children=[child])

    # -- LET1 / LET2 ------------------------------------------------------------

    def _check_LetExpr(self, expr: ast.LetExpr, variable: str) -> DistributivityJudgment:
        in_value = variable in expr.value.free_variables()
        in_body = variable in expr.body.free_variables()
        if in_value and in_body:
            return self._judge(
                expr, variable, False, "LET",
                f"${variable} occurs free in both the bound expression and the body",
            )
        if not in_value:
            # LET1
            child = self.check(expr.body, variable)
            return self._judge(expr, variable, child.safe, "LET1", children=[child])
        # LET2: the let variable now carries (part of) the recursion input,
        # so the body must be distributive in the let variable as well.
        value_child = self.check(expr.value, variable)
        body_child = self.check(expr.body, expr.var)
        safe = value_child.safe and body_child.safe
        return self._judge(expr, variable, safe, "LET2", children=[value_child, body_child])

    # -- TYPESW -------------------------------------------------------------------

    def _check_TypeswitchExpr(self, expr: ast.TypeswitchExpr, variable: str) -> DistributivityJudgment:
        if variable in expr.operand.free_variables():
            return self._judge(
                expr, variable, False, "TYPESW",
                f"${variable} occurs free in the typeswitch operand",
            )
        children = [self.check(case.body, variable) for case in expr.cases]
        children.append(self.check(expr.default, variable))
        safe = all(child.safe for child in children)
        return self._judge(expr, variable, safe, "TYPESW", children=children)

    # -- STEP1 / STEP2 ---------------------------------------------------------------

    def _check_PathExpr(self, expr: ast.PathExpr, variable: str) -> DistributivityJudgment:
        in_left = variable in expr.left.free_variables()
        in_right = variable in expr.right.free_variables()
        if in_left and in_right:
            return self._judge(
                expr, variable, False, "STEP",
                f"${variable} occurs free on both sides of '/'",
            )
        if not in_left:
            child = self.check(expr.right, variable)
            return self._judge(expr, variable, child.safe, "STEP1", children=[child])
        child = self.check(expr.left, variable)
        return self._judge(expr, variable, child.safe, "STEP2", children=[child])

    # -- FUNCALL ------------------------------------------------------------------------

    def _check_FunctionCall(self, expr: ast.FunctionCall, variable: str) -> DistributivityJudgment:
        declaration = self.functions.get((expr.name, len(expr.args)))
        if declaration is None:
            if expr.name in self.trusted_builtins:
                children = [self.check(arg, variable) for arg in expr.args]
                safe = all(child.safe for child in children)
                return self._judge(expr, variable, safe, "FUNCALL-TRUSTED", children=children)
            return self._judge(
                expr, variable, False, "FUNCALL-BUILTIN",
                f"${variable} is passed to built-in {expr.name}(), whose distributivity the "
                "syntactic rules cannot establish (cf. the id() discussion in Section 4.1)",
            )
        key = (declaration.name, declaration.arity, variable)
        if key in self._in_progress:
            return self._judge(
                expr, variable, False, "FUNCALL-RECURSIVE",
                f"recursive call cycle through {declaration.name}() cannot be analysed syntactically",
            )
        self._in_progress.add(key)
        try:
            children: list[DistributivityJudgment] = []
            safe = True
            for parameter, argument in zip(declaration.params, expr.args):
                if variable not in argument.free_variables():
                    continue
                argument_judgment = self.check(argument, variable)
                body_judgment = self.check(declaration.body, parameter.name)
                children.extend([argument_judgment, body_judgment])
                safe = safe and argument_judgment.safe and body_judgment.safe
            return self._judge(expr, variable, safe, "FUNCALL", children=children)
        finally:
            self._in_progress.discard(key)

    # -- forms with no rule when $x occurs free -------------------------------------------

    def _check_FilterExpr(self, expr: ast.FilterExpr, variable: str) -> DistributivityJudgment:
        return self._judge(
            expr, variable, False, "FILTER",
            f"predicates may inspect position or cardinality of the sequence bound to ${variable} "
            "(e.g. $x[1] is not distributive)",
        )

    def _check_AxisStep(self, expr: ast.AxisStep, variable: str) -> DistributivityJudgment:
        return self._judge(
            expr, variable, False, "STEP-PREDICATE",
            f"${variable} occurs free inside a step predicate",
        )

    def _check_GeneralComparison(self, expr: ast.GeneralComparison, variable: str) -> DistributivityJudgment:
        return self._judge(
            expr, variable, False, "COMPARISON",
            "general comparisons quantify existentially over the whole sequence "
            f"bound to ${variable} (e.g. $x = 10)",
        )

    def _check_ValueComparison(self, expr: ast.ValueComparison, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "COMPARISON",
                           "value comparisons require the whole (singleton) sequence")

    def _check_NodeComparison(self, expr: ast.NodeComparison, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "COMPARISON",
                           "node comparisons require the whole (singleton) sequence")

    def _check_ArithmeticExpr(self, expr: ast.ArithmeticExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "ARITHMETIC",
                           "arithmetic atomizes the whole sequence")

    def _check_UnaryExpr(self, expr: ast.UnaryExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "ARITHMETIC",
                           "arithmetic atomizes the whole sequence")

    def _check_RangeExpr(self, expr: ast.RangeExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "RANGE",
                           "range expressions atomize the whole sequence")

    def _check_OrExpr(self, expr: ast.OrExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "LOGICAL",
                           "boolean connectives reduce the sequence to a single truth value")

    def _check_AndExpr(self, expr: ast.AndExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "LOGICAL",
                           "boolean connectives reduce the sequence to a single truth value")

    def _check_QuantifiedExpr(self, expr: ast.QuantifiedExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "QUANTIFIER",
                           "quantifiers reduce the sequence to a single truth value")

    def _check_IntersectExpr(self, expr: ast.IntersectExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "INTERSECT",
                           "intersect needs both operands in full")

    def _check_ExceptExpr(self, expr: ast.ExceptExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "EXCEPT",
                           "except needs both operands in full")

    def _check_WithExpr(self, expr: ast.WithExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "NESTED-IFP",
                           "nested fixed points over the outer recursion variable are not analysed")

    def _check_DirectElementConstructor(self, expr: ast.DirectElementConstructor,
                                        variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "NODE-CONSTRUCTOR",
                           "node constructors create fresh node identities")

    def _check_ComputedConstructor(self, expr: ast.ComputedConstructor,
                                   variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "NODE-CONSTRUCTOR",
                           "node constructors create fresh node identities")

    def _check_OrderedExpr(self, expr: ast.OrderedExpr, variable: str) -> DistributivityJudgment:
        child = self.check(expr.body, variable)
        return self._judge(expr, variable, child.safe, "ORDERED", children=[child])

    def _check_CastExpr(self, expr: ast.CastExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "CAST",
                           "casts atomize the whole (singleton) sequence")

    def _check_InstanceOfExpr(self, expr: ast.InstanceOfExpr, variable: str) -> DistributivityJudgment:
        return self._judge(expr, variable, False, "INSTANCE-OF",
                           "instance of inspects the cardinality of the whole sequence")
