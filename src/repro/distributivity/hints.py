"""Distributivity hints (Section 3.2).

Every distributive expression ``e($x)`` is set-equal to
``for $y in $x return e($y)``, and for the rewritten form the Figure 5 rules
always succeed (via FOR2).  Authors of recursive queries can therefore
"hint" distributivity to the processor by reformulating the recursion body —
at the price of asserting the property themselves, since the rewriting is
only an equivalence when the original body really is distributive.

:func:`apply_distributivity_hint` performs the rewriting mechanically so
that examples, tests and benchmarks can switch a body into hinted form, and
:func:`has_distributivity_hint` recognises bodies already written that way.
"""

from __future__ import annotations

from repro.xquery import ast
from repro.xquery.ast import fresh_variable, substitute_variable


def apply_distributivity_hint(body: ast.Expr, variable: str,
                              hint_variable: str | None = None) -> ast.ForExpr:
    """Rewrite ``e($x)`` into ``for $y in $x return e($y)``.

    Parameters
    ----------
    body:
        The recursion body ``e`` with ``$variable`` free.
    variable:
        The recursion variable ``$x``.
    hint_variable:
        The fresh iteration variable; generated automatically when omitted.
    """
    taken = sorted(body.free_variables() | {variable})
    fresh = hint_variable or fresh_variable("y", taken)
    rewritten = substitute_variable(body, variable, ast.VarRef(fresh))
    return ast.ForExpr(var=fresh, sequence=ast.VarRef(variable), body=rewritten)


def has_distributivity_hint(body: ast.Expr, variable: str) -> bool:
    """True if *body* is already of the hinted shape ``for $y in $x return e``.

    The check is purely structural: the outermost expression iterates a
    fresh variable directly over the recursion variable and the recursion
    variable does not occur free in the iteration body.
    """
    if not isinstance(body, ast.ForExpr):
        return False
    if not isinstance(body.sequence, ast.VarRef) or body.sequence.name != variable:
        return False
    if body.position_var is not None:
        return False
    return variable not in body.body.free_variables()
