"""Distributivity analyses (Section 3 of the paper).

An XQuery expression ``e`` is *distributive* for ``$x`` (Definition 3.1)
when ``for $y in X return e($y)`` is set-equal to ``e(X)`` for every
non-empty sequence ``X``.  Distributivity of the recursion body is exactly
the condition under which algorithm Delta may replace Naive
(Theorem 3.2) — but the property is undecidable, so the engine relies on
safe approximations:

* :mod:`repro.distributivity.syntactic` — the ``ds_$x(·)`` inference rules
  of Figure 5, evaluated bottom-up over the AST.
* :mod:`repro.distributivity.hints` — the "distributivity hint" rewriting of
  Section 3.2: any distributive expression can be wrapped as
  ``for $y in $x return e($y)``, which the syntactic rules always accept.
* :mod:`repro.algebra.distributivity` — the algebraic account of Section 4
  (union push-up over the compiled plan), which lives with the algebra
  backend.
"""

from repro.distributivity.syntactic import (
    DistributivityJudgment,
    analyze_distributivity,
    is_distributivity_safe,
)
from repro.distributivity.hints import apply_distributivity_hint, has_distributivity_hint

__all__ = [
    "DistributivityJudgment",
    "analyze_distributivity",
    "is_distributivity_safe",
    "apply_distributivity_hint",
    "has_distributivity_hint",
]
