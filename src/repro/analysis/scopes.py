"""Binding/scope resolution: the first static-analysis pass.

Walks a parsed :class:`~repro.xquery.ast.Module` with a symbol table and
reports, *before any engine runs*:

* references to variables bound nowhere in scope
  (:class:`~repro.errors.UndefinedVariableError`, ``XPST0008``);
* calls to functions that are neither declared in the prolog nor built in
  (:class:`~repro.errors.UndefinedFunctionError`, ``XPST0017``);
* calls to known functions with an argument count they do not accept
  (:class:`~repro.errors.WrongArityError`, ``XPST0017``);
* duplicate prolog declarations
  (:class:`~repro.errors.DuplicateDeclarationError`).

Scoping mirrors the runtime exactly: prolog variable initializers see the
caller-supplied bindings plus previously declared variables (declarations
evaluate in order); function bodies see their parameters plus every global
(functions only run after the prolog is bound); the query body sees
everything.  The walk reuses :meth:`Expr.children`, whose ``(child,
bound_variables)`` pairs encode which names each construct binds — so a new
AST node cannot silently bypass scope checking.
"""

from __future__ import annotations

from repro.errors import (
    DuplicateDeclarationError,
    UndefinedFunctionError,
    UndefinedVariableError,
    WrongArityError,
    XQueryStaticError,
)
from repro.xquery import ast
from repro.xquery.functions import builtin_arity_range, lookup_builtin

from repro.analysis.report import AnalysisDiagnostic


def check_scopes(module: ast.Module,
                 bound_variables: frozenset[str] = frozenset()
                 ) -> tuple[AnalysisDiagnostic, ...]:
    """All scope diagnostics of *module* under caller bindings *bound_variables*."""
    checker = _ScopeChecker(module, bound_variables)
    checker.run()
    return tuple(checker.diagnostics)


def _position(node: object) -> tuple[int | None, int | None]:
    position = ast.get_position(node)
    if position is None:
        return None, None
    return position


class _ScopeChecker:
    def __init__(self, module: ast.Module, bound_variables: frozenset[str]):
        self.module = module
        self.bound_variables = bound_variables
        self.functions = module.function_map()
        self.function_arities: dict[str, set[int]] = {}
        for name, arity in self.functions:
            self.function_arities.setdefault(name, set()).add(arity)
        self.diagnostics: list[AnalysisDiagnostic] = []

    def run(self) -> None:
        self._check_duplicates()
        globals_so_far = set(self.bound_variables)
        for declaration in self.module.variables:
            if declaration.value is not None:
                self._walk(declaration.value, frozenset(globals_so_far))
            globals_so_far.add(declaration.name)
        all_globals = frozenset(globals_so_far)
        for function in self.module.functions:
            params = frozenset(param.name for param in function.params)
            self._walk(function.body, all_globals | params)
        self._walk(self.module.body, all_globals)

    # -- diagnostics ---------------------------------------------------------

    def _report(self, error: XQueryStaticError, rule: str) -> None:
        self.diagnostics.append(AnalysisDiagnostic(
            severity="error", code=error.code, rule=rule,
            message=getattr(error, "plain_message", error.bare_message),
            line=getattr(error, "line", None),
            column=getattr(error, "column", None), error=error))

    def _check_duplicates(self) -> None:
        seen_functions: set[tuple[str, int]] = set()
        for function in self.module.functions:
            key = (function.name, function.arity)
            if key in seen_functions:
                line, column = _position(function)
                self._report(
                    DuplicateDeclarationError(
                        "function", f"{function.name}#{function.arity}",
                        line, column),
                    rule="duplicate-function")
            seen_functions.add(key)
        seen_variables: set[str] = set()
        for declaration in self.module.variables:
            if declaration.name in seen_variables:
                line, column = _position(declaration)
                self._report(
                    DuplicateDeclarationError(
                        "variable", f"${declaration.name}", line, column),
                    rule="duplicate-variable")
            seen_variables.add(declaration.name)

    # -- the walk ------------------------------------------------------------

    def _walk(self, expr: ast.Expr, env: frozenset[str]) -> None:
        if isinstance(expr, ast.VarRef):
            if expr.name not in env:
                line, column = _position(expr)
                self._report(UndefinedVariableError(expr.name, line, column),
                             rule="undefined-variable")
        elif isinstance(expr, ast.FunctionCall):
            self._check_call(expr)
        for child, bound in expr.children():
            self._walk(child, env | bound)

    def _check_call(self, call: ast.FunctionCall) -> None:
        arity = len(call.args)
        if (call.name, arity) in self.functions:
            return
        if lookup_builtin(call.name, arity) is not None:
            return
        line, column = _position(call)
        declared = self.function_arities.get(call.name)
        if declared:
            expected = " or ".join(str(n) for n in sorted(declared))
            self._report(WrongArityError(call.name, arity, expected, line, column),
                         rule="wrong-arity")
            return
        builtin_range = builtin_arity_range(call.name)
        if builtin_range is not None:
            low, high = builtin_range
            expected = str(low) if low == high else f"{low}..{high}"
            self._report(WrongArityError(call.name, arity, expected, line, column),
                         rule="wrong-arity")
            return
        self._report(UndefinedFunctionError(call.name, arity, line, column),
                     rule="undefined-function")


__all__ = ["check_scopes"]
