"""Cardinality (occurrence) inference over the XQuery AST.

The second analysis pass: every expression is assigned one of five
occurrence classes — the classic ``empty · one · optional · star · plus``
lattice of XML Schema occurrence indicators:

========  ==========  =============================
member    bounds      sequence shapes it covers
========  ==========  =============================
EMPTY     (0, 0)      ``()``
ONE       (1, 1)      exactly one item
OPT       (0, 1)      zero or one item (``?``)
PLUS      (1, ∞)      one or more items (``+``)
STAR      (0, ∞)      anything (``*``, the top)
========  ==========  =============================

The inference is *sound but deliberately incomplete*: when a construct's
cardinality cannot be bounded statically the answer is :data:`STAR`.  Two
consumers rely on the sound direction only:

* **emptiness detection** — the optimizer may eliminate a branch whose
  cardinality is :data:`EMPTY`, and the strengthened distributivity check
  (:mod:`repro.analysis.distributivity`) may discharge an emptiness
  conditional only when the facts are proven;
* **non-emptiness** (lower bound ≥ 1) — used to justify eliminating the
  paper-rejected ``count($x) >= 1`` conditional family inside recursion
  bodies (see DESIGN.md §11 for the soundness argument).
"""

from __future__ import annotations

import enum
from collections.abc import Mapping

from repro.xquery import ast


class Cardinality(enum.Enum):
    """One point of the occurrence lattice; the value is ``(lower, upper)``
    with ``None`` standing for an unbounded upper limit."""

    EMPTY = (0, 0)
    ONE = (1, 1)
    OPT = (0, 1)
    PLUS = (1, None)
    STAR = (0, None)

    @property
    def lower(self) -> int:
        return self.value[0]

    @property
    def upper(self) -> int | None:
        return self.value[1]

    @property
    def indicator(self) -> str:
        """The occurrence-indicator spelling (``empty``/``1``/``?``/``+``/``*``)."""
        return {"EMPTY": "empty", "ONE": "1", "OPT": "?",
                "PLUS": "+", "STAR": "*"}[self.name]

    def always_empty(self) -> bool:
        return self is Cardinality.EMPTY

    def never_empty(self) -> bool:
        return self.lower >= 1


EMPTY = Cardinality.EMPTY
ONE = Cardinality.ONE
OPT = Cardinality.OPT
PLUS = Cardinality.PLUS
STAR = Cardinality.STAR


def from_bounds(lower: int, upper: int | None) -> Cardinality:
    """Collapse arbitrary ``(lower, upper)`` bounds onto the five classes."""
    lower = min(lower, 1)
    if upper is not None and upper > 1:
        upper = None
    if upper == 0:
        return EMPTY
    if lower == 1:
        return ONE if upper == 1 else PLUS
    return OPT if upper == 1 else STAR


def _add(a: int | None, b: int | None) -> int | None:
    if a is None or b is None:
        return None
    return a + b


def _mul(a: int | None, b: int | None) -> int | None:
    if a == 0 or b == 0:
        return 0
    if a is None or b is None:
        return None
    return a * b


def concat(a: Cardinality, b: Cardinality) -> Cardinality:
    """Cardinality of the sequence concatenation ``(a, b)``."""
    return from_bounds(a.lower + b.lower, _add(a.upper, b.upper))


def alt(a: Cardinality, b: Cardinality) -> Cardinality:
    """Least upper bound: an expression yielding either *a* or *b*."""
    upper = None if a.upper is None or b.upper is None else max(a.upper, b.upper)
    return from_bounds(min(a.lower, b.lower), upper)


def times(a: Cardinality, b: Cardinality) -> Cardinality:
    """Cardinality of a ``for`` loop: *a* iterations each yielding *b*."""
    return from_bounds(a.lower * b.lower, _mul(a.upper, b.upper))


def union(a: Cardinality, b: Cardinality) -> Cardinality:
    """Node-set union: at least the larger operand, at most both."""
    return from_bounds(max(a.lower, b.lower), _add(a.upper, b.upper))


#: Built-in functions with a statically known result cardinality.  Only the
#: *sound* entries belong here: a function listed with ONE must return one
#: item on every successful call (errors abort evaluation, so they do not
#: weaken the bound).
_BUILTIN_CARDINALITY: dict[str, Cardinality] = {
    # always exactly one item
    "count": ONE, "exists": ONE, "empty": ONE, "not": ONE, "boolean": ONE,
    "true": ONE, "false": ONE, "string": ONE, "number": ONE, "sum": ONE,
    "string-length": ONE, "normalize-space": ONE, "name": ONE,
    "local-name": ONE, "concat": ONE, "string-join": ONE, "deep-equal": ONE,
    "contains": ONE, "starts-with": ONE, "ends-with": ONE, "substring": ONE,
    "substring-before": ONE, "substring-after": ONE, "upper-case": ONE,
    "lower-case": ONE, "translate": ONE, "doc-available": ONE,
    "position": ONE, "last": ONE, "floor": ONE, "ceiling": ONE,
    "round": ONE, "abs": ONE, "doc": ONE, "root": ONE, "lang": ONE,
    # cardinality guards
    "zero-or-one": OPT, "exactly-one": ONE, "one-or-more": PLUS,
    # empty-in → empty-out aggregates
    "min": OPT, "max": OPT, "avg": OPT, "node-name": OPT,
}


def infer_cardinality(expr: ast.Expr,
                      env: Mapping[str, Cardinality] | None = None) -> Cardinality:
    """Infer the occurrence class of *expr* under variable bounds *env*.

    *env* maps in-scope variable names to their cardinality; unknown
    variables (and every construct outside the handled core) default to
    :data:`STAR`.  User-defined function calls are not expanded — their
    result is :data:`STAR` — so the inference always terminates, recursion
    or not.
    """
    environment: dict[str, Cardinality] = dict(env or {})
    return _infer(expr, environment)


def _infer(expr: ast.Expr, env: dict[str, Cardinality]) -> Cardinality:
    if isinstance(expr, ast.Literal):
        return ONE
    if isinstance(expr, ast.EmptySequence):
        return EMPTY
    if isinstance(expr, ast.VarRef):
        return env.get(expr.name, STAR)
    if isinstance(expr, (ast.ContextItem, ast.RootExpr)):
        return ONE
    if isinstance(expr, ast.SequenceExpr):
        result = EMPTY
        for item in expr.items:
            result = concat(result, _infer(item, env))
        return result
    if isinstance(expr, ast.RangeExpr):
        if (isinstance(expr.start, ast.Literal) and isinstance(expr.end, ast.Literal)
                and isinstance(expr.start.value, int) and isinstance(expr.end.value, int)):
            span = expr.end.value - expr.start.value + 1
            return from_bounds(max(span, 0), max(span, 0))
        return STAR
    if isinstance(expr, ast.UnionExpr):
        return union(_infer(expr.left, env), _infer(expr.right, env))
    if isinstance(expr, (ast.IntersectExpr, ast.ExceptExpr)):
        return from_bounds(0, _infer(expr.left, env).upper)
    if isinstance(expr, (ast.OrExpr, ast.AndExpr, ast.GeneralComparison,
                         ast.QuantifiedExpr, ast.InstanceOfExpr)):
        return ONE
    if isinstance(expr, (ast.ValueComparison, ast.NodeComparison)):
        # an empty operand makes the whole comparison ()
        left = _infer(expr.left, env)
        right = _infer(expr.right, env)
        return ONE if left.never_empty() and right.never_empty() else OPT
    if isinstance(expr, ast.ArithmeticExpr):
        left = _infer(expr.left, env)
        right = _infer(expr.right, env)
        return ONE if left.never_empty() and right.never_empty() else OPT
    if isinstance(expr, ast.UnaryExpr):
        return ONE if _infer(expr.operand, env).never_empty() else OPT
    if isinstance(expr, ast.ForExpr):
        sequence = _infer(expr.sequence, env)
        bound = dict(env)
        bound[expr.var] = ONE
        if expr.position_var:
            bound[expr.position_var] = ONE
        return times(sequence, _infer(expr.body, bound))
    if isinstance(expr, ast.LetExpr):
        bound = dict(env)
        bound[expr.var] = _infer(expr.value, env)
        return _infer(expr.body, bound)
    if isinstance(expr, ast.IfExpr):
        return alt(_infer(expr.then_branch, env), _infer(expr.else_branch, env))
    if isinstance(expr, ast.TypeswitchExpr):
        operand = _infer(expr.operand, env)
        result: Cardinality | None = None
        for case in expr.cases:
            bound = dict(env)
            if case.var:
                bound[case.var] = operand
            card = _infer(case.body, bound)
            result = card if result is None else alt(result, card)
        bound = dict(env)
        if expr.default_var:
            bound[expr.default_var] = operand
        default = _infer(expr.default, bound)
        return default if result is None else alt(result, default)
    if isinstance(expr, ast.OrderedExpr):
        return _infer(expr.body, env)
    if isinstance(expr, ast.CastExpr):
        return OPT if expr.optional else ONE
    if isinstance(expr, (ast.DirectElementConstructor, ast.AttributeConstructor)):
        return ONE
    if isinstance(expr, ast.PathExpr):
        # a path maps each left-hand item; no items in, no items out
        return EMPTY if _infer(expr.left, env).always_empty() else STAR
    if isinstance(expr, ast.FilterExpr):
        return EMPTY if _infer(expr.primary, env).always_empty() else STAR
    if isinstance(expr, ast.FunctionCall):
        name = expr.name
        local = name.split(":", 1)[1] if name.startswith("fn:") else name
        builtin = _BUILTIN_CARDINALITY.get(local)
        if builtin is not None:
            return builtin
        return STAR
    # paths, filters, axis steps, computed constructors, nested fixpoints,
    # user-defined function calls: no static bound
    return STAR


__all__ = ["Cardinality", "EMPTY", "ONE", "OPT", "PLUS", "STAR",
           "from_bounds", "concat", "alt", "times", "union",
           "infer_cardinality"]
