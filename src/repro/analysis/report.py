"""Result types of the static analyzer: diagnostics, facts, the report.

The analyzer (:mod:`repro.analysis.analyzer`) runs once per compiled module
and produces one :class:`AnalysisReport` — an immutable value that is
cached alongside the plan, attached to query results
(``QueryResult.analysis``), rendered by ``repro-xquery --check`` /
``--explain-analysis`` and served by ``POST /analyze``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import XQueryStaticError


@dataclass(frozen=True)
class AnalysisDiagnostic:
    """One finding of a static pass.

    ``severity`` is ``"error"`` (the query cannot run; a typed
    :class:`~repro.errors.XQueryStaticError` is carried in ``error``) or
    ``"warning"`` (the query runs, but an optimization opportunity was
    rejected — e.g. a fixpoint body that failed the distributivity proof,
    reported under the failing rule's name).
    """

    severity: str
    code: str
    rule: str
    message: str
    line: int | None = None
    column: int | None = None
    #: The ready-to-raise typed exception of an ``"error"`` diagnostic.
    error: XQueryStaticError | None = field(default=None, compare=False)

    def format(self) -> str:
        where = f"{self.line}:{self.column}: " if self.line is not None else ""
        return f"{self.severity}: {where}[{self.code}] {self.message} ({self.rule})"


@dataclass(frozen=True)
class FixpointFact:
    """The distributivity facts derived for one ``with … recurse`` site."""

    variable: str
    #: The algorithm pinned in the query text (``"auto"`` unless ``using``).
    declared_algorithm: str
    #: Occurrence class of the seed expression (``empty``/``1``/``?``/``+``/``*``).
    seed_cardinality: str
    #: Did the paper's Figure-5 syntactic check alone accept the body?
    syntactic_safe: bool
    #: Did the strengthened (cardinality-assisted) proof accept the body?
    safe: bool
    #: The deciding rule: ``SYNTACTIC``, ``TRUSTED-BUILTIN``,
    #: ``CARD-EMPTY-BASE``, ``CARD-SEED-NONEMPTY`` for proofs; the failing
    #: syntactic rule name for rejections.
    rule: str
    detail: str
    #: Cardinality facts the strengthened proof consumed, human-readable.
    facts: tuple[str, ...] = ()
    line: int | None = None
    column: int | None = None

    @property
    def algorithm_hint(self) -> str:
        """The algorithm ``auto`` mode resolves to under this proof."""
        if self.declared_algorithm in ("naive", "delta"):
            return self.declared_algorithm
        return "delta" if self.safe else "naive"

    def format(self) -> str:
        where = f" at {self.line}:{self.column}" if self.line is not None else ""
        status = "distributive" if self.safe else "not distributive"
        lines = [f"fixpoint ${self.variable}{where}: {status} "
                 f"[{self.rule}] -> {self.algorithm_hint}",
                 f"  seed cardinality: {self.seed_cardinality}",
                 f"  syntactic (Figure 5) verdict: "
                 f"{'safe' if self.syntactic_safe else 'rejected'}"]
        for fact in self.facts:
            lines.append(f"  fact: {fact}")
        if self.detail:
            lines.append(f"  {self.detail}")
        return "\n".join(lines)


@dataclass(frozen=True)
class AnalysisReport:
    """Everything the static passes learned about one module."""

    diagnostics: tuple[AnalysisDiagnostic, ...] = ()
    fixpoints: tuple[FixpointFact, ...] = ()
    #: Occurrence class of the module body (``empty``/``1``/``?``/``+``/``*``).
    body_cardinality: str = "*"

    def errors(self) -> tuple[AnalysisDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "error")

    def warnings(self) -> tuple[AnalysisDiagnostic, ...]:
        return tuple(d for d in self.diagnostics if d.severity == "warning")

    def ok(self) -> bool:
        """True when no static error was found (warnings do not count)."""
        return not self.errors()

    def raise_first(self) -> None:
        """Raise the typed error of the first ``"error"`` diagnostic, if any."""
        for diagnostic in self.diagnostics:
            if diagnostic.severity != "error":
                continue
            if diagnostic.error is not None:
                raise diagnostic.error
            raise XQueryStaticError(diagnostic.message, code=diagnostic.code)

    def format(self) -> str:
        """The full human-readable report (``--explain-analysis``)."""
        lines = [f"body cardinality: {self.body_cardinality}"]
        if not self.diagnostics:
            lines.append("diagnostics: none")
        else:
            lines.append("diagnostics:")
            for diagnostic in self.diagnostics:
                lines.append(f"  {diagnostic.format()}")
        if self.fixpoints:
            lines.append("fixpoints:")
            for fact in self.fixpoints:
                for row in fact.format().splitlines():
                    lines.append(f"  {row}")
        else:
            lines.append("fixpoints: none")
        return "\n".join(lines)

    def to_dict(self) -> dict:
        """JSON-ready rendering (service ``POST /analyze``)."""
        return {
            "ok": self.ok(),
            "body_cardinality": self.body_cardinality,
            "diagnostics": [
                {"severity": d.severity, "code": d.code, "rule": d.rule,
                 "message": d.message, "line": d.line, "column": d.column}
                for d in self.diagnostics
            ],
            "fixpoints": [
                {"variable": f.variable, "declared_algorithm": f.declared_algorithm,
                 "algorithm": f.algorithm_hint, "seed_cardinality": f.seed_cardinality,
                 "syntactic_safe": f.syntactic_safe, "safe": f.safe,
                 "rule": f.rule, "detail": f.detail, "facts": list(f.facts),
                 "line": f.line, "column": f.column}
                for f in self.fixpoints
            ],
        }


__all__ = ["AnalysisDiagnostic", "FixpointFact", "AnalysisReport"]
