"""Strengthened distributivity proof: Figure 5 plus cardinality facts.

The paper's syntactic check (:mod:`repro.distributivity.syntactic`)
deliberately rejects two families the text itself points out as safe but
out of reach for a purely syntactic judgment (Sections 3.2 and 4):

* **emptiness conditionals** — ``if (count($x) >= 1) then e else ()`` and
  friends.  Inside an inflationary fixed point the recursion variable is
  only ever bound to sequences the driver actually feeds; whenever we can
  decide the condition for those inputs, the conditional collapses to one
  branch and the body becomes Figure-5 distributive.
* **trusted built-ins** — ``fn:id`` distributes over node-set union in its
  argument (``id(A ∪ B) = id(A) ∪ id(B)``), making the ``$x/id(...)``
  variant of paper query Q1 safe for the Delta algorithm and the SQL
  ``WITH RECURSIVE`` emission.

Soundness of the conditional elimination (full argument in DESIGN.md §11):
let ``B`` be the written body and ``B'`` the body with every decided
conditional replaced by its live branch.  Both algorithms compute round 0
identically as ``B(seed)``; every later input is non-empty in both (naive
feeds the growing accumulator, delta feeds non-empty frontiers), and on
non-empty inputs ``B ≡ B'`` by construction of the condition verdicts.  It
remains to rule out a divergence when the accumulator is empty, via either

* **CARD-EMPTY-BASE** — ``B(∅) = ∅``: at the empty input every decided
  conditional selects a branch (the ``verdict_empty`` direction) and the
  resulting body has cardinality EMPTY, so a naive iteration from an empty
  round-0 result terminates immediately, exactly like delta; or
* **CARD-SEED-NONEMPTY** — the accumulator is never empty: the seed has
  cardinality ``1``/``+`` and ``B'`` maps non-empty inputs to non-empty
  outputs (lower bound ≥ 1 under ``$x : +``), so round 0 is non-empty and
  the question never arises.

Either fact, together with Figure-5 distributivity of ``B'``, gives
``naive(B) = delta(B)`` — which is all the engines need to pick µ∆ or the
recursive CTE.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, fields, replace

from repro.distributivity.syntactic import (
    DistributivityJudgment,
    analyze_distributivity,
)
from repro.xquery import ast

from repro.analysis import cardinality as card
from repro.analysis.cardinality import Cardinality, infer_cardinality

#: Built-ins the strengthened check trusts to distribute over union in
#: their node-set argument.  ``fn:id`` maps each idref token of each input
#: item independently, so ``id(A ∪ B) = id(A) ∪ id(B)`` as node sets.
TRUSTED_DISTRIBUTIVE_BUILTINS = frozenset({"id", "fn:id"})

_FunctionMap = Mapping[tuple[str, int], ast.FunctionDecl] | None


@dataclass(frozen=True)
class StaticDistributivityJudgment:
    """The verdict of the strengthened check for one recursion body."""

    safe: bool
    #: ``SYNTACTIC`` / ``TRUSTED-BUILTIN`` / ``CARD-EMPTY-BASE`` /
    #: ``CARD-SEED-NONEMPTY`` when safe; the blocking rule otherwise.
    rule: str
    detail: str
    #: Human-readable cardinality facts the proof consumed.
    facts: tuple[str, ...]
    #: The plain Figure-5 derivation (no strengthening).
    syntactic: DistributivityJudgment
    #: The derivation over the conditional-free body, when one was attempted.
    strengthened: DistributivityJudgment | None = None


def is_distributive_static(body: ast.Expr, variable: str,
                           functions: _FunctionMap = None,
                           seed: ast.Expr | None = None,
                           env: Mapping[str, Cardinality] | None = None) -> bool:
    """Boolean form of :func:`analyze_distributivity_static`."""
    return analyze_distributivity_static(
        body, variable, functions=functions, seed=seed, env=env).safe


def analyze_distributivity_static(
        body: ast.Expr, variable: str, *,
        functions: _FunctionMap = None,
        seed: ast.Expr | None = None,
        env: Mapping[str, Cardinality] | None = None,
) -> StaticDistributivityJudgment:
    """Prove *body* distributive in ``$variable``, or explain the failure.

    *seed* (the fixpoint's seed expression) and *env* (cardinalities of
    in-scope variables) feed the cardinality facts; both are optional —
    without them only the ``SYNTACTIC``, ``TRUSTED-BUILTIN`` and
    ``CARD-EMPTY-BASE`` rules can fire.
    """
    base = analyze_distributivity(body, variable, functions)
    if base.safe:
        return StaticDistributivityJudgment(
            safe=True, rule="SYNTACTIC",
            detail="accepted by the Figure 5 syntactic rules alone",
            facts=(), syntactic=base)

    environment = dict(env or {})
    rewritten, facts = _eliminate_decided_conditionals(body, variable)
    strengthened = analyze_distributivity(
        rewritten, variable, functions,
        trusted_builtins=TRUSTED_DISTRIBUTIVE_BUILTINS)
    if not strengthened.safe:
        failures = strengthened.failures()
        rule = failures[0].rule if failures else strengthened.rule
        detail = failures[0].detail if failures else strengthened.detail
        return StaticDistributivityJudgment(
            safe=False, rule=rule, detail=detail, facts=tuple(facts),
            syntactic=base, strengthened=strengthened)

    if not facts:
        # No conditional was touched: only trusting built-ins was needed,
        # which holds for every input, empty or not.
        return StaticDistributivityJudgment(
            safe=True, rule="TRUSTED-BUILTIN",
            detail="distributive once union-distributing built-ins "
                   f"({', '.join(sorted(TRUSTED_DISTRIBUTIVE_BUILTINS))}) "
                   "are trusted",
            facts=(), syntactic=base, strengthened=strengthened)

    # Conditionals were eliminated: justify the empty-accumulator case.
    empty_body = _body_at_empty(body, variable)
    at_empty = infer_cardinality(
        empty_body, {**environment, variable: card.EMPTY})
    if at_empty.always_empty():
        return StaticDistributivityJudgment(
            safe=True, rule="CARD-EMPTY-BASE",
            detail="body(∅) is provably empty, so an empty round-0 "
                   "result terminates both algorithms identically",
            facts=(*facts, "cardinality of body at $"
                   f"{variable} = () is empty"),
            syntactic=base, strengthened=strengthened)

    if seed is not None:
        seed_card = infer_cardinality(seed, environment)
        if seed_card.never_empty():
            live_card = infer_cardinality(
                rewritten, {**environment, variable: card.PLUS})
            if live_card.never_empty():
                return StaticDistributivityJudgment(
                    safe=True, rule="CARD-SEED-NONEMPTY",
                    detail="the seed is provably non-empty and the body "
                           "preserves non-emptiness, so the accumulator "
                           "never becomes empty",
                    facts=(*facts,
                           f"seed cardinality: {seed_card.indicator}",
                           "rewritten body cardinality under $"
                           f"{variable} : + is {live_card.indicator}"),
                    syntactic=base, strengthened=strengthened)

    return StaticDistributivityJudgment(
        safe=False, rule="CARD-UNJUSTIFIED",
        detail="an emptiness conditional could be decided for non-empty "
               "inputs, but neither an empty base case nor a non-empty "
               "seed could be proved",
        facts=tuple(facts), syntactic=base, strengthened=strengthened)


# ---------------------------------------------------------------------------
# condition verdicts
# ---------------------------------------------------------------------------


def _count_comparison(cond: ast.Expr, variable: str) -> tuple[str, int] | None:
    """Match ``count($variable) <op> <int literal>`` (either side); returns
    the operator normalized to the count-on-the-left orientation."""
    if not isinstance(cond, (ast.GeneralComparison, ast.ValueComparison)):
        return None
    flipped = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<=",
               "eq": "eq", "ne": "ne", "lt": "gt", "le": "ge",
               "gt": "lt", "ge": "le"}
    left, right, op = cond.left, cond.right, cond.op
    if _is_count_of(right, variable) and isinstance(left, ast.Literal):
        left, right = right, left
        op = flipped[op]
    if not (_is_count_of(left, variable) and isinstance(right, ast.Literal)):
        return None
    if not isinstance(right.value, int) or isinstance(right.value, bool):
        return None
    normalized = {"eq": "=", "ne": "!=", "lt": "<", "le": "<=",
                  "gt": ">", "ge": ">="}.get(op, op)
    return normalized, right.value


def _is_count_of(expr: ast.Expr, variable: str) -> bool:
    return (isinstance(expr, ast.FunctionCall)
            and expr.name in ("count", "fn:count")
            and len(expr.args) == 1
            and isinstance(expr.args[0], ast.VarRef)
            and expr.args[0].name == variable)


def _is_var(expr: ast.Expr, variable: str) -> bool:
    return isinstance(expr, ast.VarRef) and expr.name == variable


def condition_verdict(cond: ast.Expr, variable: str,
                      nonempty: bool) -> bool | None:
    """The boolean value of *cond* given ``$variable`` is a non-empty node
    sequence (``nonempty=True``) or the empty sequence (``nonempty=False``);
    ``None`` when undecidable.

    Only error-free condition shapes are recognized, so deciding them can
    never change the failure behavior of the body.
    """
    if _is_var(cond, variable):
        # EBV of a node sequence: true iff non-empty.
        return nonempty
    if isinstance(cond, ast.FunctionCall) and len(cond.args) == 1:
        name = cond.name[3:] if cond.name.startswith("fn:") else cond.name
        if name in ("exists", "boolean") and _is_var(cond.args[0], variable):
            return nonempty
        if name == "empty" and _is_var(cond.args[0], variable):
            return not nonempty
        if name == "not":
            inner = condition_verdict(cond.args[0], variable, nonempty)
            return None if inner is None else not inner
    comparison = _count_comparison(cond, variable)
    if comparison is not None:
        op, bound = comparison
        if not nonempty:
            count = 0
            return {"=": count == bound, "!=": count != bound,
                    "<": count < bound, "<=": count <= bound,
                    ">": count > bound, ">=": count >= bound}[op]
        # count >= 1, exact value unknown
        if op == ">=":
            return True if bound <= 1 else None
        if op == ">":
            return True if bound <= 0 else None
        if op == "!=":
            return True if bound <= 0 else None
        if op == "=":
            return False if bound <= 0 else None
        if op == "<":
            return False if bound <= 1 else None
        if op == "<=":
            return False if bound <= 0 else None
    return None


# ---------------------------------------------------------------------------
# body rewriting
# ---------------------------------------------------------------------------


def _rewrite_conditionals(expr: ast.Expr, variable: str, nonempty: bool,
                          facts: list[str] | None) -> ast.Expr:
    """Replace every conditional decidable for the given emptiness state of
    ``$variable`` by the selected branch.

    Undecidable conditionals are left in place — the syntactic rules (or
    the cardinality join over both branches) judge them afterwards.
    Occurrences under a construct that rebinds ``$variable`` are skipped
    (:func:`repro.xquery.ast._shadowed_body_fields`).
    """
    if isinstance(expr, ast.IfExpr):
        verdict = condition_verdict(expr.condition, variable, nonempty)
        if verdict is not None:
            branch = expr.then_branch if verdict else expr.else_branch
            if facts is not None:
                facts.append(
                    f"condition decided {'true' if verdict else 'false'} for "
                    f"{'non-empty' if nonempty else 'empty'} ${variable}")
            return _rewrite_conditionals(branch, variable, nonempty, facts)
    shadowed = ast._shadowed_body_fields(expr, variable)
    changes: dict[str, object] = {}
    for field_info in fields(expr):  # type: ignore[arg-type]
        if field_info.name in shadowed:
            continue
        value = getattr(expr, field_info.name)
        if isinstance(value, ast.Expr):
            rewritten = _rewrite_conditionals(value, variable, nonempty, facts)
            if rewritten is not value:
                changes[field_info.name] = rewritten
        elif isinstance(value, tuple) and value and all(
                isinstance(item, ast.Expr) for item in value):
            rewritten_items = tuple(
                _rewrite_conditionals(item, variable, nonempty, facts)
                for item in value)
            if any(new is not old for new, old in zip(rewritten_items, value)):
                changes[field_info.name] = rewritten_items
    return replace(expr, **changes) if changes else expr  # type: ignore[type-var]


def _eliminate_decided_conditionals(body: ast.Expr,
                                    variable: str) -> tuple[ast.Expr, list[str]]:
    """The body specialized to non-empty ``$variable``, with the facts used."""
    facts: list[str] = []
    rewritten = _rewrite_conditionals(body, variable, nonempty=True, facts=facts)
    return rewritten, facts


def _body_at_empty(body: ast.Expr, variable: str) -> ast.Expr:
    """The body specialized to ``$variable = ()`` (undecided parts kept)."""
    return _rewrite_conditionals(body, variable, nonempty=False, facts=None)


__all__ = ["TRUSTED_DISTRIBUTIVE_BUILTINS", "StaticDistributivityJudgment",
           "analyze_distributivity_static", "is_distributive_static",
           "condition_verdict"]
