"""Static query analysis: scopes, cardinality, distributivity, reports.

The compile-time facts layer of the engine (DESIGN.md §11).  The analyzer
runs once per compiled module — before any of the three engines executes —
and produces an :class:`~repro.analysis.report.AnalysisReport` that is
cached alongside the plan, raised from (typed static errors), rendered by
``repro-xquery --check`` / ``--explain-analysis`` and served over
``POST /analyze``.
"""

from repro.analysis.analyzer import analyze_module, analyze_query
from repro.analysis.cardinality import Cardinality, infer_cardinality
from repro.analysis.distributivity import (
    TRUSTED_DISTRIBUTIVE_BUILTINS,
    StaticDistributivityJudgment,
    analyze_distributivity_static,
    is_distributive_static,
)
from repro.analysis.report import AnalysisDiagnostic, AnalysisReport, FixpointFact
from repro.analysis.scopes import check_scopes

__all__ = [
    "AnalysisDiagnostic",
    "AnalysisReport",
    "Cardinality",
    "FixpointFact",
    "StaticDistributivityJudgment",
    "TRUSTED_DISTRIBUTIVE_BUILTINS",
    "analyze_distributivity_static",
    "analyze_module",
    "analyze_query",
    "check_scopes",
    "infer_cardinality",
    "is_distributive_static",
]
