"""The multi-pass static analyzer: one call, one :class:`AnalysisReport`.

Pass order (each pass consumes the previous one's facts):

1. **scopes** (:mod:`repro.analysis.scopes`) — symbol table; typed static
   errors for undefined variables/functions, wrong arity, duplicate
   declarations, with source positions.
2. **cardinality** (:mod:`repro.analysis.cardinality`) — occurrence
   classes for the prolog variables (in declaration order, so later
   declarations see earlier bounds) and the module body.
3. **distributivity** (:mod:`repro.analysis.distributivity`) — for every
   ``with … recurse`` site, the Figure-5 verdict and the strengthened
   cardinality-assisted proof; rejected bodies surface as named-rule
   warnings so ``--check`` can explain *why* a fixpoint falls back to the
   Naive algorithm.

The analyzer is pure (AST in, report out): the session runs it once per
compiled module and caches the report alongside the plan; engines read the
same report, which is how all three report identical static errors.
"""

from __future__ import annotations

from collections.abc import Iterable, Mapping

from repro.xquery import ast
from repro.xquery.parser import parse_query

from repro.analysis import cardinality as card
from repro.analysis.distributivity import analyze_distributivity_static
from repro.analysis.report import (
    AnalysisDiagnostic,
    AnalysisReport,
    FixpointFact,
)
from repro.analysis.scopes import check_scopes


def analyze_module(module: ast.Module,
                   bound_variables: Iterable[str] = ()) -> AnalysisReport:
    """Run every static pass over *module*.

    *bound_variables* are names the caller will bind at evaluation time
    (``evaluate(..., variables={...})``) — they are in scope everywhere,
    exactly as the runtime binds them before the prolog runs.
    """
    bound = frozenset(bound_variables)
    diagnostics = list(check_scopes(module, bound))

    environment: dict[str, card.Cardinality] = {name: card.STAR for name in bound}
    for declaration in module.variables:
        if declaration.value is not None:
            environment[declaration.name] = card.infer_cardinality(
                declaration.value, environment)
        else:
            environment[declaration.name] = card.STAR
    body_cardinality = card.infer_cardinality(module.body, environment)

    functions = module.function_map()
    fixpoints: list[FixpointFact] = []
    for site, env in _fixpoint_sites(module, environment):
        judgment = analyze_distributivity_static(
            site.body, site.var, functions=functions, seed=site.seed, env=env)
        line, column = _position(site)
        seed_cardinality = card.infer_cardinality(site.seed, env)
        fact = FixpointFact(
            variable=site.var,
            declared_algorithm=site.algorithm,
            seed_cardinality=seed_cardinality.indicator,
            syntactic_safe=judgment.syntactic.safe,
            safe=judgment.safe,
            rule=judgment.rule,
            detail=judgment.detail,
            facts=judgment.facts,
            line=line,
            column=column,
        )
        fixpoints.append(fact)
        if not judgment.safe and site.algorithm == "auto":
            diagnostics.append(AnalysisDiagnostic(
                severity="warning", code="REPR0002",
                rule=f"rejected-distributivity:{judgment.rule}",
                message=(f"fixpoint body of ${site.var} is not provably "
                         f"distributive ({judgment.rule}): {judgment.detail}; "
                         "auto mode falls back to the Naive algorithm"),
                line=line, column=column))

    return AnalysisReport(
        diagnostics=tuple(diagnostics),
        fixpoints=tuple(fixpoints),
        body_cardinality=body_cardinality.indicator,
    )


def analyze_query(query: str,
                  bound_variables: Iterable[str] = ()) -> AnalysisReport:
    """Parse *query* and run :func:`analyze_module` (lint entry point).

    Parsing happens on the unoptimized AST so positions and diagnostics
    match the query text as written; syntax errors propagate as
    :class:`~repro.errors.XQuerySyntaxError`.
    """
    return analyze_module(parse_query(query), bound_variables)


def _position(node: object) -> tuple[int | None, int | None]:
    position = ast.get_position(node)
    if position is None:
        return None, None
    return position


def _fixpoint_sites(module: ast.Module,
                    environment: Mapping[str, card.Cardinality]
                    ) -> list[tuple[ast.WithExpr, dict[str, card.Cardinality]]]:
    """Every ``with`` expression of the module, paired with the variable
    cardinalities in scope at its position.

    Bindings introduced between the module root and the site (``for``/
    ``let`` variables) are tracked with their inferred classes; a ``for``
    variable is always ONE, which is what makes seeds like
    ``for $c in ... with $x seeded by $c ...`` provably non-empty.
    """
    sites: list[tuple[ast.WithExpr, dict[str, card.Cardinality]]] = []

    def walk(expr: ast.Expr, env: dict[str, card.Cardinality]) -> None:
        if isinstance(expr, ast.WithExpr):
            sites.append((expr, dict(env)))
        if isinstance(expr, ast.ForExpr):
            walk(expr.sequence, env)
            bound = dict(env)
            bound[expr.var] = card.ONE
            if expr.position_var:
                bound[expr.position_var] = card.ONE
            walk(expr.body, bound)
            return
        if isinstance(expr, ast.LetExpr):
            walk(expr.value, env)
            bound = dict(env)
            bound[expr.var] = card.infer_cardinality(expr.value, env)
            walk(expr.body, bound)
            return
        for child, bound_names in expr.children():
            if bound_names:
                child_env = dict(env)
                for name in bound_names:
                    # rebinding shadows any outer bound for this subtree
                    child_env[name] = card.STAR
                walk(child, child_env)
            else:
                walk(child, env)

    base = dict(environment)
    for declaration in module.variables:
        if declaration.value is not None:
            walk(declaration.value, base)
    for function in module.functions:
        env = dict(base)
        for param in function.params:
            env[param.name] = card.STAR
        walk(function.body, env)
    walk(module.body, base)
    return sites


__all__ = ["analyze_module", "analyze_query"]
