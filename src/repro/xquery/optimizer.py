"""Small AST-level rewrites applied before evaluation.

These are classic, semantics-preserving simplifications; the engine applies
them in the convenience API and the benchmark harness so that the
interpreter spends its time on the recursion behaviour under study rather
than on avoidable axis work.

Currently implemented (the rewrite catalog, see DESIGN.md §11):

* ``e/descendant-or-self::node()/child::t``  →  ``e/descendant::t``
  (the standard ``//`` abbreviation fusion), including the variant where a
  predicate list sits on the final step.
* **constant folding** — arithmetic, unary minus and comparisons over
  literal operands, skipping anything that could raise (division by zero,
  mixed-type comparisons).
* **dead-branch elimination** — ``if (c) then a else b`` collapses to the
  live branch when the condition's effective boolean value is statically
  known (literals, ``()``, ``true()``/``false()``).
* **unused-let pruning** — ``let $v := e return b`` with ``$v`` not free in
  ``b`` collapses to ``b`` when ``e`` provably cannot raise (literals,
  ``()`` and sequences thereof; paths and calls are kept, they can error).
* **unused-function pruning** (:func:`optimize_module`) — declarations not
  reachable through the call graph from the query body, the variable
  initializers or another reachable function are dropped.

Every rewrite is verified item-identical across the interpreter, algebra
and SQL engines by randomized property tests
(``tests/test_optimizer_rewrites.py``), rewrites on versus off.
"""

from __future__ import annotations

import math
from dataclasses import fields, replace

from repro.xquery import ast


def optimize(expr: ast.Expr) -> ast.Expr:
    """Return an optimized copy of *expr* (the input is never mutated)."""
    rewritten = _rewrite_children(expr)
    rewritten = _fold_constants(rewritten)
    rewritten = _eliminate_dead_branch(rewritten)
    rewritten = _fuse_descendant_step(rewritten)
    return _prune_unused_let(rewritten)


def optimize_module(module: ast.Module) -> ast.Module:
    """Optimize every function body, variable initializer and the query body,
    then drop function declarations the call graph cannot reach."""
    functions = tuple(
        replace(function, body=optimize(function.body)) for function in module.functions
    )
    variables = tuple(
        replace(decl, value=optimize(decl.value)) if decl.value is not None else decl
        for decl in module.variables
    )
    body = optimize(module.body)
    functions = _prune_unused_functions(functions, variables, body)
    return ast.Module(functions=functions, variables=variables, body=body)


def _rewrite_children(expr: ast.Expr) -> ast.Expr:
    updates = {}
    for field_info in fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, field_info.name)
        new_value = _rewrite_value(value)
        if new_value is not value:
            updates[field_info.name] = new_value
    if not updates:
        return expr
    return replace(expr, **updates)  # type: ignore[type-var]


def _rewrite_value(value):
    if isinstance(value, ast.Expr):
        return optimize(value)
    if isinstance(value, tuple):
        new_items = tuple(_rewrite_value(item) for item in value)
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    return value


def _fuse_descendant_step(expr: ast.Expr) -> ast.Expr:
    """Fuse the two steps produced by the ``//`` abbreviation into one."""
    if not isinstance(expr, ast.PathExpr):
        return expr
    right = expr.right
    left = expr.left
    if (
        isinstance(right, ast.AxisStep)
        and right.axis == "child"
        and isinstance(left, ast.PathExpr)
        and isinstance(left.right, ast.AxisStep)
        and left.right.axis == "descendant-or-self"
        and left.right.node_test.kind == "node"
        and not left.right.predicates
    ):
        fused_step = ast.AxisStep("descendant", right.node_test, right.predicates)
        return ast.PathExpr(left.left, fused_step)
    return expr


# ---------------------------------------------------------------------------
# constant folding
# ---------------------------------------------------------------------------


def _numeric_literal(expr: ast.Expr) -> int | float | None:
    """The numeric value of a literal operand (bools are not numbers here)."""
    if isinstance(expr, ast.Literal) and isinstance(expr.value, (int, float)) \
            and not isinstance(expr.value, bool):
        return expr.value
    return None


def _fold_constants(expr: ast.Expr) -> ast.Expr:
    if isinstance(expr, ast.UnaryExpr):
        value = _numeric_literal(expr.operand)
        if value is not None:
            return ast.Literal(-value if expr.op == "-" else +value)
        return expr
    if isinstance(expr, ast.ArithmeticExpr):
        left = _numeric_literal(expr.left)
        right = _numeric_literal(expr.right)
        if left is None or right is None:
            return expr
        if expr.op == "+":
            return ast.Literal(left + right)
        if expr.op == "-":
            return ast.Literal(left - right)
        if expr.op == "*":
            return ast.Literal(left * right)
        # division family: only with a provably non-zero divisor, and only
        # matching the evaluator's semantics exactly
        if right == 0 or (isinstance(right, float) and math.isnan(right)):
            return expr
        if expr.op == "div":
            return ast.Literal(left / right)
        if expr.op == "idiv" and isinstance(left, int) and isinstance(right, int):
            quotient = abs(left) // abs(right)
            return ast.Literal(quotient if (left >= 0) == (right >= 0) else -quotient)
        if expr.op == "mod" and isinstance(left, int) and isinstance(right, int):
            remainder = abs(left) % abs(right)
            return ast.Literal(remainder if left >= 0 else -remainder)
        return expr
    if isinstance(expr, (ast.ValueComparison, ast.GeneralComparison)):
        return _fold_comparison(expr)
    return expr


_COMPARISON_OPS = {
    "=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">=",
    "eq": "==", "ne": "!=", "lt": "<", "le": "<=", "gt": ">", "ge": ">=",
}


def _fold_comparison(expr: ast.Expr) -> ast.Expr:
    op = _COMPARISON_OPS.get(expr.op)
    if op is None:
        return expr
    left = _numeric_literal(expr.left)
    right = _numeric_literal(expr.right)
    if left is None or right is None:
        # same-type string comparison folds too; anything else is left
        # alone (mixed-type comparisons raise at runtime)
        if not (isinstance(expr.left, ast.Literal) and isinstance(expr.right, ast.Literal)
                and isinstance(expr.left.value, str) and isinstance(expr.right.value, str)):
            return expr
        left, right = expr.left.value, expr.right.value
    result = {
        "==": left == right, "!=": left != right,
        "<": left < right, "<=": left <= right,
        ">": left > right, ">=": left >= right,
    }[op]
    return ast.Literal(result)


# ---------------------------------------------------------------------------
# dead-branch elimination
# ---------------------------------------------------------------------------


def _static_ebv(condition: ast.Expr) -> bool | None:
    """The effective boolean value of *condition* if statically known."""
    if isinstance(condition, ast.EmptySequence):
        return False
    if isinstance(condition, ast.Literal):
        value = condition.value
        if isinstance(value, bool):
            return value
        if isinstance(value, str):
            return bool(value)
        if isinstance(value, (int, float)):
            return bool(value) and not (isinstance(value, float) and math.isnan(value))
        return None
    if isinstance(condition, ast.FunctionCall) and not condition.args:
        name = condition.name[3:] if condition.name.startswith("fn:") else condition.name
        if name == "true":
            return True
        if name == "false":
            return False
    return None


def _eliminate_dead_branch(expr: ast.Expr) -> ast.Expr:
    if not isinstance(expr, ast.IfExpr):
        return expr
    verdict = _static_ebv(expr.condition)
    if verdict is None:
        return expr
    return expr.then_branch if verdict else expr.else_branch


# ---------------------------------------------------------------------------
# unused-let pruning
# ---------------------------------------------------------------------------


def _provably_error_free(expr: ast.Expr) -> bool:
    """Can evaluating *expr* never raise (and never construct nodes)?

    Deliberately tiny: literals, the empty sequence and sequences thereof.
    Variable references are excluded (an unbound one raises), as are paths
    (stepping from an atomic raises XPTY0019) and every function call.
    """
    if isinstance(expr, (ast.Literal, ast.EmptySequence)):
        return True
    if isinstance(expr, ast.SequenceExpr):
        return all(_provably_error_free(item) for item in expr.items)
    return False


def _prune_unused_let(expr: ast.Expr) -> ast.Expr:
    if not isinstance(expr, ast.LetExpr):
        return expr
    if expr.var in expr.body.free_variables():
        return expr
    if not _provably_error_free(expr.value):
        return expr
    return expr.body


# ---------------------------------------------------------------------------
# unused-function pruning
# ---------------------------------------------------------------------------


def _called_keys(expr: ast.Expr) -> set[tuple[str, int]]:
    keys: set[tuple[str, int]] = set()
    for node in expr.iter_subexpressions():
        if isinstance(node, ast.FunctionCall):
            keys.add((node.name, len(node.args)))
    return keys


def _prune_unused_functions(functions: tuple[ast.FunctionDecl, ...],
                            variables: tuple[ast.VariableDecl, ...],
                            body: ast.Expr) -> tuple[ast.FunctionDecl, ...]:
    if not functions:
        return functions
    declared = {(function.name, function.arity) for function in functions}
    worklist = _called_keys(body)
    for declaration in variables:
        if declaration.value is not None:
            worklist |= _called_keys(declaration.value)
    reachable: set[tuple[str, int]] = set()
    while worklist:
        key = worklist.pop()
        if key in reachable or key not in declared:
            continue
        reachable.add(key)
        for function in functions:
            if (function.name, function.arity) == key:
                worklist |= _called_keys(function.body)
    return tuple(f for f in functions if (f.name, f.arity) in reachable)
