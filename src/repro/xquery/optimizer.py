"""Small AST-level rewrites applied before evaluation.

These are classic, semantics-preserving simplifications; the engine applies
them in the convenience API and the benchmark harness so that the
interpreter spends its time on the recursion behaviour under study rather
than on avoidable axis work.

Currently implemented:

* ``e/descendant-or-self::node()/child::t``  →  ``e/descendant::t``
  (the standard ``//`` abbreviation fusion), including the variant where a
  predicate list sits on the final step.
"""

from __future__ import annotations

from dataclasses import fields, replace

from repro.xquery import ast


def optimize(expr: ast.Expr) -> ast.Expr:
    """Return an optimized copy of *expr* (the input is never mutated)."""
    rewritten = _rewrite_children(expr)
    return _fuse_descendant_step(rewritten)


def optimize_module(module: ast.Module) -> ast.Module:
    """Optimize every function body, variable initializer and the query body."""
    functions = tuple(
        replace(function, body=optimize(function.body)) for function in module.functions
    )
    variables = tuple(
        replace(decl, value=optimize(decl.value)) if decl.value is not None else decl
        for decl in module.variables
    )
    return ast.Module(functions=functions, variables=variables, body=optimize(module.body))


def _rewrite_children(expr: ast.Expr) -> ast.Expr:
    updates = {}
    for field_info in fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, field_info.name)
        new_value = _rewrite_value(value)
        if new_value is not value:
            updates[field_info.name] = new_value
    if not updates:
        return expr
    return replace(expr, **updates)  # type: ignore[type-var]


def _rewrite_value(value):
    if isinstance(value, ast.Expr):
        return optimize(value)
    if isinstance(value, tuple):
        new_items = tuple(_rewrite_value(item) for item in value)
        if all(new is old for new, old in zip(new_items, value)):
            return value
        return new_items
    return value


def _fuse_descendant_step(expr: ast.Expr) -> ast.Expr:
    """Fuse the two steps produced by the ``//`` abbreviation into one."""
    if not isinstance(expr, ast.PathExpr):
        return expr
    right = expr.right
    left = expr.left
    if (
        isinstance(right, ast.AxisStep)
        and right.axis == "child"
        and isinstance(left, ast.PathExpr)
        and isinstance(left.right, ast.AxisStep)
        and left.right.axis == "descendant-or-self"
        and left.right.node_test.kind == "node"
        and not left.right.predicates
    ):
        fused_step = ast.AxisStep("descendant", right.node_test, right.predicates)
        return ast.PathExpr(left.left, fused_step)
    return expr
