"""Token definitions for the XQuery lexer."""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum


class TokenKind(str, Enum):
    """Lexical token categories.

    Keywords are not distinguished from names at the lexical level; XQuery
    keywords are contextual and the parser decides what a name means where.
    """

    NAME = "name"            # NCName or QName (possibly a contextual keyword)
    INTEGER = "integer"
    DECIMAL = "decimal"
    DOUBLE = "double"
    STRING = "string"
    SYMBOL = "symbol"
    EOF = "eof"


@dataclass(frozen=True)
class Token:
    """A single token with its source span (for error messages)."""

    kind: TokenKind
    value: str
    start: int
    end: int

    def is_symbol(self, *symbols: str) -> bool:
        return self.kind == TokenKind.SYMBOL and self.value in symbols

    def is_name(self, *names: str) -> bool:
        return self.kind == TokenKind.NAME and (not names or self.value in names)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Token({self.kind.value}, {self.value!r})"


#: Multi-character symbols, longest first so the lexer can greedily match.
MULTI_CHAR_SYMBOLS = [
    ":=", "<<", ">>", "<=", ">=", "!=", "//", "..", "::",
]

#: Single-character symbols.
SINGLE_CHAR_SYMBOLS = set("()[]{},;$@/|+-*=<>.?")
