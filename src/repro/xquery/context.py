"""Static and dynamic evaluation contexts.

The split follows the XQuery processing model: the *static context* holds
what is known after parsing (declared functions, options), the *dynamic
context* holds what changes during evaluation (variable bindings, the focus,
available documents) plus engine options and statistics hooks.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Callable
from typing import Any

from repro.errors import UndefinedVariableError, XQueryDynamicError
from repro.xquery.ast import FunctionDecl


@dataclass
class EvaluationOptions:
    """Engine knobs.

    Attributes
    ----------
    ifp_algorithm:
        Global policy for evaluating ``with … seeded by … recurse``:
        ``"auto"`` (use Delta iff the distributivity analysis approves),
        ``"naive"`` or ``"delta"`` (force an algorithm).  A per-expression
        ``using`` clause overrides this.
    distributivity_checker:
        Which analysis the ``auto`` policy consults: ``"syntactic"``
        (Figure 5 rules), ``"algebraic"`` (union push-up over the compiled
        plan, Section 4) or ``"never"`` (always fall back to Naive).
    max_ifp_iterations:
        Safety bound standing in for "the IFP is undefined" — exceeded only
        when the recursion body keeps generating fresh nodes
        (Definition 2.1's caveat about node constructors).
    max_recursion_depth:
        Bound on user-defined function recursion depth.
    use_index:
        Answer axis steps from the per-document structural index
        (:mod:`repro.xdm.index`) instead of walking node objects.  On by
        default; the CLI's ``--no-index`` switches it off for A/B runs.
    use_pushdown:
        Route recognized predicate shapes (``[@a = "v"]``, ``[name = $v]``,
        existence and positional predicates) through the batch predicate
        kernels of :mod:`repro.xquery.pushdown` instead of the per-item
        focus loop.  On by default; the CLI's ``--no-pushdown`` switches it
        off for A/B runs.  With ``use_index`` off the kernels still apply,
        probing nodes directly instead of the value inverted indexes.
    trace:
        The live :class:`~repro.observability.tracing.TraceContext` of a
        traced evaluation (``None``/``False`` otherwise).  The session
        installs it; engines and fixpoint drivers attach phase and
        per-round spans to it.  Sites must normalize through
        :func:`repro.observability.tracing.active_trace`, since
        :meth:`~repro.settings.EvalSettings.to_options` seeds the field
        with the settings *boolean* before the session swaps the live
        context in.
    limits:
        The live :class:`~repro.limits.Governor` of a governed evaluation
        (``None`` or a frozen :class:`~repro.limits.ResourceLimits`
        otherwise — same swap pattern as ``trace``).  Engines and fixpoint
        drivers normalize through :func:`repro.limits.active_governor` and
        call its cooperative checkpoints.
    """

    ifp_algorithm: str = "auto"
    distributivity_checker: str = "syntactic"
    max_ifp_iterations: int = 100_000
    max_recursion_depth: int = 500
    collect_statistics: bool = True
    use_index: bool = True
    use_pushdown: bool = True
    trace: Any = None
    limits: Any = None


@dataclass
class StaticContext:
    """What is known about a query before evaluation starts."""

    functions: dict[tuple[str, int], FunctionDecl] = field(default_factory=dict)
    options: EvaluationOptions = field(default_factory=EvaluationOptions)

    def lookup_function(self, name: str, arity: int) -> FunctionDecl | None:
        return self.functions.get((name, arity))


class DocumentResolver:
    """Maps URIs passed to ``fn:doc`` onto XDM document nodes.

    Documents can be registered eagerly (:meth:`register`) or produced on
    demand by a loader callable (e.g. one that reads from disk or from a
    data generator).  Results are cached so that repeated ``doc("u")`` calls
    return the *same* node identities, as XQuery requires.
    """

    def __init__(self, loader: Callable[[str], Any] | None = None):
        self._documents: dict[str, Any] = {}
        self._loader = loader

    def register(self, uri: str, document: Any) -> None:
        """Register *document* under *uri*."""
        self._documents[uri] = document

    def resolve(self, uri: str) -> Any:
        if uri in self._documents:
            return self._documents[uri]
        if self._loader is not None:
            document = self._loader(uri)
            if document is not None:
                self._documents[uri] = document
                return document
        raise XQueryDynamicError(f"document '{uri}' is not available", code="FODC0002")

    def known_uris(self) -> list[str]:
        return sorted(self._documents)


@dataclass
class Focus:
    """The dynamic focus: context item, position and size."""

    item: Any = None
    position: int = 0
    size: int = 0

    @property
    def defined(self) -> bool:
        return self.item is not None


class DynamicContext:
    """Variable bindings, focus and evaluation services.

    Contexts are persistent: ``bind``/``with_focus`` return new contexts that
    share unmodified state with their parent, so the evaluator can freely
    thread them through recursive calls.
    """

    __slots__ = ("variables", "focus", "static", "documents", "statistics", "depth")

    def __init__(self, static: StaticContext | None = None,
                 documents: DocumentResolver | None = None,
                 variables: dict[str, list] | None = None,
                 focus: Focus | None = None,
                 statistics: Any = None,
                 depth: int = 0):
        self.static = static or StaticContext()
        self.documents = documents or DocumentResolver()
        self.variables = variables or {}
        self.focus = focus or Focus()
        self.statistics = statistics
        self.depth = depth

    # -- derivation ----------------------------------------------------------

    def bind(self, name: str, value: list) -> "DynamicContext":
        """Return a new context with ``$name`` bound to *value*."""
        variables = dict(self.variables)
        variables[name] = value
        return self._derive(variables=variables)

    def bind_many(self, bindings: dict[str, list]) -> "DynamicContext":
        variables = dict(self.variables)
        variables.update(bindings)
        return self._derive(variables=variables)

    def with_focus(self, item: Any, position: int, size: int) -> "DynamicContext":
        """Return a new context with the given focus."""
        return self._derive(focus=Focus(item, position, size))

    def without_focus(self) -> "DynamicContext":
        return self._derive(focus=Focus())

    def enter_function(self) -> "DynamicContext":
        """Track user-defined function recursion depth."""
        if self.depth + 1 > self.static.options.max_recursion_depth:
            raise XQueryDynamicError(
                "user-defined function recursion too deep", code="REPR0002"
            )
        return self._derive(depth=self.depth + 1)

    def _derive(self, variables: dict[str, list] | None = None,
                focus: Focus | None = None,
                depth: int | None = None) -> "DynamicContext":
        return DynamicContext(
            static=self.static,
            documents=self.documents,
            variables=self.variables if variables is None else variables,
            focus=self.focus if focus is None else focus,
            statistics=self.statistics,
            depth=self.depth if depth is None else depth,
        )

    # -- lookups ---------------------------------------------------------------

    def variable(self, name: str) -> list:
        try:
            return self.variables[name]
        except KeyError:
            # The static analyzer catches this before evaluation (with a
            # source position); this is the engine-side backstop for raw
            # Evaluator use and analyze=False runs.
            raise UndefinedVariableError(name) from None

    def context_item(self) -> Any:
        if not self.focus.defined:
            raise XQueryDynamicError("the context item is undefined", code="XPDY0002")
        return self.focus.item

    @property
    def options(self) -> EvaluationOptions:
        return self.static.options
