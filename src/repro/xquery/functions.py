"""Built-in function library.

Each built-in is registered as a :class:`Builtin` with an arity range and an
implementation that receives the dynamic context and the already-evaluated
argument sequences.  The library covers the ``fn:`` functions used by the
paper and its benchmark queries plus the everyday core (string, numeric,
sequence and node functions).  Functions may be called with or without the
``fn:`` prefix; the ``xs:`` constructor functions for the basic atomic types
are included as well.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from collections.abc import Callable
from typing import Any

from repro.errors import XQueryDynamicError, XQueryTypeError
from repro.xdm.comparison import atomic_equal, deep_equal
from repro.xdm.items import (
    UntypedAtomic,
    is_node,
    is_numeric,
    string_value_of_item,
    xs_boolean,
    xs_double,
    xs_integer,
    xs_string,
)
from repro.xdm.node import ElementNode, Node
from repro.xdm.sequence import atomize, ddo, effective_boolean_value

Sequence = list  # an XDM sequence is a Python list of items


@dataclass(frozen=True)
class Builtin:
    """A built-in function: its arity range and implementation."""

    name: str
    min_arity: int
    max_arity: int
    implementation: Callable[..., Sequence]

    def accepts_arity(self, arity: int) -> bool:
        return self.min_arity <= arity <= self.max_arity


_REGISTRY: dict[str, Builtin] = {}


def register(name: str, min_arity: int, max_arity: int | None = None):
    """Decorator registering a built-in under *name* (and ``fn:name``)."""

    def decorator(func: Callable[..., Sequence]) -> Callable[..., Sequence]:
        builtin = Builtin(name, min_arity, max_arity if max_arity is not None else min_arity, func)
        _REGISTRY[name] = builtin
        return func

    return decorator


def lookup_builtin(name: str, arity: int) -> Builtin | None:
    """Find a built-in by (possibly prefixed) name and arity."""
    local = name
    if ":" in name:
        prefix, local = name.split(":", 1)
        if prefix not in ("fn", "xs", "fs"):
            return None
        if prefix in ("xs", "fs"):
            local = name  # xs:/fs: functions are registered with their prefix
    builtin = _REGISTRY.get(local)
    if builtin is not None and builtin.accepts_arity(arity):
        return builtin
    return None


def builtin_arity_range(name: str) -> tuple[int, int] | None:
    """The (min, max) arity a built-in *name* accepts, or ``None`` if unknown.

    Same prefix rules as :func:`lookup_builtin`; used by the static scope
    checker to distinguish a wrong-arity call from an unknown function.
    """
    local = name
    if ":" in name:
        prefix, local = name.split(":", 1)
        if prefix not in ("fn", "xs", "fs"):
            return None
        if prefix in ("xs", "fs"):
            local = name
    builtin = _REGISTRY.get(local)
    if builtin is None:
        return None
    return builtin.min_arity, builtin.max_arity


def builtin_names() -> list[str]:
    """All registered built-in names (for documentation and tests)."""
    return sorted(_REGISTRY)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _single_string(sequence: Sequence, default: str = "") -> str:
    if not sequence:
        return default
    if len(sequence) > 1:
        raise XQueryTypeError("expected at most one item", code="XPTY0004")
    return string_value_of_item(sequence[0])


def _single_node(sequence: Sequence, function: str) -> Node:
    if len(sequence) != 1 or not is_node(sequence[0]):
        raise XQueryTypeError(f"{function} expects exactly one node", code="XPTY0004")
    return sequence[0]


def _optional_numeric(sequence: Sequence) -> float | None:
    if not sequence:
        return None
    if len(sequence) > 1:
        raise XQueryTypeError("expected at most one numeric item", code="XPTY0004")
    value = sequence[0]
    if is_node(value):
        value = value.typed_value()
    if isinstance(value, (UntypedAtomic, str)):
        return xs_double(value)
    if is_numeric(value):
        return value
    raise XQueryTypeError(f"expected a number, got {type(value).__name__}")


def _numeric_values(sequence: Sequence, function: str) -> list[float]:
    values = []
    for item in atomize(sequence):
        if isinstance(item, (UntypedAtomic, str)):
            values.append(xs_double(item))
        elif is_numeric(item):
            values.append(item)
        else:
            raise XQueryTypeError(f"{function} expects numeric values")
    return values


def _context_node(ctx) -> Node:
    item = ctx.context_item()
    if not is_node(item):
        raise XQueryTypeError("the context item is not a node", code="XPTY0004")
    return item


# ---------------------------------------------------------------------------
# documents and node identity
# ---------------------------------------------------------------------------


@register("doc", 1)
def fn_doc(ctx, uri: Sequence) -> Sequence:
    """``fn:doc($uri)`` — resolve a document through the context's resolver."""
    if not uri:
        return []
    return [ctx.documents.resolve(_single_string(uri))]


@register("doc-available", 1)
def fn_doc_available(ctx, uri: Sequence) -> Sequence:
    if not uri:
        return [False]
    try:
        ctx.documents.resolve(_single_string(uri))
        return [True]
    except XQueryDynamicError:
        return [False]


@register("root", 0, 1)
def fn_root(ctx, node: Sequence | None = None) -> Sequence:
    target = _context_node(ctx) if node is None else (_single_node(node, "fn:root") if node else None)
    if target is None:
        return []
    return [target.root()]


@register("id", 1, 2)
def fn_id(ctx, values: Sequence, node: Sequence | None = None) -> Sequence:
    """``fn:id($values [, $node])`` — elements with matching ID attributes.

    The candidate ID values are the space-tokenized string values of
    ``$values``; the search happens in the document containing ``$node``
    (default: the context node).  This is the lookup driving the curriculum
    queries (Example 1.1 / Query Q1).
    """
    if node is not None and node:
        anchor = _single_node(node, "fn:id")
    else:
        anchor = _context_node(ctx)
    doc = anchor.document()
    if doc is None:
        return []
    tokens: list[str] = []
    for item in values:
        tokens.extend(string_value_of_item(item).split())
    found: list[Node] = []
    for token in tokens:
        element = doc.lookup_id(token)
        if element is not None:
            found.append(element)
    return ddo(found)


@register("idref", 1, 2)
def fn_idref(ctx, values: Sequence, node: Sequence | None = None) -> Sequence:
    """Reverse ID lookup: elements/attributes that refer to the given IDs."""
    if node is not None and node:
        anchor = _single_node(node, "fn:idref")
    else:
        anchor = _context_node(ctx)
    doc = anchor.document()
    if doc is None:
        return []
    wanted = set()
    for item in values:
        wanted.update(string_value_of_item(item).split())
    result: list[Node] = []
    for candidate in doc.iter_tree():
        if isinstance(candidate, ElementNode):
            for attr in candidate.attributes:
                if not attr.is_id and any(token in wanted for token in attr.value.split()):
                    result.append(attr)
    return ddo(result)


# ---------------------------------------------------------------------------
# focus
# ---------------------------------------------------------------------------


@register("position", 0)
def fn_position(ctx) -> Sequence:
    if not ctx.focus.defined:
        raise XQueryDynamicError("fn:position() requires a focus", code="XPDY0002")
    return [ctx.focus.position]


@register("last", 0)
def fn_last(ctx) -> Sequence:
    if not ctx.focus.defined:
        raise XQueryDynamicError("fn:last() requires a focus", code="XPDY0002")
    return [ctx.focus.size]


# ---------------------------------------------------------------------------
# booleans and cardinality
# ---------------------------------------------------------------------------


@register("true", 0)
def fn_true(ctx) -> Sequence:
    return [True]


@register("false", 0)
def fn_false(ctx) -> Sequence:
    return [False]


@register("boolean", 1)
def fn_boolean(ctx, sequence: Sequence) -> Sequence:
    return [effective_boolean_value(sequence)]


@register("not", 1)
def fn_not(ctx, sequence: Sequence) -> Sequence:
    return [not effective_boolean_value(sequence)]


@register("count", 1)
def fn_count(ctx, sequence: Sequence) -> Sequence:
    return [len(sequence)]


@register("empty", 1)
def fn_empty(ctx, sequence: Sequence) -> Sequence:
    return [len(sequence) == 0]


@register("exists", 1)
def fn_exists(ctx, sequence: Sequence) -> Sequence:
    return [len(sequence) > 0]


@register("zero-or-one", 1)
def fn_zero_or_one(ctx, sequence: Sequence) -> Sequence:
    if len(sequence) > 1:
        raise XQueryDynamicError("fn:zero-or-one called with more than one item", code="FORG0003")
    return list(sequence)


@register("one-or-more", 1)
def fn_one_or_more(ctx, sequence: Sequence) -> Sequence:
    if not sequence:
        raise XQueryDynamicError("fn:one-or-more called with an empty sequence", code="FORG0004")
    return list(sequence)


@register("exactly-one", 1)
def fn_exactly_one(ctx, sequence: Sequence) -> Sequence:
    if len(sequence) != 1:
        raise XQueryDynamicError("fn:exactly-one requires exactly one item", code="FORG0005")
    return list(sequence)


# ---------------------------------------------------------------------------
# atomization, strings
# ---------------------------------------------------------------------------


@register("data", 1)
def fn_data(ctx, sequence: Sequence) -> Sequence:
    return atomize(sequence)


@register("string", 0, 1)
def fn_string(ctx, sequence: Sequence | None = None) -> Sequence:
    if sequence is None:
        return [string_value_of_item(ctx.context_item())]
    if not sequence:
        return [""]
    return [_single_string(sequence)]


@register("string-length", 0, 1)
def fn_string_length(ctx, sequence: Sequence | None = None) -> Sequence:
    if sequence is None:
        return [len(string_value_of_item(ctx.context_item()))]
    return [len(_single_string(sequence))]


@register("normalize-space", 0, 1)
def fn_normalize_space(ctx, sequence: Sequence | None = None) -> Sequence:
    value = string_value_of_item(ctx.context_item()) if sequence is None else _single_string(sequence)
    return [" ".join(value.split())]


@register("concat", 2, 64)
def fn_concat(ctx, *args: Sequence) -> Sequence:
    return ["".join(_single_string(arg) for arg in args)]


@register("string-join", 1, 2)
def fn_string_join(ctx, sequence: Sequence, separator: Sequence | None = None) -> Sequence:
    sep = _single_string(separator) if separator is not None else ""
    return [sep.join(string_value_of_item(item) for item in sequence)]


@register("contains", 2)
def fn_contains(ctx, haystack: Sequence, needle: Sequence) -> Sequence:
    return [_single_string(needle) in _single_string(haystack)]


@register("starts-with", 2)
def fn_starts_with(ctx, haystack: Sequence, needle: Sequence) -> Sequence:
    return [_single_string(haystack).startswith(_single_string(needle))]


@register("ends-with", 2)
def fn_ends_with(ctx, haystack: Sequence, needle: Sequence) -> Sequence:
    return [_single_string(haystack).endswith(_single_string(needle))]


@register("substring", 2, 3)
def fn_substring(ctx, source: Sequence, start: Sequence, length: Sequence | None = None) -> Sequence:
    text = _single_string(source)
    start_value = _optional_numeric(start)
    if start_value is None:
        return [""]
    begin = int(round(start_value)) - 1
    if length is not None:
        length_value = _optional_numeric(length) or 0
        end = begin + int(round(length_value))
        begin = max(begin, 0)
        return [text[begin:max(end, begin)]]
    return [text[max(begin, 0):]]


@register("substring-before", 2)
def fn_substring_before(ctx, source: Sequence, needle: Sequence) -> Sequence:
    text, sep = _single_string(source), _single_string(needle)
    index = text.find(sep) if sep else -1
    return [text[:index] if index >= 0 else ""]


@register("substring-after", 2)
def fn_substring_after(ctx, source: Sequence, needle: Sequence) -> Sequence:
    text, sep = _single_string(source), _single_string(needle)
    index = text.find(sep) if sep else -1
    return [text[index + len(sep):] if index >= 0 else ""]


@register("upper-case", 1)
def fn_upper_case(ctx, sequence: Sequence) -> Sequence:
    return [_single_string(sequence).upper()]


@register("lower-case", 1)
def fn_lower_case(ctx, sequence: Sequence) -> Sequence:
    return [_single_string(sequence).lower()]


@register("translate", 3)
def fn_translate(ctx, source: Sequence, from_chars: Sequence, to_chars: Sequence) -> Sequence:
    text = _single_string(source)
    source_chars = _single_string(from_chars)
    target_chars = _single_string(to_chars)
    table = {}
    for index, char in enumerate(source_chars):
        table[ord(char)] = target_chars[index] if index < len(target_chars) else None
    return [text.translate(table)]


@register("tokenize", 2)
def fn_tokenize(ctx, source: Sequence, separator: Sequence) -> Sequence:
    text = _single_string(source)
    sep = _single_string(separator)
    if not text:
        return []
    return list(text.split(sep))


# ---------------------------------------------------------------------------
# numbers and aggregates
# ---------------------------------------------------------------------------


@register("number", 0, 1)
def fn_number(ctx, sequence: Sequence | None = None) -> Sequence:
    items = [ctx.context_item()] if sequence is None else list(sequence)
    if not items:
        return [float("nan")]
    try:
        value = _optional_numeric(items)
    except (XQueryTypeError, XQueryDynamicError):
        return [float("nan")]
    return [float(value) if value is not None else float("nan")]


@register("abs", 1)
def fn_abs(ctx, sequence: Sequence) -> Sequence:
    value = _optional_numeric(sequence)
    return [] if value is None else [abs(value)]


@register("floor", 1)
def fn_floor(ctx, sequence: Sequence) -> Sequence:
    value = _optional_numeric(sequence)
    return [] if value is None else [math.floor(value)]


@register("ceiling", 1)
def fn_ceiling(ctx, sequence: Sequence) -> Sequence:
    value = _optional_numeric(sequence)
    return [] if value is None else [math.ceil(value)]


@register("round", 1)
def fn_round(ctx, sequence: Sequence) -> Sequence:
    value = _optional_numeric(sequence)
    return [] if value is None else [math.floor(value + 0.5)]


@register("sum", 1, 2)
def fn_sum(ctx, sequence: Sequence, zero: Sequence | None = None) -> Sequence:
    values = _numeric_values(sequence, "fn:sum")
    if not values:
        if zero is not None:
            return list(zero)
        return [0]
    total = sum(values)
    return [int(total) if all(isinstance(v, int) for v in values) else total]


@register("avg", 1)
def fn_avg(ctx, sequence: Sequence) -> Sequence:
    values = _numeric_values(sequence, "fn:avg")
    if not values:
        return []
    return [sum(values) / len(values)]


@register("max", 1)
def fn_max(ctx, sequence: Sequence) -> Sequence:
    values = _numeric_values(sequence, "fn:max")
    if not values:
        return []
    return [max(values)]


@register("min", 1)
def fn_min(ctx, sequence: Sequence) -> Sequence:
    values = _numeric_values(sequence, "fn:min")
    if not values:
        return []
    return [min(values)]


# ---------------------------------------------------------------------------
# sequences
# ---------------------------------------------------------------------------


@register("distinct-values", 1)
def fn_distinct_values(ctx, sequence: Sequence) -> Sequence:
    result: list[Any] = []
    for value in atomize(sequence):
        if not any(atomic_equal(value, seen) for seen in result):
            result.append(value)
    return result


@register("reverse", 1)
def fn_reverse(ctx, sequence: Sequence) -> Sequence:
    return list(reversed(sequence))


@register("subsequence", 2, 3)
def fn_subsequence(ctx, sequence: Sequence, start: Sequence, length: Sequence | None = None) -> Sequence:
    start_value = _optional_numeric(start)
    if start_value is None:
        return []
    begin = int(round(start_value))
    if length is None:
        return list(sequence[max(begin - 1, 0):])
    length_value = int(round(_optional_numeric(length) or 0))
    end = begin + length_value - 1
    begin = max(begin, 1)
    return list(sequence[begin - 1:max(end, begin - 1)])


@register("insert-before", 3)
def fn_insert_before(ctx, sequence: Sequence, position: Sequence, inserts: Sequence) -> Sequence:
    index = max(int(_optional_numeric(position) or 1) - 1, 0)
    items = list(sequence)
    return items[:index] + list(inserts) + items[index:]


@register("remove", 2)
def fn_remove(ctx, sequence: Sequence, position: Sequence) -> Sequence:
    index = int(_optional_numeric(position) or 0)
    return [item for i, item in enumerate(sequence, start=1) if i != index]


@register("index-of", 2)
def fn_index_of(ctx, sequence: Sequence, target: Sequence) -> Sequence:
    if len(target) != 1:
        raise XQueryTypeError("fn:index-of expects a single search item")
    needle = atomize(target)[0]
    result = []
    for position, item in enumerate(atomize(sequence), start=1):
        if atomic_equal(item, needle):
            result.append(position)
    return result


@register("deep-equal", 2)
def fn_deep_equal(ctx, left: Sequence, right: Sequence) -> Sequence:
    return [deep_equal(left, right)]


@register("unordered", 1)
def fn_unordered(ctx, sequence: Sequence) -> Sequence:
    return list(sequence)


@register("fs:ddo", 1)
def fs_ddo(ctx, sequence: Sequence) -> Sequence:
    """``fs:distinct-doc-order`` exposed as a callable (engine extension)."""
    return ddo(sequence)


# ---------------------------------------------------------------------------
# node names
# ---------------------------------------------------------------------------


@register("name", 0, 1)
def fn_name(ctx, node: Sequence | None = None) -> Sequence:
    target = _context_node(ctx) if node is None else (node[0] if node else None)
    if target is None:
        return [""]
    if not is_node(target):
        raise XQueryTypeError("fn:name expects a node")
    return [target.name or ""]


@register("local-name", 0, 1)
def fn_local_name(ctx, node: Sequence | None = None) -> Sequence:
    names = fn_name(ctx, node)
    name = names[0]
    return [name.split(":")[-1] if name else ""]


@register("node-name", 1)
def fn_node_name(ctx, node: Sequence) -> Sequence:
    if not node:
        return []
    target = _single_node(node, "fn:node-name")
    return [target.name] if target.name else []


# ---------------------------------------------------------------------------
# casts, errors, debugging
# ---------------------------------------------------------------------------


@register("xs:string", 1)
def xs_string_constructor(ctx, sequence: Sequence) -> Sequence:
    if not sequence:
        return []
    return [xs_string(atomize(sequence)[0])]


@register("xs:integer", 1)
def xs_integer_constructor(ctx, sequence: Sequence) -> Sequence:
    if not sequence:
        return []
    return [xs_integer(atomize(sequence)[0])]


@register("xs:double", 1)
def xs_double_constructor(ctx, sequence: Sequence) -> Sequence:
    if not sequence:
        return []
    return [xs_double(atomize(sequence)[0])]


@register("xs:boolean", 1)
def xs_boolean_constructor(ctx, sequence: Sequence) -> Sequence:
    if not sequence:
        return []
    return [xs_boolean(atomize(sequence)[0])]


@register("error", 0, 2)
def fn_error(ctx, code: Sequence | None = None, description: Sequence | None = None) -> Sequence:
    message = _single_string(description) if description else "error raised by fn:error"
    error_code = _single_string(code) if code else "FOER0000"
    raise XQueryDynamicError(message, code=error_code)


@register("trace", 2)
def fn_trace(ctx, sequence: Sequence, label: Sequence) -> Sequence:
    # The trace output is intentionally not printed during benchmarks; it is
    # recorded on the statistics object when one is installed.
    if ctx.statistics is not None and hasattr(ctx.statistics, "trace"):
        ctx.statistics.trace(_single_string(label), list(sequence))
    return list(sequence)


@register("string-to-codepoints", 1)
def fn_string_to_codepoints(ctx, sequence: Sequence) -> Sequence:
    return [ord(char) for char in _single_string(sequence)]


@register("codepoints-to-string", 1)
def fn_codepoints_to_string(ctx, sequence: Sequence) -> Sequence:
    return ["".join(chr(xs_integer(value)) for value in atomize(sequence))]
