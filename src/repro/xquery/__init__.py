"""XQuery front end and runtime.

The supported language is a LiXQuery-style subset of XQuery 1.0 — the
fragment the paper's Figure 5 inference rules are defined over — extended
with the paper's new syntactic form::

    with $x seeded by e_seed recurse e_rec [using naive|delta|auto]

The optional ``using`` clause is an engine extension that lets benchmarks
pin the evaluation algorithm; without it the processor picks Delta whenever
its distributivity analysis allows (Section 3/4 of the paper), falling back
to Naive otherwise.

Modules
-------
``tokens``/``lexer``
    Streaming tokenizer (needed because direct element constructors switch
    the lexer into character mode).
``ast``
    Expression AST with free-variable computation and child traversal.
``parser``
    Recursive-descent parser producing :class:`~repro.xquery.ast.Module`.
``context``
    Static and dynamic evaluation contexts.
``functions``
    The built-in function library.
``evaluator``
    The tree-walking interpreter.
"""

from repro.xquery.parser import parse_query, parse_expression
from repro.xquery.evaluator import Evaluator
from repro.xquery.context import DynamicContext, StaticContext, EvaluationOptions

__all__ = [
    "parse_query",
    "parse_expression",
    "Evaluator",
    "DynamicContext",
    "StaticContext",
    "EvaluationOptions",
]
