"""Abstract syntax tree for the XQuery subset.

Every expression node derives from :class:`Expr` and implements
:meth:`Expr.children`, which returns ``(child, bound_variables)`` pairs: the
set names the variables this node newly binds *for that child*.  Free
variable computation (``fv(e)`` in the paper) and generic tree walks are
derived from this single method, so adding a new expression form cannot
silently break the analyses in :mod:`repro.distributivity`.

The one node that is not plain XQuery 1.0 is :class:`WithExpr` — the paper's
``with $x seeded by e_seed recurse e_rec`` inflationary fixed point form
(Definition 2.1), optionally extended with ``using naive|delta|auto`` to pin
the evaluation algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterator, Sequence


# ---------------------------------------------------------------------------
# sequence types (used by typeswitch, function signatures)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SequenceType:
    """A minimal sequence type: an item type plus an occurrence indicator.

    ``item_type`` is one of ``"item"``, ``"node"``, ``"element"``,
    ``"attribute"``, ``"text"``, ``"document-node"``, ``"comment"``,
    ``"processing-instruction"``, ``"empty-sequence"`` or an atomic type name
    such as ``"xs:integer"``.  ``name`` optionally restricts element or
    attribute tests to a specific node name.  ``occurrence`` is one of
    ``""`` (exactly one), ``"?"``, ``"*"`` or ``"+"``.
    """

    item_type: str
    occurrence: str = ""
    name: str | None = None

    def __str__(self) -> str:
        if self.item_type == "empty-sequence":
            return "empty-sequence()"
        if self.item_type in _KIND_TEST_TYPES:
            inner = self.name or ""
            return f"{self.item_type}({inner}){self.occurrence}"
        return f"{self.item_type}{self.occurrence}"


_KIND_TEST_TYPES = {
    "node", "element", "attribute", "text", "comment",
    "processing-instruction", "document-node",
}


# ---------------------------------------------------------------------------
# expression base class
# ---------------------------------------------------------------------------


class Expr:
    """Base class for all expression AST nodes."""

    __slots__ = ()

    def children(self) -> list[tuple["Expr", frozenset[str]]]:
        """Child expressions paired with the variables bound for each child."""
        return []

    def child_expressions(self) -> list["Expr"]:
        """Just the child expressions (no binding information)."""
        return [child for child, _bound in self.children()]

    def free_variables(self) -> frozenset[str]:
        """The free variables ``fv(e)`` of this expression."""
        names: set[str] = set()
        if isinstance(self, VarRef):
            names.add(self.name)
        for child, bound in self.children():
            names |= child.free_variables() - bound
        return frozenset(names)

    def iter_subexpressions(self) -> Iterator["Expr"]:
        """Pre-order iteration over this expression and all subexpressions."""
        yield self
        for child in self.child_expressions():
            yield from child.iter_subexpressions()

    def contains_node_constructor(self) -> bool:
        """True if any subexpression constructs new nodes.

        Node constructors create fresh node identities on every evaluation;
        their presence makes an IFP potentially undefined (Definition 2.1)
        and always breaks distributivity (Section 3.2).
        """
        return any(
            isinstance(sub, (DirectElementConstructor, ComputedConstructor))
            for sub in self.iter_subexpressions()
        )


# ---------------------------------------------------------------------------
# literals, variables, context item
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Expr):
    """A string or numeric literal."""

    value: str | int | float


@dataclass(frozen=True)
class EmptySequence(Expr):
    """The literal empty sequence ``()``."""


@dataclass(frozen=True)
class VarRef(Expr):
    """A variable reference ``$name``."""

    name: str


@dataclass(frozen=True)
class ContextItem(Expr):
    """The context item expression ``.``."""


# ---------------------------------------------------------------------------
# sequence construction and set operations
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SequenceExpr(Expr):
    """The comma operator: ``e1, e2, ..., en``."""

    items: tuple[Expr, ...]

    def children(self):
        return [(item, frozenset()) for item in self.items]


@dataclass(frozen=True)
class RangeExpr(Expr):
    """The integer range operator ``e1 to e2``."""

    start: Expr
    end: Expr

    def children(self):
        return [(self.start, frozenset()), (self.end, frozenset())]


@dataclass(frozen=True)
class UnionExpr(Expr):
    """Node-set union: ``e1 union e2`` (also spelled ``e1 | e2``)."""

    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class IntersectExpr(Expr):
    """Node-set intersection: ``e1 intersect e2``."""

    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class ExceptExpr(Expr):
    """Node-set difference: ``e1 except e2``."""

    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


# ---------------------------------------------------------------------------
# logic, comparisons, arithmetic
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class OrExpr(Expr):
    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class AndExpr(Expr):
    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class GeneralComparison(Expr):
    """Existentially quantified comparison: ``=``, ``!=``, ``<``, ... ."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class ValueComparison(Expr):
    """Singleton value comparison: ``eq``, ``ne``, ``lt``, ... ."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class NodeComparison(Expr):
    """Node identity/order comparison: ``is``, ``<<``, ``>>``."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class ArithmeticExpr(Expr):
    """Binary arithmetic: ``+ - * div idiv mod``."""

    op: str
    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class UnaryExpr(Expr):
    """Unary ``+``/``-``."""

    op: str
    operand: Expr

    def children(self):
        return [(self.operand, frozenset())]


# ---------------------------------------------------------------------------
# FLWOR (as nested for/let), conditionals, quantifiers, typeswitch
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class ForExpr(Expr):
    """A single-variable ``for`` iteration.

    Multi-variable FLWORs are desugared by the parser into nested
    :class:`ForExpr`/:class:`LetExpr` nodes, and ``where`` clauses into
    conditionals, so the analyses only ever deal with the binary forms the
    paper's Figure 5 rules (FOR1/FOR2, LET1/LET2) are stated for.
    """

    var: str
    sequence: Expr
    body: Expr
    position_var: str | None = None

    def children(self):
        bound = {self.var}
        if self.position_var:
            bound.add(self.position_var)
        return [(self.sequence, frozenset()), (self.body, frozenset(bound))]


@dataclass(frozen=True)
class LetExpr(Expr):
    """A single-variable ``let`` binding."""

    var: str
    value: Expr
    body: Expr

    def children(self):
        return [(self.value, frozenset()), (self.body, frozenset({self.var}))]


@dataclass(frozen=True)
class IfExpr(Expr):
    """``if (cond) then e1 else e2``."""

    condition: Expr
    then_branch: Expr
    else_branch: Expr

    def children(self):
        return [
            (self.condition, frozenset()),
            (self.then_branch, frozenset()),
            (self.else_branch, frozenset()),
        ]


@dataclass(frozen=True)
class QuantifiedExpr(Expr):
    """``some``/``every`` ``$v in e satisfies e``."""

    quantifier: str  # "some" | "every"
    var: str
    sequence: Expr
    satisfies: Expr

    def children(self):
        return [
            (self.sequence, frozenset()),
            (self.satisfies, frozenset({self.var})),
        ]


@dataclass(frozen=True)
class TypeswitchCase(Expr):
    """One ``case`` branch of a typeswitch."""

    sequence_type: SequenceType
    body: Expr
    var: str | None = None

    def children(self):
        bound = frozenset({self.var}) if self.var else frozenset()
        return [(self.body, bound)]


@dataclass(frozen=True)
class TypeswitchExpr(Expr):
    """``typeswitch (e) case ... default return ...``."""

    operand: Expr
    cases: tuple[TypeswitchCase, ...]
    default: Expr
    default_var: str | None = None

    def children(self):
        result: list[tuple[Expr, frozenset[str]]] = [(self.operand, frozenset())]
        for case in self.cases:
            result.append((case, frozenset()))
        default_bound = frozenset({self.default_var}) if self.default_var else frozenset()
        result.append((self.default, default_bound))
        return result


# ---------------------------------------------------------------------------
# the inflationary fixed point form
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class WithExpr(Expr):
    """The paper's IFP form: ``with $var seeded by seed recurse body``.

    ``algorithm`` records an optional ``using`` clause (engine extension):
    ``"auto"`` (default — let the distributivity analysis decide), ``"naive"``
    or ``"delta"``.
    """

    var: str
    seed: Expr
    body: Expr
    algorithm: str = "auto"

    def children(self):
        return [(self.seed, frozenset()), (self.body, frozenset({self.var}))]


# ---------------------------------------------------------------------------
# paths and steps
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class NodeTest(Expr):
    """A node test inside an axis step.

    ``kind`` is ``"name"`` for name tests (``name`` holds the name or ``"*"``)
    or one of the kind-test names (``"node"``, ``"text"``, ``"element"``,
    ``"attribute"``, ``"comment"``, ``"processing-instruction"``,
    ``"document-node"``).
    """

    kind: str
    name: str | None = None


@dataclass(frozen=True)
class AxisStep(Expr):
    """An axis step ``axis::nodetest[pred]*`` evaluated against the focus."""

    axis: str
    node_test: NodeTest
    predicates: tuple[Expr, ...] = ()

    def children(self):
        return [(predicate, frozenset()) for predicate in self.predicates]


@dataclass(frozen=True)
class PathExpr(Expr):
    """The binary path operator ``e1 / e2``.

    ``//`` is desugared by the parser into an intermediate
    ``descendant-or-self::node()`` step, and a leading ``/`` into a
    :class:`RootExpr` left operand, so the evaluator and the analyses only
    see the binary form (which is exactly what Figure 5's STEP1/STEP2 rules
    are about).
    """

    left: Expr
    right: Expr

    def children(self):
        return [(self.left, frozenset()), (self.right, frozenset())]


@dataclass(frozen=True)
class RootExpr(Expr):
    """Leading ``/``: the root of the tree containing the context node."""


@dataclass(frozen=True)
class FilterExpr(Expr):
    """A primary expression filtered by predicates: ``e[p1][p2]...``."""

    primary: Expr
    predicates: tuple[Expr, ...]

    def children(self):
        return [(self.primary, frozenset())] + [(p, frozenset()) for p in self.predicates]


# ---------------------------------------------------------------------------
# function calls and constructors
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FunctionCall(Expr):
    """A call to a built-in or user-defined function."""

    name: str
    args: tuple[Expr, ...]

    def children(self):
        return [(arg, frozenset()) for arg in self.args]


@dataclass(frozen=True)
class AttributeConstructor(Expr):
    """An attribute inside a direct element constructor.

    The value is a sequence of string literals and enclosed expressions.
    """

    name: str
    value_parts: tuple[Expr, ...]

    def children(self):
        return [(part, frozenset()) for part in self.value_parts]


@dataclass(frozen=True)
class DirectElementConstructor(Expr):
    """A direct element constructor ``<name attr="...">{...}</name>``."""

    name: str
    attributes: tuple[AttributeConstructor, ...]
    content: tuple[Expr, ...]

    def children(self):
        result: list[tuple[Expr, frozenset[str]]] = []
        for attribute in self.attributes:
            result.append((attribute, frozenset()))
        for part in self.content:
            result.append((part, frozenset()))
        return result


@dataclass(frozen=True)
class ComputedConstructor(Expr):
    """A computed constructor: ``element {n} {c}``, ``text {c}``, etc.

    ``kind`` is one of ``"element"``, ``"attribute"``, ``"text"``,
    ``"comment"``, ``"document"``.  ``name`` may be a literal name or an
    expression (for computed names); ``content`` may be ``None`` for an
    empty constructor body.
    """

    kind: str
    name: Expr | None = None
    content: Expr | None = None

    def children(self):
        result = []
        if self.name is not None:
            result.append((self.name, frozenset()))
        if self.content is not None:
            result.append((self.content, frozenset()))
        return result


@dataclass(frozen=True)
class OrderedExpr(Expr):
    """``ordered { e }`` / ``unordered { e }`` — evaluated as ``e``."""

    mode: str
    body: Expr

    def children(self):
        return [(self.body, frozenset())]


@dataclass(frozen=True)
class CastExpr(Expr):
    """``e cast as T`` (supported for the basic atomic types)."""

    operand: Expr
    target_type: str
    optional: bool = False

    def children(self):
        return [(self.operand, frozenset())]


@dataclass(frozen=True)
class InstanceOfExpr(Expr):
    """``e instance of T``."""

    operand: Expr
    sequence_type: SequenceType

    def children(self):
        return [(self.operand, frozenset())]


# ---------------------------------------------------------------------------
# prolog and module
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Param:
    """A function parameter ``$name as type``."""

    name: str
    declared_type: SequenceType | None = None


@dataclass(frozen=True)
class FunctionDecl:
    """A user-defined function declaration."""

    name: str
    params: tuple[Param, ...]
    body: Expr
    return_type: SequenceType | None = None

    @property
    def arity(self) -> int:
        return len(self.params)


@dataclass(frozen=True)
class VariableDecl:
    """A prolog variable declaration ``declare variable $x := e;``."""

    name: str
    value: Expr | None
    external: bool = False
    declared_type: SequenceType | None = None


@dataclass(frozen=True)
class Module:
    """A parsed query: prolog declarations plus the body expression."""

    functions: tuple[FunctionDecl, ...] = ()
    variables: tuple[VariableDecl, ...] = ()
    body: Expr = field(default_factory=EmptySequence)

    def function_map(self) -> dict[tuple[str, int], FunctionDecl]:
        """Index the declared functions by (name, arity)."""
        return {(f.name, f.arity): f for f in self.functions}


# ---------------------------------------------------------------------------
# helpers used across the analyses
# ---------------------------------------------------------------------------


def set_position(node: object, line: int, column: int) -> None:
    """Stamp a 1-based source (line, column) onto an AST node.

    Positions ride outside the dataclass fields (``object.__setattr__`` on
    the frozen instances), so structural equality, hashing and
    ``dataclasses.replace`` are unaffected; a node rebuilt by the optimizer
    simply loses its stamp and :func:`get_position` returns ``None``.
    """
    object.__setattr__(node, "_pos", (line, column))


def get_position(node: object) -> tuple[int, int] | None:
    """The (line, column) stamped by the parser, or ``None``."""
    position = getattr(node, "_pos", None)
    if isinstance(position, tuple) and len(position) == 2:
        return position
    return None


def substitute_variable(expr: Expr, var: str, replacement: Expr) -> Expr:
    """Return ``expr`` with free occurrences of ``$var`` replaced.

    This is the ``e1(e2) = e1[e2/$x]`` notation of Section 2.  Occurrences
    under a construct that rebinds the same name (``for``, ``let``, ``some``,
    ``every``, ``typeswitch`` case variables, or ``with``) are left
    untouched; subexpressions where the variable remains free — such as the
    range expression of a rebinding ``for`` — are still rewritten.
    """
    from dataclasses import fields, replace

    if isinstance(expr, VarRef):
        return replacement if expr.name == var else expr

    shadowed_fields = _shadowed_body_fields(expr, var)

    updates = {}
    for field_info in fields(expr):  # type: ignore[arg-type]
        if field_info.name in shadowed_fields:
            continue
        value = getattr(expr, field_info.name)
        new_value = _substitute_in_value(value, var, replacement)
        if new_value is not value:
            updates[field_info.name] = new_value
    if not updates:
        return expr
    return replace(expr, **updates)  # type: ignore[type-var]


def _shadowed_body_fields(expr: Expr, var: str) -> frozenset[str]:
    """Fields of *expr* in which free occurrences of *var* are shadowed."""
    if isinstance(expr, ForExpr) and var in {expr.var, expr.position_var}:
        return frozenset({"body"})
    if isinstance(expr, (LetExpr,)) and var == expr.var:
        return frozenset({"body"})
    if isinstance(expr, QuantifiedExpr) and var == expr.var:
        return frozenset({"satisfies"})
    if isinstance(expr, WithExpr) and var == expr.var:
        return frozenset({"body"})
    if isinstance(expr, TypeswitchCase) and var == expr.var:
        return frozenset({"body"})
    if isinstance(expr, TypeswitchExpr) and var == expr.default_var:
        return frozenset({"default"})
    return frozenset()


def _substitute_in_value(value, var: str, replacement: Expr):
    if isinstance(value, Expr):
        return substitute_variable(value, var, replacement)
    if isinstance(value, tuple):
        new_items = tuple(_substitute_in_value(item, var, replacement) for item in value)
        if all(a is b for a, b in zip(new_items, value)):
            return value
        return new_items
    return value


def fresh_variable(base: str, taken: Sequence[str]) -> str:
    """Generate a variable name not occurring in *taken*."""
    candidate = base
    counter = 1
    taken_set = set(taken)
    while candidate in taken_set:
        candidate = f"{base}_{counter}"
        counter += 1
    return candidate
