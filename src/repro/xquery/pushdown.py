"""Predicate pushdown: shape recognition and vectorized filter kernels.

The paper's workloads are dominated by *value-filtered* path steps —
``//course[@code = $c]``, ``dblp//inproceedings[author = $a]`` — and
fixpoint bodies re-run those filters every µ/µ∆ round.  This module is the
shared seam all three engines route such predicates through:

* the **recognizer** (:func:`recognize_predicate`) classifies a predicate
  AST into one of a handful of *shapes* — attribute/child-element value
  comparisons against literals or variables, attribute/child existence
  tests, and positional predicates (``[1]``, ``[last()]``,
  ``[position() op N]``);
* the **batch kernels** (:func:`apply_value_shape`,
  :func:`positional_filter`) filter a whole candidate column at once: value
  shapes become membership probes into the lazy value inverted indexes of
  :class:`~repro.xdm.index.StructuralIndex` (one set lookup per candidate
  instead of a fresh focus + predicate evaluation), positional shapes
  become list-slice arithmetic on the axis-ordered candidate list (no
  ``position()``/``last()`` focus loop at all).

The interpreter calls the kernels from ``_apply_predicates``, the algebra
backend from the :class:`~repro.algebra.operators.StepJoin` macro (the
compiler attaches recognized shapes to the step), and the SQL emitter
reuses the recognizer to translate the same shapes into ``EXISTS`` probes
against the shredded ``attr``/``node`` tables.  Anything the recognizer
does not accept falls back to the engines' existing per-node paths, which
keeps all engines item-identical with pushdown on or off.

Semantics notes
---------------
* Value comparisons are pushed only when every right-hand value is a
  *string* (``xs:string`` or ``xs:untypedAtomic``): untyped node content
  compared against a string is plain string equality, which is exactly a
  hash probe.  A numeric operand would switch the XQuery general
  comparison to numeric promotion (``"07" = 7`` is true) — those fall
  back.
* Value and existence shapes depend only on the candidate node (plus
  variable bindings), never on the focus position/size, so they may be
  applied to a merged context column.  Positional shapes count along the
  step's axis order per context node and are only batched where that
  grouping is preserved.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from collections.abc import Callable, Iterable

from repro.xdm.index import IndexSet
from repro.xdm.items import UntypedAtomic, is_node
from repro.xdm.node import AttributeNode, ElementNode, Node
from repro.xquery import ast

#: Comparison operators a positional predicate may use.
_POSITION_OPS = {"=", "!=", "<", "<=", ">", ">="}

#: op → flipped op, for ``N op position()`` spellings.
_FLIPPED = {"=": "=", "!=": "!=", "<": ">", "<=": ">=", ">": "<", ">=": "<="}


@dataclass(frozen=True)
class ValueShape:
    """An attribute/child-element value or existence predicate.

    ``target`` is ``"attr"`` (``[@name …]``) or ``"child"`` (``[name …]``).
    ``rhs`` is the compared expression (``None`` for bare existence tests);
    ``values`` optionally carries compile-time-resolved constant strings
    (the algebra compiler and the SQL emitter resolve eagerly, the
    interpreter resolves per application).
    """

    target: str
    name: str
    rhs: ast.Expr | None = None
    values: tuple[str, ...] | None = None

    @property
    def kind(self) -> str:
        suffix = "exists" if self.rhs is None and self.values is None else "eq"
        return f"{self.target}-{suffix}"


@dataclass(frozen=True)
class PositionShape:
    """A positional predicate: ``[N]``, ``[last()]``, ``[position() op N]``.

    ``value`` is the compared integer, or ``None`` for ``last()`` (which
    only occurs with ``op == "="``).
    """

    op: str
    value: int | None

    @property
    def kind(self) -> str:
        return "positional"


Shape = ValueShape | PositionShape


# ---------------------------------------------------------------------------
# recognition
# ---------------------------------------------------------------------------


def _value_step_shape(expr: ast.Expr) -> tuple[str, str] | None:
    """``@name`` / ``name`` / ``attribute::name`` / ``child::name`` →
    (target, name), or ``None``."""
    if (isinstance(expr, ast.AxisStep) and not expr.predicates
            and expr.node_test.kind == "name" and expr.node_test.name not in (None, "*")):
        if expr.axis == "attribute":
            return ("attr", expr.node_test.name)
        if expr.axis == "child":
            return ("child", expr.node_test.name)
    return None


def _comparison_rhs(expr: ast.Expr) -> bool:
    """Expressions the kernels can resolve to constant string values."""
    return isinstance(expr, (ast.Literal, ast.VarRef))


def _position_operand(expr: ast.Expr) -> bool:
    return (isinstance(expr, ast.FunctionCall)
            and expr.name in ("position", "fn:position") and not expr.args)


def _integer_literal(expr: ast.Expr) -> int | None:
    if (isinstance(expr, ast.Literal) and isinstance(expr.value, int)
            and not isinstance(expr.value, bool)):
        return expr.value
    return None


def recognize_predicate(expr: ast.Expr) -> Shape | None:
    """Classify *expr* into a pushable shape, or ``None`` (fall back)."""
    # [N] — a bare integer literal.
    n = _integer_literal(expr)
    if n is not None:
        return PositionShape("=", n)
    # [last()]
    if (isinstance(expr, ast.FunctionCall)
            and expr.name in ("last", "fn:last") and not expr.args):
        return PositionShape("=", None)
    # [@a] / [name] — existence tests.
    step = _value_step_shape(expr)
    if step is not None:
        return ValueShape(step[0], step[1])
    if isinstance(expr, ast.GeneralComparison):
        # [position() op N] (either spelling).
        if expr.op in _POSITION_OPS:
            if _position_operand(expr.left):
                n = _integer_literal(expr.right)
                if n is not None:
                    return PositionShape(expr.op, n)
            if _position_operand(expr.right):
                n = _integer_literal(expr.left)
                if n is not None:
                    return PositionShape(_FLIPPED[expr.op], n)
        # [@a = rhs] / [name = rhs] (either spelling).  Only "=" — the
        # existential semantics of "!=" do not reduce to set membership.
        if expr.op == "=":
            step = _value_step_shape(expr.left)
            if step is not None and _comparison_rhs(expr.right):
                return ValueShape(step[0], step[1], rhs=expr.right)
            step = _value_step_shape(expr.right)
            if step is not None and _comparison_rhs(expr.left):
                return ValueShape(step[0], step[1], rhs=expr.left)
    return None


# ---------------------------------------------------------------------------
# right-hand-side resolution
# ---------------------------------------------------------------------------


def string_values_or_none(values: Iterable) -> tuple[str, ...] | None:
    """The values as plain strings, or ``None`` if any is not a string.

    Nodes are atomized to their untyped string value; genuine numerics and
    booleans reject the batch path (numeric promotion semantics).
    """
    out: list[str] = []
    for value in values:
        if is_node(value):
            out.append(str(value.typed_value()))
        elif isinstance(value, UntypedAtomic):
            out.append(str(value))
        elif isinstance(value, str):
            out.append(value)
        else:
            return None
    return tuple(out)


def resolve_rhs(shape: ValueShape,
                lookup: Callable[[str], list | None]) -> tuple[str, ...] | None:
    """The constant string values of *shape*'s right-hand side.

    *lookup* maps a variable name to its bound value sequence (or ``None``
    when unknown).  Returns ``None`` when the shape must fall back.
    """
    if shape.values is not None:
        return shape.values
    rhs = shape.rhs
    if rhs is None:  # existence test — no values to resolve
        return ()
    if isinstance(rhs, ast.Literal):
        return string_values_or_none([rhs.value])
    if isinstance(rhs, ast.VarRef):
        bound = lookup(rhs.name)
        if bound is None:
            return None
        return string_values_or_none(bound)
    return None


# ---------------------------------------------------------------------------
# batch kernels
# ---------------------------------------------------------------------------


def _node_passes_naive(node: Node, shape: ValueShape,
                       values: frozenset | None) -> bool:
    """Per-node value test without the index (small batches, --no-index)."""
    if shape.target == "attr":
        for attribute in node.attribute_axis():
            if attribute.name == shape.name and (
                    values is None or attribute.value in values):
                return True
        return False
    for child in node.children:
        if isinstance(child, ElementNode) and child.name == shape.name and (
                values is None or child.string_value() in values):
            return True
    return False


def apply_value_shape(items: list, shape: ValueShape, values: tuple[str, ...],
                      use_index: bool = True,
                      index_set: IndexSet | None = None) -> list:
    """Filter *items* by a resolved value shape (order-preserving).

    ``values`` is ``()`` for existence tests, otherwise the constant
    strings the comparison may match.  All items must be nodes.
    """
    existence = shape.rhs is None and shape.values is None
    value_set = None if existence else frozenset(values)
    if not existence and not value_set:
        return []
    if not use_index:
        return [item for item in items
                if _node_passes_naive(item, shape, value_set)]
    if index_set is None:
        index_set = IndexSet()
    kept: list = []
    for item in items:
        if isinstance(item, AttributeNode):
            continue  # attributes have neither attributes nor children
        idx = index_set.for_node(item)
        pre = idx.pre_of.get(id(item))
        if pre is None:  # pragma: no cover - defensive (detached mid-batch)
            if _node_passes_naive(item, shape, value_set):
                kept.append(item)
            continue
        if _pre_passes(idx, pre, shape, values, existence):
            kept.append(item)
    return kept


def _pre_passes(idx, pre: int, shape: ValueShape, values: tuple[str, ...],
                existence: bool) -> bool:
    if shape.target == "attr":
        if existence:
            return pre in idx.attr_owner_pres(shape.name)
        return any(pre in idx.attr_value_owner_pres(shape.name, value)
                   for value in values)
    if existence:
        return pre in idx.child_name_parent_pres(shape.name)
    return any(pre in idx.child_value_parent_pres(shape.name, value)
               for value in values)


def positional_filter(items: list, shape: PositionShape) -> list:
    """Slice *items* by a positional shape (1-based positions in list order).

    The caller guarantees the list order *is* the position order the
    predicate would observe (the axis's natural order for step predicates,
    the sequence order for filter expressions).
    """
    n = shape.value
    if n is None:  # last()
        return items[-1:]
    op = shape.op
    if op == "=":
        return items[n - 1:n] if n >= 1 else []
    if op == "!=":
        return items[:n - 1] + items[n:] if n >= 1 else list(items)
    if op == "<":
        return items[:max(n - 1, 0)]
    if op == "<=":
        return items[:max(n, 0)]
    if op == ">":
        return items[n:] if n >= 0 else list(items)
    if op == ">=":
        return items[max(n - 1, 0):]
    raise AssertionError(f"unexpected positional op {op!r}")  # pragma: no cover


def apply_shapes(items: list, shapes: Iterable[Shape],
                 resolved: Iterable[tuple[str, ...] | None],
                 use_index: bool = True,
                 index_set: IndexSet | None = None) -> list:
    """Apply a sequence of shapes (with pre-resolved values) in order."""
    current = list(items)
    for shape, values in zip(shapes, resolved):
        if not current:
            break
        if isinstance(shape, PositionShape):
            current = positional_filter(current, shape)
        else:
            current = apply_value_shape(current, shape, values or (),
                                        use_index=use_index, index_set=index_set)
    return current


# ---------------------------------------------------------------------------
# kernel hit/fallback profiling (the CLI/api --profile surface)
# ---------------------------------------------------------------------------


class PushdownProfile:
    """Process-wide batch-vs-fallback counters with cumulative timings.

    Disabled (zero-overhead checks on the hot paths) unless the caller —
    ``repro.api.evaluate(..., profile=True)`` or the CLI's ``--profile`` —
    switches it on around an evaluation.
    """

    __slots__ = ("enabled", "_counters")

    def __init__(self):
        self.enabled = False
        self._counters: dict[str, dict] = {}

    def reset(self) -> None:
        self._counters = {}

    def record(self, key: str, batch: bool, seconds: float = 0.0) -> None:
        entry = self._counters.get(key)
        if entry is None:
            entry = self._counters[key] = {
                "batch": 0, "fallback": 0,
                "batch_seconds": 0.0, "fallback_seconds": 0.0,
            }
        if batch:
            entry["batch"] += 1
            entry["batch_seconds"] += seconds
        else:
            entry["fallback"] += 1
            entry["fallback_seconds"] += seconds

    def snapshot(self) -> dict[str, dict]:
        return {key: dict(entry) for key, entry in sorted(self._counters.items())}

    def timer(self) -> float:
        return time.perf_counter()


#: The module-level profile all engines record into.
PROFILE = PushdownProfile()


def format_profile(snapshot: dict[str, dict]) -> str:
    """Render a profile snapshot as an aligned text table."""
    if not snapshot:
        return "-- pushdown profile: no axis steps or predicates evaluated"
    width = max(len(key) for key in snapshot) + 2
    lines = [f"{'kernel':<{width}} {'batch':>8} {'fallback':>9} "
             f"{'batch_s':>10} {'fallback_s':>11}"]
    lines.append("-" * len(lines[0]))
    for key, entry in snapshot.items():
        lines.append(
            f"{key:<{width}} {entry['batch']:>8} {entry['fallback']:>9} "
            f"{entry['batch_seconds']:>10.4f} {entry['fallback_seconds']:>11.4f}"
        )
    return "\n".join(lines)


__all__ = [
    "PROFILE",
    "PositionShape",
    "PushdownProfile",
    "Shape",
    "ValueShape",
    "apply_shapes",
    "apply_value_shape",
    "format_profile",
    "positional_filter",
    "recognize_predicate",
    "resolve_rhs",
    "string_values_or_none",
]
