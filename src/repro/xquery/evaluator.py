"""Tree-walking evaluator for the XQuery subset.

The evaluator follows the XQuery 1.0 dynamic semantics for the supported
fragment: sequences are Python lists of items, path steps re-focus the
dynamic context and apply ``fs:ddo``, general comparisons are existential
with untyped promotion, constructors copy content and mint fresh node
identities.

The ``with $x seeded by … recurse …`` form is delegated to
:mod:`repro.fixpoint.engine`; which algorithm (Naive or Delta) is used
depends on the expression's ``using`` clause, the engine options and the
distributivity analysis — exactly the decision procedure Sections 3 and 4 of
the paper describe.
"""

from __future__ import annotations

import sys
import threading
from contextlib import contextmanager
from collections.abc import Callable
from typing import Any

from repro.errors import (
    UndefinedFunctionError,
    XQueryDynamicError,
    XQueryStaticError,
    XQueryTypeError,
)
from repro.limits import active_governor
from repro.xdm.comparison import atomic_equal, atomic_less_than
from repro.xdm.document import copy_node
from repro.xdm.index import batch_step, indexed_step
from repro.xdm.items import (
    UntypedAtomic,
    is_node,
    is_numeric,
    string_value_of_item,
    xs_boolean,
    xs_double,
    xs_integer,
    xs_string,
)
from repro.xdm.node import (
    AttributeNode,
    CommentNode,
    DocumentNode,
    ElementNode,
    Node,
    ProcessingInstructionNode,
    TextNode,
)
from repro.xdm.sequence import (
    atomize,
    ddo,
    effective_boolean_value,
    node_except,
    node_intersect,
    node_union,
)
from repro.xquery import ast
from repro.xquery import pushdown
from repro.xquery.context import DynamicContext
from repro.xquery.functions import lookup_builtin
from repro.xquery.pushdown import PROFILE, PositionShape

Sequence = list

#: Axes whose natural order is reverse document order; predicate positions
#: count along the axis (e.g. ``ancestor::*[1]`` is the parent).
REVERSE_AXES = {"ancestor", "ancestor-or-self", "parent", "preceding", "preceding-sibling"}

#: Python stack headroom: the engine's own recursion-depth bound (on
#: user-defined function calls) is what limits recursion, so the Python
#: interpreter limit is raised high enough never to fire first — but only
#: for the duration of an evaluation, and restored afterwards, so embedding
#: applications are not silently reconfigured.
PYTHON_RECURSION_LIMIT = 100_000

_RECURSION_LOCK = threading.Lock()
_RECURSION_HOLDERS = 0
_RECURSION_SAVED: int | None = None


@contextmanager
def recursion_headroom(limit: int = PYTHON_RECURSION_LIMIT):
    """Temporarily raise the Python recursion limit to *limit*.

    Ref-counted across threads: the first holder saves the process limit
    and raises it, the last one restores the saved value — unless someone
    else changed the limit in between, in which case their value wins and
    we leave it alone.  A no-op when the process limit is already high
    enough.
    """
    global _RECURSION_HOLDERS, _RECURSION_SAVED
    with _RECURSION_LOCK:
        if _RECURSION_HOLDERS == 0 and sys.getrecursionlimit() < limit:
            _RECURSION_SAVED = sys.getrecursionlimit()
            sys.setrecursionlimit(limit)
        _RECURSION_HOLDERS += 1
    try:
        yield
    finally:
        with _RECURSION_LOCK:
            _RECURSION_HOLDERS -= 1
            if _RECURSION_HOLDERS == 0 and _RECURSION_SAVED is not None:
                if sys.getrecursionlimit() == limit:
                    sys.setrecursionlimit(_RECURSION_SAVED)
                _RECURSION_SAVED = None


class Evaluator:
    """Evaluates parsed queries against a dynamic context."""

    #: Kept as a class attribute for backwards compatibility with callers
    #: that read the old knob; the module-level constant is authoritative.
    PYTHON_RECURSION_LIMIT = PYTHON_RECURSION_LIMIT

    def __init__(self):
        self._dispatch: dict[type, Callable[[Any, DynamicContext], Sequence]] = {
            ast.Literal: self._eval_literal,
            ast.EmptySequence: lambda e, c: [],
            ast.VarRef: self._eval_var_ref,
            ast.ContextItem: self._eval_context_item,
            ast.SequenceExpr: self._eval_sequence,
            ast.RangeExpr: self._eval_range,
            ast.UnionExpr: self._eval_union,
            ast.IntersectExpr: self._eval_intersect,
            ast.ExceptExpr: self._eval_except,
            ast.OrExpr: self._eval_or,
            ast.AndExpr: self._eval_and,
            ast.GeneralComparison: self._eval_general_comparison,
            ast.ValueComparison: self._eval_value_comparison,
            ast.NodeComparison: self._eval_node_comparison,
            ast.ArithmeticExpr: self._eval_arithmetic,
            ast.UnaryExpr: self._eval_unary,
            ast.ForExpr: self._eval_for,
            ast.LetExpr: self._eval_let,
            ast.IfExpr: self._eval_if,
            ast.QuantifiedExpr: self._eval_quantified,
            ast.TypeswitchExpr: self._eval_typeswitch,
            ast.WithExpr: self._eval_with,
            ast.PathExpr: self._eval_path,
            ast.RootExpr: self._eval_root,
            ast.AxisStep: self._eval_axis_step,
            ast.FilterExpr: self._eval_filter,
            ast.FunctionCall: self._eval_function_call,
            ast.DirectElementConstructor: self._eval_direct_element,
            ast.ComputedConstructor: self._eval_computed_constructor,
            ast.OrderedExpr: self._eval_ordered,
            ast.CastExpr: self._eval_cast,
            ast.InstanceOfExpr: self._eval_instance_of,
        }

    # ------------------------------------------------------------------ entry points

    def evaluate_module(self, module: ast.Module, context: DynamicContext) -> Sequence:
        """Evaluate a complete query module (prolog + body)."""
        with recursion_headroom():
            static = context.static
            for function in module.functions:
                static.functions[(function.name, function.arity)] = function
            for declaration in module.variables:
                if declaration.external:
                    if declaration.name not in context.variables:
                        raise XQueryDynamicError(
                            f"external variable ${declaration.name} was not provided",
                            code="XPDY0002",
                        )
                    continue
                value = self.evaluate(declaration.value, context)
                context = context.bind(declaration.name, value)
            return self.evaluate(module.body, context)

    def evaluate(self, expr: ast.Expr, context: DynamicContext) -> Sequence:
        """Evaluate a single expression."""
        handler = self._dispatch.get(type(expr))
        if handler is None:
            raise XQueryStaticError(f"unsupported expression type {type(expr).__name__}")
        return handler(expr, context)

    # ------------------------------------------------------------------ leaves

    def _eval_literal(self, expr: ast.Literal, context: DynamicContext) -> Sequence:
        return [expr.value]

    def _eval_var_ref(self, expr: ast.VarRef, context: DynamicContext) -> Sequence:
        return list(context.variable(expr.name))

    def _eval_context_item(self, expr: ast.ContextItem, context: DynamicContext) -> Sequence:
        return [context.context_item()]

    # ------------------------------------------------------------------ sequences

    def _eval_sequence(self, expr: ast.SequenceExpr, context: DynamicContext) -> Sequence:
        result: Sequence = []
        for item in expr.items:
            result.extend(self.evaluate(item, context))
        return result

    def _eval_range(self, expr: ast.RangeExpr, context: DynamicContext) -> Sequence:
        start = self._singleton_integer(self.evaluate(expr.start, context))
        end = self._singleton_integer(self.evaluate(expr.end, context))
        if start is None or end is None or start > end:
            return []
        return list(range(start, end + 1))

    def _eval_union(self, expr: ast.UnionExpr, context: DynamicContext) -> Sequence:
        return node_union(self.evaluate(expr.left, context), self.evaluate(expr.right, context))

    def _eval_intersect(self, expr: ast.IntersectExpr, context: DynamicContext) -> Sequence:
        return node_intersect(self.evaluate(expr.left, context), self.evaluate(expr.right, context))

    def _eval_except(self, expr: ast.ExceptExpr, context: DynamicContext) -> Sequence:
        return node_except(self.evaluate(expr.left, context), self.evaluate(expr.right, context))

    # ------------------------------------------------------------------ logic

    def _eval_or(self, expr: ast.OrExpr, context: DynamicContext) -> Sequence:
        left = effective_boolean_value(self.evaluate(expr.left, context))
        if left:
            return [True]
        return [effective_boolean_value(self.evaluate(expr.right, context))]

    def _eval_and(self, expr: ast.AndExpr, context: DynamicContext) -> Sequence:
        left = effective_boolean_value(self.evaluate(expr.left, context))
        if not left:
            return [False]
        return [effective_boolean_value(self.evaluate(expr.right, context))]

    # ------------------------------------------------------------------ comparisons

    def _eval_general_comparison(self, expr: ast.GeneralComparison, context: DynamicContext) -> Sequence:
        left = atomize(self.evaluate(expr.left, context))
        right = atomize(self.evaluate(expr.right, context))
        for left_value in left:
            for right_value in right:
                if self._compare_general(expr.op, left_value, right_value):
                    return [True]
        return [False]

    def _compare_general(self, op: str, left: Any, right: Any) -> bool:
        left, right = self._promote_pair(left, right)
        return self._apply_comparison(op, left, right)

    def _promote_pair(self, left: Any, right: Any) -> tuple[Any, Any]:
        if isinstance(left, UntypedAtomic):
            if is_numeric(right):
                return xs_double(left), right
            if isinstance(right, bool):
                return xs_boolean(left), right
            return str(left), str(right) if isinstance(right, UntypedAtomic) else right
        if isinstance(right, UntypedAtomic):
            promoted_right, promoted_left = self._promote_pair(right, left)
            return promoted_left, promoted_right
        return left, right

    def _apply_comparison(self, op: str, left: Any, right: Any) -> bool:
        if op in ("=", "eq"):
            return atomic_equal(left, right)
        if op in ("!=", "ne"):
            return not atomic_equal(left, right)
        if op in ("<", "lt"):
            return atomic_less_than(left, right)
        if op in ("<=", "le"):
            return atomic_less_than(left, right) or atomic_equal(left, right)
        if op in (">", "gt"):
            return atomic_less_than(right, left)
        if op in (">=", "ge"):
            return atomic_less_than(right, left) or atomic_equal(left, right)
        raise XQueryStaticError(f"unknown comparison operator {op!r}")  # pragma: no cover

    def _eval_value_comparison(self, expr: ast.ValueComparison, context: DynamicContext) -> Sequence:
        left = atomize(self.evaluate(expr.left, context))
        right = atomize(self.evaluate(expr.right, context))
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1:
            raise XQueryTypeError("value comparison requires singleton operands")
        left_value, right_value = self._promote_pair(left[0], right[0])
        return [self._apply_comparison(expr.op, left_value, right_value)]

    def _eval_node_comparison(self, expr: ast.NodeComparison, context: DynamicContext) -> Sequence:
        left = self.evaluate(expr.left, context)
        right = self.evaluate(expr.right, context)
        if not left or not right:
            return []
        if len(left) > 1 or len(right) > 1 or not is_node(left[0]) or not is_node(right[0]):
            raise XQueryTypeError("node comparison requires singleton nodes")
        left_node, right_node = left[0], right[0]
        if expr.op == "is":
            return [left_node.is_same_node(right_node)]
        if expr.op == "<<":
            return [left_node.precedes(right_node)]
        if expr.op == ">>":
            return [left_node.follows(right_node)]
        raise XQueryStaticError(f"unknown node comparison {expr.op!r}")  # pragma: no cover

    # ------------------------------------------------------------------ arithmetic

    def _eval_arithmetic(self, expr: ast.ArithmeticExpr, context: DynamicContext) -> Sequence:
        left = self._numeric_operand(self.evaluate(expr.left, context))
        right = self._numeric_operand(self.evaluate(expr.right, context))
        if left is None or right is None:
            return []
        op = expr.op
        if op == "+":
            return [left + right]
        if op == "-":
            return [left - right]
        if op == "*":
            return [left * right]
        if op == "div":
            if right == 0:
                raise XQueryDynamicError("division by zero", code="FOAR0001")
            return [left / right]
        if op == "idiv":
            if right == 0:
                raise XQueryDynamicError("integer division by zero", code="FOAR0001")
            return [int(left // right) if (left * right) >= 0 or left % right == 0 else -int(abs(left) // abs(right))]
        if op == "mod":
            if right == 0:
                raise XQueryDynamicError("modulo by zero", code="FOAR0001")
            return [left - right * int(left / right)] if isinstance(left, float) or isinstance(right, float) else [
                left - right * int(left / right)
            ]
        raise XQueryStaticError(f"unknown arithmetic operator {op!r}")  # pragma: no cover

    def _numeric_operand(self, sequence: Sequence) -> float | None:
        values = atomize(sequence)
        if not values:
            return None
        if len(values) > 1:
            raise XQueryTypeError("arithmetic requires singleton operands")
        value = values[0]
        if isinstance(value, (UntypedAtomic, str)):
            return xs_double(value)
        if isinstance(value, bool):
            raise XQueryTypeError("arithmetic on xs:boolean is not defined")
        if is_numeric(value):
            return value
        raise XQueryTypeError(f"cannot use {type(value).__name__} in arithmetic")

    def _eval_unary(self, expr: ast.UnaryExpr, context: DynamicContext) -> Sequence:
        value = self._numeric_operand(self.evaluate(expr.operand, context))
        if value is None:
            return []
        return [-value if expr.op == "-" else +value]

    def _singleton_integer(self, sequence: Sequence) -> int | None:
        values = atomize(sequence)
        if not values:
            return None
        if len(values) > 1:
            raise XQueryTypeError("expected a single integer")
        return xs_integer(values[0])

    # ------------------------------------------------------------------ FLWOR and friends

    def _eval_for(self, expr: ast.ForExpr, context: DynamicContext) -> Sequence:
        sequence = self.evaluate(expr.sequence, context)
        governor = active_governor(context.options.limits)
        result: Sequence = []
        for position, item in enumerate(sequence, start=1):
            # Inline amortized checkpoint: tick() is a C-level stride
            # counter, so the common case costs one slot read + one call.
            if governor is not None and governor.tick():
                governor.check_now()
            bound = context.bind(expr.var, [item])
            if expr.position_var:
                bound = bound.bind(expr.position_var, [position])
            result.extend(self.evaluate(expr.body, bound))
        return result

    def _eval_let(self, expr: ast.LetExpr, context: DynamicContext) -> Sequence:
        value = self.evaluate(expr.value, context)
        return self.evaluate(expr.body, context.bind(expr.var, value))

    def _eval_if(self, expr: ast.IfExpr, context: DynamicContext) -> Sequence:
        condition = effective_boolean_value(self.evaluate(expr.condition, context))
        branch = expr.then_branch if condition else expr.else_branch
        return self.evaluate(branch, context)

    def _eval_quantified(self, expr: ast.QuantifiedExpr, context: DynamicContext) -> Sequence:
        sequence = self.evaluate(expr.sequence, context)
        for item in sequence:
            satisfied = effective_boolean_value(
                self.evaluate(expr.satisfies, context.bind(expr.var, [item]))
            )
            if expr.quantifier == "some" and satisfied:
                return [True]
            if expr.quantifier == "every" and not satisfied:
                return [False]
        return [expr.quantifier == "every"]

    def _eval_typeswitch(self, expr: ast.TypeswitchExpr, context: DynamicContext) -> Sequence:
        operand = self.evaluate(expr.operand, context)
        for case in expr.cases:
            if matches_sequence_type(operand, case.sequence_type):
                case_context = context.bind(case.var, operand) if case.var else context
                return self.evaluate(case.body, case_context)
        default_context = context.bind(expr.default_var, operand) if expr.default_var else context
        return self.evaluate(expr.default, default_context)

    # ------------------------------------------------------------------ the IFP form

    def _eval_with(self, expr: ast.WithExpr, context: DynamicContext) -> Sequence:
        from repro.fixpoint.engine import FixpointEngine
        from repro.observability.tracing import active_trace

        seed = self.evaluate(expr.seed, context)

        def body(nodes: Sequence) -> Sequence:
            return self.evaluate(expr.body, context.bind(expr.var, nodes))

        engine = FixpointEngine(
            max_iterations=context.options.max_ifp_iterations,
            collect_statistics=context.options.collect_statistics,
        )
        algorithm = self._choose_ifp_algorithm(expr, context)
        result = engine.run(body, seed, algorithm=algorithm,
                            trace=active_trace(context.options.trace),
                            governor=active_governor(context.options.limits))
        if context.statistics is not None and hasattr(context.statistics, "record_ifp"):
            context.statistics.record_ifp(result.statistics)
        return list(result.value)

    def _choose_ifp_algorithm(self, expr: ast.WithExpr, context: DynamicContext) -> str:
        if expr.algorithm in ("naive", "delta"):
            return expr.algorithm
        options = context.options
        if options.ifp_algorithm in ("naive", "delta"):
            return options.ifp_algorithm
        checker = options.distributivity_checker
        if checker == "never":
            return "naive"
        if checker == "analysis":
            from repro.analysis.distributivity import is_distributive_static

            distributive = is_distributive_static(
                expr.body, expr.var, functions=context.static.functions,
                seed=expr.seed,
            )
        elif checker == "algebraic":
            from repro.algebra.distributivity import is_distributive_algebraic

            try:
                distributive = is_distributive_algebraic(
                    expr.body, expr.var, functions=context.static.functions
                )
            except Exception:
                distributive = False
        else:
            from repro.distributivity.syntactic import is_distributivity_safe

            distributive = is_distributivity_safe(
                expr.body, expr.var, functions=context.static.functions
            )
        return "delta" if distributive else "naive"

    # ------------------------------------------------------------------ paths

    def _eval_path(self, expr: ast.PathExpr, context: DynamicContext) -> Sequence:
        # Deliberately no governance checkpoint here: path evaluation is
        # bounded by document size, and this is the hottest dispatch in the
        # interpreter — a per-path-expression check costs ~3% on fixpoint
        # workloads (benchmarks/check_limits_overhead.py).  Unbounded work
        # always flows through a fixpoint round, a FLWOR iteration or a
        # user-function call, all of which do checkpoint.
        left = self.evaluate(expr.left, context)
        # Vectorized fast path: an axis step applied to a whole node column
        # is one batch kernel call (dedup + document order included),
        # skipping the per-node focus loop and the final ddo.  Predicates
        # ride along when every one is a recognized *non-positional* shape:
        # value/existence tests depend only on the candidate node, so
        # filtering the merged column equals filtering per context node.
        # (Positional shapes count per context node — the per-node loop
        # below still batch-slices them inside _eval_axis_step.)
        if (isinstance(expr.right, ast.AxisStep)
                and context.static.options.use_index
                and all(is_node(item) for item in left)):
            step = expr.right
            fusible = not step.predicates
            if not fusible and context.static.options.use_pushdown:
                shapes = [pushdown.recognize_predicate(p) for p in step.predicates]
                fusible = all(shape is not None
                              and not isinstance(shape, PositionShape)
                              for shape in shapes)
            if fusible:
                timer = PROFILE.timer() if PROFILE.enabled else 0.0
                result = batch_step(left, step.axis, step.node_test.kind,
                                    step.node_test.name)
                if result is not None:
                    if step.predicates:
                        result = self._apply_predicates(result, step.predicates,
                                                        context)
                    if PROFILE.enabled:
                        PROFILE.record(f"step:{step.axis}", True,
                                       PROFILE.timer() - timer)
                    return result
                if PROFILE.enabled:
                    PROFILE.record(f"step:{step.axis}", False)
        results: Sequence = []
        size = len(left)
        for position, item in enumerate(left, start=1):
            if not is_node(item):
                raise XQueryTypeError("path steps require node input", code="XPTY0019")
            focused = context.with_focus(item, position, size)
            results.extend(self.evaluate(expr.right, focused))
        if all(is_node(item) for item in results):
            return ddo(results)
        if any(is_node(item) for item in results):
            raise XQueryTypeError(
                "path result mixes nodes and atomic values", code="XPTY0018"
            )
        return results

    def _eval_root(self, expr: ast.RootExpr, context: DynamicContext) -> Sequence:
        node = context.context_item()
        if not is_node(node):
            raise XQueryTypeError("'/' requires the context item to be a node")
        return [node.root()]

    def _eval_axis_step(self, expr: ast.AxisStep, context: DynamicContext) -> Sequence:
        node = context.context_item()
        if not is_node(node):
            raise XQueryTypeError(
                f"axis step '{expr.axis}::' requires a node context item", code="XPTY0020"
            )
        matched = None
        timer = PROFILE.timer() if PROFILE.enabled else 0.0
        if context.static.options.use_index:
            matched = indexed_step(node, expr.axis, expr.node_test.kind,
                                   expr.node_test.name)
        if PROFILE.enabled:
            PROFILE.record(f"axis:{expr.axis}", matched is not None,
                           PROFILE.timer() - timer)
        if matched is None:
            candidates = self._axis_nodes(node, expr.axis)
            matched = [candidate for candidate in candidates
                       if self._node_test(candidate, expr.node_test, expr.axis)]
        return self._apply_predicates(matched, expr.predicates, context)

    def _axis_nodes(self, node: Node, axis: str) -> list[Node]:
        if axis == "child":
            return node.child_axis()
        if axis == "descendant":
            return node.descendant_axis()
        if axis == "descendant-or-self":
            return node.descendant_or_self_axis()
        if axis == "self":
            return node.self_axis()
        if axis == "attribute":
            return node.attribute_axis()
        if axis == "parent":
            return node.parent_axis()
        if axis == "ancestor":
            return node.ancestor_axis()
        if axis == "ancestor-or-self":
            return node.ancestor_or_self_axis()
        if axis == "following-sibling":
            return node.following_sibling_axis()
        if axis == "preceding-sibling":
            return node.preceding_sibling_axis()
        if axis == "following":
            return node.following_axis()
        if axis == "preceding":
            return node.preceding_axis()
        raise XQueryStaticError(f"unsupported axis '{axis}'")

    def _node_test(self, node: Node, test: ast.NodeTest, axis: str) -> bool:
        if test.kind == "name":
            if axis == "attribute":
                if not isinstance(node, AttributeNode):
                    return False
            elif not isinstance(node, ElementNode):
                return False
            return test.name == "*" or node.name == test.name
        if test.kind == "node":
            return True
        if test.kind == "text":
            return isinstance(node, TextNode)
        if test.kind == "comment":
            return isinstance(node, CommentNode)
        if test.kind == "processing-instruction":
            if not isinstance(node, ProcessingInstructionNode):
                return False
            return test.name is None or node.name == test.name
        if test.kind == "element":
            if not isinstance(node, ElementNode):
                return False
            return test.name is None or node.name == test.name
        if test.kind == "attribute":
            if not isinstance(node, AttributeNode):
                return False
            return test.name is None or node.name == test.name
        if test.kind == "document-node":
            return isinstance(node, DocumentNode)
        raise XQueryStaticError(f"unsupported node test '{test.kind}'")  # pragma: no cover

    def _apply_predicates(self, items: Sequence, predicates: tuple[ast.Expr, ...],
                          context: DynamicContext) -> Sequence:
        current = list(items)
        use_pushdown = context.static.options.use_pushdown
        index_set = None
        for predicate in predicates:
            if use_pushdown and current:
                filtered = self._apply_predicate_batch(current, predicate,
                                                       context, index_set)
                if filtered is not None:
                    current, index_set = filtered
                    continue
            retained: Sequence = []
            size = len(current)
            timer = PROFILE.timer() if PROFILE.enabled else 0.0
            for position, item in enumerate(current, start=1):
                focused = context.with_focus(item, position, size)
                value = self.evaluate(predicate, focused)
                if self._predicate_holds(value, position):
                    retained.append(item)
            if PROFILE.enabled:
                PROFILE.record("pred:fallback", False, PROFILE.timer() - timer)
            current = retained
        return current

    def _apply_predicate_batch(self, items: Sequence, predicate: ast.Expr,
                               context: DynamicContext, index_set):
        """Filter *items* through a batch predicate kernel.

        Returns ``(filtered items, index set)`` — the index set is threaded
        so consecutive value predicates share the per-tree index resolution
        — or ``None`` when the predicate (or its runtime operand types)
        requires the per-item focus loop.
        """
        shape = pushdown.recognize_predicate(predicate)
        if shape is None:
            return None
        timer = PROFILE.timer() if PROFILE.enabled else 0.0
        if isinstance(shape, PositionShape):
            result = pushdown.positional_filter(list(items), shape)
            if PROFILE.enabled:
                PROFILE.record("pred:positional", True, PROFILE.timer() - timer)
            return result, index_set
        if not all(is_node(item) for item in items):
            return None  # the focus loop raises the proper type error
        values = pushdown.resolve_rhs(
            shape, lambda name: context.variables.get(name))
        if values is None:
            return None  # non-string operands: numeric promotion semantics
        use_index = context.static.options.use_index
        if use_index and index_set is None:
            from repro.xdm.index import IndexSet

            index_set = IndexSet()
        result = pushdown.apply_value_shape(list(items), shape, values,
                                            use_index=use_index,
                                            index_set=index_set)
        if PROFILE.enabled:
            PROFILE.record(f"pred:{shape.kind}", True, PROFILE.timer() - timer)
        return result, index_set

    def _predicate_holds(self, value: Sequence, position: int) -> bool:
        if len(value) == 1 and is_numeric(value[0]) and not isinstance(value[0], bool):
            return value[0] == position
        return effective_boolean_value(value)

    def _eval_filter(self, expr: ast.FilterExpr, context: DynamicContext) -> Sequence:
        primary = self.evaluate(expr.primary, context)
        return self._apply_predicates(primary, expr.predicates, context)

    # ------------------------------------------------------------------ function calls

    def _eval_function_call(self, expr: ast.FunctionCall, context: DynamicContext) -> Sequence:
        args = [self.evaluate(arg, context) for arg in expr.args]
        declaration = context.static.lookup_function(expr.name, len(args))
        if declaration is not None:
            return self._call_user_function(declaration, args, context)
        builtin = lookup_builtin(expr.name, len(args))
        if builtin is not None:
            return builtin.implementation(context, *args)
        position = ast.get_position(expr) or (None, None)
        raise UndefinedFunctionError(expr.name, len(args), *position)

    def _call_user_function(self, declaration: ast.FunctionDecl, args: list[Sequence],
                            context: DynamicContext) -> Sequence:
        governor = active_governor(context.options.limits)
        if governor is not None and governor.tick():
            governor.check_now()
        call_context = context.enter_function().without_focus()
        bindings = {param.name: arg for param, arg in zip(declaration.params, args)}
        call_context = call_context.bind_many(bindings)
        return self.evaluate(declaration.body, call_context)

    # ------------------------------------------------------------------ constructors

    def _eval_direct_element(self, expr: ast.DirectElementConstructor,
                             context: DynamicContext) -> Sequence:
        element = ElementNode(expr.name)
        for attribute in expr.attributes:
            value = self._attribute_value(attribute, context)
            element.add_attribute(AttributeNode(attribute.name, value))
        for part in expr.content:
            if isinstance(part, ast.Literal) and isinstance(part.value, str):
                element.append_child(TextNode(part.value))
                continue
            self._append_content(element, self.evaluate(part, context))
        return [element]

    def _attribute_value(self, attribute: ast.AttributeConstructor, context: DynamicContext) -> str:
        parts: list[str] = []
        for part in attribute.value_parts:
            if isinstance(part, ast.Literal) and isinstance(part.value, str):
                parts.append(part.value)
            else:
                value = self.evaluate(part, context)
                parts.append(" ".join(string_value_of_item(item) for item in value))
        return "".join(parts)

    def _append_content(self, element: ElementNode, content: Sequence) -> None:
        pending_atomics: list[str] = []

        def flush() -> None:
            if pending_atomics:
                element.append_child(TextNode(" ".join(pending_atomics)))
                pending_atomics.clear()

        for item in content:
            if is_node(item):
                flush()
                if isinstance(item, AttributeNode):
                    element.add_attribute(AttributeNode(item.name, item.value, is_id=item.is_id))
                elif isinstance(item, DocumentNode):
                    for child in item.children:
                        element.append_child(copy_node(child))
                else:
                    element.append_child(copy_node(item))
            else:
                pending_atomics.append(string_value_of_item(item))
        flush()

    def _eval_computed_constructor(self, expr: ast.ComputedConstructor,
                                   context: DynamicContext) -> Sequence:
        kind = expr.kind
        content = self.evaluate(expr.content, context) if expr.content is not None else []
        if kind == "element":
            name = self._constructor_name(expr, context)
            element = ElementNode(name)
            self._append_content(element, content)
            return [element]
        if kind == "attribute":
            name = self._constructor_name(expr, context)
            value = " ".join(string_value_of_item(item) for item in atomize(content))
            return [AttributeNode(name, value)]
        if kind == "text":
            if not content:
                return []
            return [TextNode(" ".join(string_value_of_item(item) for item in atomize(content)))]
        if kind == "comment":
            return [CommentNode(" ".join(string_value_of_item(item) for item in atomize(content)))]
        if kind == "document":
            document = DocumentNode()
            holder = ElementNode("_root")
            self._append_content(holder, content)
            for child in list(holder.children):
                child.parent = None
                document.append_child(child)
            return [document]
        raise XQueryStaticError(f"unsupported computed constructor '{kind}'")

    def _constructor_name(self, expr: ast.ComputedConstructor, context: DynamicContext) -> str:
        if expr.name is None:
            raise XQueryStaticError(f"computed {expr.kind} constructor requires a name")
        value = self.evaluate(expr.name, context)
        return string_value_of_item(value[0]) if value else ""

    def _eval_ordered(self, expr: ast.OrderedExpr, context: DynamicContext) -> Sequence:
        return self.evaluate(expr.body, context)

    # ------------------------------------------------------------------ casts and types

    def _eval_cast(self, expr: ast.CastExpr, context: DynamicContext) -> Sequence:
        values = atomize(self.evaluate(expr.operand, context))
        if not values:
            if expr.optional:
                return []
            raise XQueryTypeError("cast of an empty sequence requires '?'")
        if len(values) > 1:
            raise XQueryTypeError("cast requires a singleton operand")
        return [cast_atomic(values[0], expr.target_type)]

    def _eval_instance_of(self, expr: ast.InstanceOfExpr, context: DynamicContext) -> Sequence:
        value = self.evaluate(expr.operand, context)
        return [matches_sequence_type(value, expr.sequence_type)]


# ---------------------------------------------------------------------------
# sequence type matching and casting
# ---------------------------------------------------------------------------


def matches_sequence_type(sequence: Sequence, sequence_type: ast.SequenceType) -> bool:
    """``instance of`` semantics for the supported sequence types."""
    count = len(sequence)
    if sequence_type.item_type == "empty-sequence":
        return count == 0
    occurrence = sequence_type.occurrence
    if occurrence == "" and count != 1:
        return False
    if occurrence == "?" and count > 1:
        return False
    if occurrence == "+" and count == 0:
        return False
    return all(_matches_item_type(item, sequence_type) for item in sequence)


def _matches_item_type(item: Any, sequence_type: ast.SequenceType) -> bool:
    item_type = sequence_type.item_type
    if item_type == "item":
        return True
    if item_type == "node":
        return is_node(item)
    if item_type == "element":
        return isinstance(item, ElementNode) and (
            sequence_type.name is None or item.name == sequence_type.name
        )
    if item_type == "attribute":
        return isinstance(item, AttributeNode) and (
            sequence_type.name is None or item.name == sequence_type.name
        )
    if item_type == "text":
        return isinstance(item, TextNode)
    if item_type == "comment":
        return isinstance(item, CommentNode)
    if item_type == "processing-instruction":
        return isinstance(item, ProcessingInstructionNode)
    if item_type == "document-node":
        return isinstance(item, DocumentNode)
    if item_type in ("xs:string", "string"):
        return isinstance(item, str) and not isinstance(item, UntypedAtomic)
    if item_type in ("xs:untypedAtomic", "untypedAtomic"):
        return isinstance(item, UntypedAtomic)
    if item_type in ("xs:integer", "integer"):
        return isinstance(item, int) and not isinstance(item, bool)
    if item_type in ("xs:double", "xs:decimal", "double", "decimal"):
        return isinstance(item, float) or (isinstance(item, int) and not isinstance(item, bool))
    if item_type in ("xs:boolean", "boolean"):
        return isinstance(item, bool)
    if item_type in ("xs:anyAtomicType", "anyAtomicType"):
        return not is_node(item)
    raise XQueryStaticError(f"unsupported sequence type '{item_type}'")


def cast_atomic(value: Any, target_type: str) -> Any:
    """``cast as`` for the basic atomic types."""
    target = target_type.split(":")[-1]
    if target == "string":
        return xs_string(value)
    if target == "integer":
        return xs_integer(value)
    if target in ("double", "decimal", "float"):
        return xs_double(value)
    if target == "boolean":
        return xs_boolean(value)
    if target == "untypedAtomic":
        return UntypedAtomic(xs_string(value))
    raise XQueryStaticError(f"unsupported cast target '{target_type}'")
