"""Recursive-descent parser for the XQuery subset.

The grammar follows XQuery 1.0 operator precedence for the constructs the
engine supports, plus the paper's ``with $x seeded by e recurse e`` form.
Several surface conveniences are desugared at parse time so that the
evaluator and the distributivity analyses only ever see a small core:

* multi-clause FLWORs become nested single-variable ``for``/``let`` nodes;
* ``where c return e`` becomes ``return if (c) then e else ()``;
* ``e1//e2`` becomes ``e1/descendant-or-self::node()/e2``;
* a leading ``/`` becomes an explicit :class:`~repro.xquery.ast.RootExpr`
  left operand of the binary path operator.

Direct element constructors switch the parser into character mode (see
:mod:`repro.xquery.lexer`), because inside ``<a>...</a>`` the input is
character content interleaved with ``{ enclosed expressions }``.
"""

from __future__ import annotations


from repro.errors import XQuerySyntaxError
from repro.xquery import ast
from repro.xquery.lexer import Lexer
from repro.xquery.tokens import Token, TokenKind

#: Axis names accepted in axis steps.
AXES = {
    "child", "descendant", "descendant-or-self", "self", "attribute",
    "parent", "ancestor", "ancestor-or-self",
    "following-sibling", "preceding-sibling", "following", "preceding",
}

#: Node-kind test names (reserved function names in step position).
KIND_TESTS = {
    "node", "text", "comment", "processing-instruction",
    "element", "attribute", "document-node",
}

#: Names that may not be used as (unprefixed) function names.
RESERVED_FUNCTION_NAMES = KIND_TESTS | {"if", "typeswitch", "item", "empty-sequence"}

_PREDEFINED_ENTITIES = {"amp": "&", "lt": "<", "gt": ">", "quot": '"', "apos": "'"}


class Parser:
    """Parses one query module (prolog + body expression)."""

    def __init__(self, text: str):
        self.lexer = Lexer(text)
        self._buffer: list[Token] = []

    # ------------------------------------------------------------------ token plumbing

    def _peek(self, offset: int = 0) -> Token:
        while len(self._buffer) <= offset:
            self._buffer.append(self.lexer.next_token())
        return self._buffer[offset]

    def _advance(self) -> Token:
        token = self._peek()
        self._buffer.pop(0)
        return token

    def _error(self, message: str, token: Token | None = None) -> XQuerySyntaxError:
        position = token.start if token is not None else self._peek().start
        return self.lexer.error(message, position)

    def _stamp(self, node: ast.Expr, token: Token) -> ast.Expr:
        """Record *token*'s source position on *node* (see ast.set_position).

        The static analyzer (:mod:`repro.analysis`) reads these stamps to
        report undefined variables/functions with line/column information.
        """
        line, column = self.lexer.line_column(token.start)
        ast.set_position(node, line, column)
        return node

    def _expect_symbol(self, symbol: str) -> Token:
        token = self._peek()
        if not token.is_symbol(symbol):
            raise self._error(f"expected '{symbol}', found {token.value!r}", token)
        return self._advance()

    def _expect_name(self, *names: str) -> Token:
        token = self._peek()
        if not token.is_name(*names):
            expected = " or ".join(repr(n) for n in names) if names else "a name"
            raise self._error(f"expected {expected}, found {token.value!r}", token)
        return self._advance()

    def _accept_symbol(self, symbol: str) -> bool:
        if self._peek().is_symbol(symbol):
            self._advance()
            return True
        return False

    def _accept_name(self, *names: str) -> bool:
        if self._peek().is_name(*names):
            self._advance()
            return True
        return False

    def _enter_char_mode(self, position: int) -> None:
        """Discard pending lookahead and continue scanning at *position*."""
        self._buffer.clear()
        self.lexer.pos = position

    # ------------------------------------------------------------------ module / prolog

    def parse_module(self) -> ast.Module:
        functions: list[ast.FunctionDecl] = []
        variables: list[ast.VariableDecl] = []
        while self._peek().is_name("declare"):
            keyword = self._peek(1)
            if keyword.is_name("function"):
                functions.append(self._parse_function_decl())
            elif keyword.is_name("variable"):
                variables.append(self._parse_variable_decl())
            else:
                raise self._error(
                    f"unsupported declaration 'declare {keyword.value}'", keyword
                )
        body = self.parse_expr()
        end = self._peek()
        if end.kind != TokenKind.EOF:
            raise self._error(f"unexpected content after query body: {end.value!r}", end)
        return ast.Module(functions=tuple(functions), variables=tuple(variables), body=body)

    def _parse_function_decl(self) -> ast.FunctionDecl:
        self._expect_name("declare")
        self._expect_name("function")
        name_token = self._expect_name()
        name = name_token.value
        self._expect_symbol("(")
        params: list[ast.Param] = []
        if not self._peek().is_symbol(")"):
            while True:
                self._expect_symbol("$")
                param_name = self._expect_name().value
                declared_type = None
                if self._accept_name("as"):
                    declared_type = self._parse_sequence_type()
                params.append(ast.Param(param_name, declared_type))
                if not self._accept_symbol(","):
                    break
        self._expect_symbol(")")
        return_type = None
        if self._accept_name("as"):
            return_type = self._parse_sequence_type()
        self._expect_symbol("{")
        body = self.parse_expr()
        self._expect_symbol("}")
        self._expect_symbol(";")
        declaration = ast.FunctionDecl(name=name, params=tuple(params), body=body,
                                       return_type=return_type)
        line, column = self.lexer.line_column(name_token.start)
        ast.set_position(declaration, line, column)
        return declaration

    def _parse_variable_decl(self) -> ast.VariableDecl:
        self._expect_name("declare")
        self._expect_name("variable")
        self._expect_symbol("$")
        name_token = self._expect_name()
        name = name_token.value
        declared_type = None
        if self._accept_name("as"):
            declared_type = self._parse_sequence_type()
        if self._accept_name("external"):
            self._expect_symbol(";")
            declaration = ast.VariableDecl(name=name, value=None, external=True,
                                           declared_type=declared_type)
        else:
            self._expect_symbol(":=")
            value = self.parse_expr_single()
            self._expect_symbol(";")
            declaration = ast.VariableDecl(name=name, value=value, declared_type=declared_type)
        line, column = self.lexer.line_column(name_token.start)
        ast.set_position(declaration, line, column)
        return declaration

    def _parse_sequence_type(self) -> ast.SequenceType:
        token = self._expect_name()
        type_name = token.value
        if type_name == "empty-sequence":
            self._expect_symbol("(")
            self._expect_symbol(")")
            return ast.SequenceType("empty-sequence")
        name: str | None = None
        if type_name in KIND_TESTS or type_name == "item":
            self._expect_symbol("(")
            if not self._peek().is_symbol(")"):
                inner = self._peek()
                if inner.is_symbol("*"):
                    self._advance()
                    name = None
                else:
                    name = self._expect_name().value
            self._expect_symbol(")")
        occurrence = ""
        nxt = self._peek()
        if nxt.is_symbol("?", "*", "+"):
            occurrence = self._advance().value
        return ast.SequenceType(type_name, occurrence, name)

    # ------------------------------------------------------------------ expressions

    def parse_expr(self) -> ast.Expr:
        items = [self.parse_expr_single()]
        while self._accept_symbol(","):
            items.append(self.parse_expr_single())
        if len(items) == 1:
            return items[0]
        return ast.SequenceExpr(tuple(items))

    def parse_expr_single(self) -> ast.Expr:
        token = self._peek()
        if token.is_name("for", "let") and self._peek(1).is_symbol("$"):
            return self._parse_flwor()
        if token.is_name("some", "every") and self._peek(1).is_symbol("$"):
            return self._parse_quantified()
        if token.is_name("typeswitch") and self._peek(1).is_symbol("("):
            return self._parse_typeswitch()
        if token.is_name("if") and self._peek(1).is_symbol("("):
            return self._parse_if()
        if token.is_name("with") and self._peek(1).is_symbol("$"):
            return self._parse_with()
        return self._parse_or()

    # -- FLWOR ------------------------------------------------------------------

    def _parse_flwor(self) -> ast.Expr:
        clauses: list[tuple] = []
        while True:
            token = self._peek()
            if token.is_name("for") and self._peek(1).is_symbol("$"):
                self._advance()
                while True:
                    self._expect_symbol("$")
                    var_token = self._expect_name()
                    var = var_token.value
                    position_var = None
                    if self._accept_name("at"):
                        self._expect_symbol("$")
                        position_var = self._expect_name().value
                    self._expect_name("in")
                    sequence = self.parse_expr_single()
                    clauses.append(("for", var, position_var, sequence, var_token))
                    if not self._accept_symbol(","):
                        break
            elif token.is_name("let") and self._peek(1).is_symbol("$"):
                self._advance()
                while True:
                    self._expect_symbol("$")
                    var_token = self._expect_name()
                    var = var_token.value
                    self._expect_symbol(":=")
                    value = self.parse_expr_single()
                    clauses.append(("let", var, None, value, var_token))
                    if not self._accept_symbol(","):
                        break
            else:
                break
        where: ast.Expr | None = None
        if self._accept_name("where"):
            where = self.parse_expr_single()
        if self._peek().is_name("order") or self._peek().is_name("stable"):
            raise self._error("'order by' is not supported by this XQuery subset")
        self._expect_name("return")
        body = self.parse_expr_single()
        if where is not None:
            body = ast.IfExpr(where, body, ast.EmptySequence())
        for kind, var, position_var, expr, var_token in reversed(clauses):
            if kind == "for":
                body = ast.ForExpr(var=var, sequence=expr, body=body, position_var=position_var)
            else:
                body = ast.LetExpr(var=var, value=expr, body=body)
            self._stamp(body, var_token)
        return body

    def _parse_quantified(self) -> ast.Expr:
        quantifier = self._expect_name("some", "every").value
        bindings: list[tuple[str, ast.Expr]] = []
        while True:
            self._expect_symbol("$")
            var = self._expect_name().value
            self._expect_name("in")
            sequence = self.parse_expr_single()
            bindings.append((var, sequence))
            if not self._accept_symbol(","):
                break
        self._expect_name("satisfies")
        satisfies = self.parse_expr_single()
        expr = satisfies
        for var, sequence in reversed(bindings):
            expr = ast.QuantifiedExpr(quantifier=quantifier, var=var, sequence=sequence, satisfies=expr)
        return expr

    def _parse_typeswitch(self) -> ast.Expr:
        self._expect_name("typeswitch")
        self._expect_symbol("(")
        operand = self.parse_expr()
        self._expect_symbol(")")
        cases: list[ast.TypeswitchCase] = []
        while self._peek().is_name("case"):
            self._advance()
            case_var = None
            if self._peek().is_symbol("$"):
                self._advance()
                case_var = self._expect_name().value
                self._expect_name("as")
            sequence_type = self._parse_sequence_type()
            self._expect_name("return")
            body = self.parse_expr_single()
            cases.append(ast.TypeswitchCase(sequence_type=sequence_type, body=body, var=case_var))
        if not cases:
            raise self._error("typeswitch requires at least one case clause")
        self._expect_name("default")
        default_var = None
        if self._peek().is_symbol("$"):
            self._advance()
            default_var = self._expect_name().value
        self._expect_name("return")
        default = self.parse_expr_single()
        return ast.TypeswitchExpr(operand=operand, cases=tuple(cases), default=default, default_var=default_var)

    def _parse_if(self) -> ast.Expr:
        self._expect_name("if")
        self._expect_symbol("(")
        condition = self.parse_expr()
        self._expect_symbol(")")
        self._expect_name("then")
        then_branch = self.parse_expr_single()
        self._expect_name("else")
        else_branch = self.parse_expr_single()
        return ast.IfExpr(condition, then_branch, else_branch)

    def _parse_with(self) -> ast.Expr:
        with_token = self._expect_name("with")
        self._expect_symbol("$")
        var = self._expect_name().value
        self._expect_name("seeded")
        self._expect_name("by")
        seed = self.parse_expr_single()
        self._expect_name("recurse")
        body = self.parse_expr_single()
        algorithm = "auto"
        if self._peek().is_name("using"):
            self._advance()
            algorithm = self._expect_name("naive", "delta", "auto").value
        return self._stamp(
            ast.WithExpr(var=var, seed=seed, body=body, algorithm=algorithm), with_token)

    # -- operator precedence chain ------------------------------------------------

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._peek().is_name("or"):
            self._advance()
            left = ast.OrExpr(left, self._parse_and())
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_comparison()
        while self._peek().is_name("and"):
            self._advance()
            left = ast.AndExpr(left, self._parse_comparison())
        return left

    def _parse_comparison(self) -> ast.Expr:
        left = self._parse_range()
        token = self._peek()
        if token.is_symbol("=", "!=", "<", "<=", ">", ">="):
            op = self._advance().value
            return ast.GeneralComparison(op, left, self._parse_range())
        if token.is_name("eq", "ne", "lt", "le", "gt", "ge"):
            op = self._advance().value
            return ast.ValueComparison(op, left, self._parse_range())
        if token.is_name("is") or token.is_symbol("<<", ">>"):
            op = self._advance().value
            return ast.NodeComparison(op, left, self._parse_range())
        return left

    def _parse_range(self) -> ast.Expr:
        left = self._parse_additive()
        if self._peek().is_name("to"):
            self._advance()
            return ast.RangeExpr(left, self._parse_additive())
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().is_symbol("+", "-"):
            op = self._advance().value
            left = ast.ArithmeticExpr(op, left, self._parse_multiplicative())
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_union()
        while True:
            token = self._peek()
            if token.is_symbol("*") or token.is_name("div", "idiv", "mod"):
                op = self._advance().value
                left = ast.ArithmeticExpr(op, left, self._parse_union())
            else:
                return left

    def _parse_union(self) -> ast.Expr:
        left = self._parse_intersect_except()
        while self._peek().is_name("union") or self._peek().is_symbol("|"):
            self._advance()
            left = ast.UnionExpr(left, self._parse_intersect_except())
        return left

    def _parse_intersect_except(self) -> ast.Expr:
        left = self._parse_instance_of()
        while self._peek().is_name("intersect", "except"):
            op = self._advance().value
            right = self._parse_instance_of()
            if op == "intersect":
                left = ast.IntersectExpr(left, right)
            else:
                left = ast.ExceptExpr(left, right)
        return left

    def _parse_instance_of(self) -> ast.Expr:
        left = self._parse_cast()
        if self._peek().is_name("instance") and self._peek(1).is_name("of"):
            self._advance()
            self._advance()
            sequence_type = self._parse_sequence_type()
            return ast.InstanceOfExpr(left, sequence_type)
        return left

    def _parse_cast(self) -> ast.Expr:
        left = self._parse_unary()
        if self._peek().is_name("cast") and self._peek(1).is_name("as"):
            self._advance()
            self._advance()
            target = self._expect_name().value
            optional = self._accept_symbol("?")
            return ast.CastExpr(left, target, optional)
        return left

    def _parse_unary(self) -> ast.Expr:
        if self._peek().is_symbol("-", "+"):
            op = self._advance().value
            return ast.UnaryExpr(op, self._parse_unary())
        return self._parse_path()

    # -- paths ---------------------------------------------------------------------

    def _parse_path(self) -> ast.Expr:
        token = self._peek()
        if token.is_symbol("//"):
            self._advance()
            left = ast.PathExpr(
                ast.RootExpr(),
                ast.AxisStep("descendant-or-self", ast.NodeTest("node")),
            )
            return self._parse_relative_path(left)
        if token.is_symbol("/"):
            self._advance()
            if self._starts_step():
                return self._parse_relative_path(ast.RootExpr())
            return ast.RootExpr()
        return self._parse_relative_path(None)

    def _starts_step(self) -> bool:
        token = self._peek()
        if token.kind in (TokenKind.NAME, TokenKind.STRING, TokenKind.INTEGER,
                          TokenKind.DECIMAL, TokenKind.DOUBLE):
            return True
        return token.is_symbol("$", "(", ".", "..", "@", "*", "<")

    def _parse_relative_path(self, left: ast.Expr | None) -> ast.Expr:
        expr = self._parse_step() if left is None else ast.PathExpr(left, self._parse_step())
        while True:
            if self._peek().is_symbol("/"):
                self._advance()
                expr = ast.PathExpr(expr, self._parse_step())
            elif self._peek().is_symbol("//"):
                self._advance()
                expr = ast.PathExpr(
                    expr, ast.AxisStep("descendant-or-self", ast.NodeTest("node"))
                )
                expr = ast.PathExpr(expr, self._parse_step())
            else:
                return expr

    def _parse_step(self) -> ast.Expr:
        token = self._peek()
        if token.is_symbol(".."):
            self._advance()
            return ast.AxisStep("parent", ast.NodeTest("node"), tuple(self._parse_predicates()))
        if token.is_symbol("@"):
            self._advance()
            node_test = self._parse_node_test(default_kind="attribute-name")
            return ast.AxisStep("attribute", node_test, tuple(self._parse_predicates()))
        if token.kind == TokenKind.NAME and self._peek(1).is_symbol("::"):
            axis = token.value
            if axis not in AXES:
                raise self._error(f"unknown axis '{axis}'", token)
            self._advance()
            self._advance()
            node_test = self._parse_node_test()
            return ast.AxisStep(axis, node_test, tuple(self._parse_predicates()))
        if token.is_symbol("*"):
            self._advance()
            return ast.AxisStep("child", ast.NodeTest("name", "*"), tuple(self._parse_predicates()))
        if token.kind == TokenKind.NAME:
            name = token.value
            follows_paren = self._peek(1).is_symbol("(")
            if follows_paren and name in KIND_TESTS:
                node_test = self._parse_node_test()
                return ast.AxisStep("child", node_test, tuple(self._parse_predicates()))
            if not follows_paren and not self._is_constructor_keyword(token):
                self._advance()
                return ast.AxisStep("child", ast.NodeTest("name", name), tuple(self._parse_predicates()))
        primary = self._parse_primary()
        predicates = self._parse_predicates()
        if predicates:
            return ast.FilterExpr(primary, tuple(predicates))
        return primary

    def _is_constructor_keyword(self, token: Token) -> bool:
        """Computed-constructor keywords used *as* constructors (not as names)."""
        if token.value not in ("element", "attribute", "text", "comment", "document", "ordered", "unordered"):
            return False
        nxt = self._peek(1)
        if nxt.is_symbol("{"):
            return True
        if token.value in ("element", "attribute") and nxt.kind == TokenKind.NAME and self._peek(2).is_symbol("{"):
            return True
        return False

    def _parse_node_test(self, default_kind: str = "name") -> ast.NodeTest:
        token = self._peek()
        if token.is_symbol("*"):
            self._advance()
            return ast.NodeTest("name", "*")
        name_token = self._expect_name()
        name = name_token.value
        if self._peek().is_symbol("(") and name in KIND_TESTS:
            self._advance()
            inner: str | None = None
            if not self._peek().is_symbol(")"):
                if self._peek().is_symbol("*"):
                    self._advance()
                else:
                    inner = self._expect_name().value
            self._expect_symbol(")")
            return ast.NodeTest(name, inner)
        return ast.NodeTest("name", name)

    def _parse_predicates(self) -> list[ast.Expr]:
        predicates: list[ast.Expr] = []
        while self._peek().is_symbol("["):
            self._advance()
            predicates.append(self.parse_expr())
            self._expect_symbol("]")
        return predicates

    # -- primary expressions ---------------------------------------------------------

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind == TokenKind.STRING:
            self._advance()
            return ast.Literal(token.value)
        if token.kind == TokenKind.INTEGER:
            self._advance()
            return ast.Literal(int(token.value))
        if token.kind in (TokenKind.DECIMAL, TokenKind.DOUBLE):
            self._advance()
            return ast.Literal(float(token.value))
        if token.is_symbol("$"):
            self._advance()
            name = self._expect_name().value
            return self._stamp(ast.VarRef(name), token)
        if token.is_symbol("("):
            self._advance()
            if self._accept_symbol(")"):
                return ast.EmptySequence()
            expr = self.parse_expr()
            self._expect_symbol(")")
            return expr
        if token.is_symbol("."):
            self._advance()
            return ast.ContextItem()
        if token.is_symbol("<"):
            return self._parse_direct_constructor()
        if token.kind == TokenKind.NAME:
            if self._is_constructor_keyword(token):
                return self._parse_computed_constructor()
            if self._peek(1).is_symbol("("):
                return self._parse_function_call()
        raise self._error(f"unexpected token {token.value!r}", token)

    def _parse_function_call(self) -> ast.Expr:
        name_token = self._expect_name()
        name = name_token.value
        if name in RESERVED_FUNCTION_NAMES:
            raise self._error(f"'{name}' may not be used as a function name", name_token)
        self._expect_symbol("(")
        args: list[ast.Expr] = []
        if not self._peek().is_symbol(")"):
            while True:
                args.append(self.parse_expr_single())
                if not self._accept_symbol(","):
                    break
        self._expect_symbol(")")
        return self._stamp(ast.FunctionCall(name, tuple(args)), name_token)

    def _parse_computed_constructor(self) -> ast.Expr:
        keyword = self._expect_name().value
        if keyword in ("ordered", "unordered"):
            self._expect_symbol("{")
            body = self.parse_expr()
            self._expect_symbol("}")
            return ast.OrderedExpr(keyword, body)
        name_expr: ast.Expr | None = None
        if keyword in ("element", "attribute"):
            if self._peek().kind == TokenKind.NAME:
                name_expr = ast.Literal(self._advance().value)
            else:
                self._expect_symbol("{")
                name_expr = self.parse_expr()
                self._expect_symbol("}")
        self._expect_symbol("{")
        content: ast.Expr | None = None
        if not self._peek().is_symbol("}"):
            content = self.parse_expr()
        self._expect_symbol("}")
        return ast.ComputedConstructor(kind=keyword, name=name_expr, content=content)

    # -- direct element constructors (character mode) ----------------------------------

    def _parse_direct_constructor(self) -> ast.Expr:
        open_token = self._expect_symbol("<")
        self._enter_char_mode(open_token.end)
        element = self._parse_direct_element()
        return element

    def _char(self, offset: int = 0) -> str:
        return self.lexer.peek_char(offset)

    def _parse_direct_element(self) -> ast.DirectElementConstructor:
        name = self._scan_xml_name()
        attributes: list[ast.AttributeConstructor] = []
        while True:
            self._skip_xml_space()
            char = self._char()
            if char in ("/", ">") or not char:
                break
            attributes.append(self._parse_direct_attribute())
        if self._char() == "/" and self._char(1) == ">":
            self.lexer.pos += 2
            return ast.DirectElementConstructor(name, tuple(attributes), ())
        if self._char() != ">":
            raise self.lexer.error(f"malformed start tag for <{name}>")
        self.lexer.pos += 1
        content = self._parse_direct_content(name)
        return ast.DirectElementConstructor(name, tuple(attributes), tuple(content))

    def _parse_direct_attribute(self) -> ast.AttributeConstructor:
        name = self._scan_xml_name()
        self._skip_xml_space()
        if self._char() != "=":
            raise self.lexer.error(f"expected '=' after attribute '{name}'")
        self.lexer.pos += 1
        self._skip_xml_space()
        quote = self._char()
        if quote not in ('"', "'"):
            raise self.lexer.error("attribute value must be quoted")
        self.lexer.pos += 1
        parts: list[ast.Expr] = []
        buffer: list[str] = []
        while True:
            char = self._char()
            if not char:
                raise self.lexer.error("unterminated attribute value")
            if char == quote:
                self.lexer.pos += 1
                break
            if char == "{":
                if self._char(1) == "{":
                    buffer.append("{")
                    self.lexer.pos += 2
                    continue
                if buffer:
                    parts.append(ast.Literal("".join(buffer)))
                    buffer = []
                parts.append(self._parse_enclosed_expr())
                continue
            if char == "}" and self._char(1) == "}":
                buffer.append("}")
                self.lexer.pos += 2
                continue
            if char == "&":
                buffer.append(self._scan_xml_entity())
                continue
            buffer.append(char)
            self.lexer.pos += 1
        if buffer:
            parts.append(ast.Literal("".join(buffer)))
        return ast.AttributeConstructor(name, tuple(parts))

    def _parse_direct_content(self, element_name: str) -> list[ast.Expr]:
        content: list[ast.Expr] = []
        buffer: list[str] = []

        def flush() -> None:
            if buffer:
                text = "".join(buffer)
                buffer.clear()
                if text.strip():
                    content.append(ast.Literal(text))

        while True:
            char = self._char()
            if not char:
                raise self.lexer.error(f"unterminated element constructor <{element_name}>")
            if char == "<" and self._char(1) == "/":
                flush()
                self.lexer.pos += 2
                end_name = self._scan_xml_name()
                if end_name != element_name:
                    raise self.lexer.error(
                        f"mismatched constructor end tag </{end_name}> (expected </{element_name}>)"
                    )
                self._skip_xml_space()
                if self._char() != ">":
                    raise self.lexer.error("malformed constructor end tag")
                self.lexer.pos += 1
                return content
            if char == "<" and self.lexer.text.startswith("<!--", self.lexer.pos):
                flush()
                end = self.lexer.text.find("-->", self.lexer.pos)
                if end < 0:
                    raise self.lexer.error("unterminated comment in constructor")
                self.lexer.pos = end + 3
                continue
            if char == "<":
                flush()
                self.lexer.pos += 1
                content.append(self._parse_direct_element())
                continue
            if char == "{":
                if self._char(1) == "{":
                    buffer.append("{")
                    self.lexer.pos += 2
                    continue
                flush()
                content.append(self._parse_enclosed_expr())
                continue
            if char == "}" and self._char(1) == "}":
                buffer.append("}")
                self.lexer.pos += 2
                continue
            if char == "&":
                buffer.append(self._scan_xml_entity())
                continue
            buffer.append(char)
            self.lexer.pos += 1

    def _parse_enclosed_expr(self) -> ast.Expr:
        # positioned at '{': switch to token mode for the enclosed expression
        self.lexer.pos += 1
        self._buffer.clear()
        expr = self.parse_expr()
        closing = self._expect_symbol("}")
        self._enter_char_mode(closing.end)
        return expr

    def _scan_xml_name(self) -> str:
        start = self.lexer.pos
        char = self._char()
        if not (char.isalpha() or char in "_:"):
            raise self.lexer.error("expected a name in element constructor")
        self.lexer.pos += 1
        while self._char() and (self._char().isalnum() or self._char() in "_:-."):
            self.lexer.pos += 1
        return self.lexer.text[start:self.lexer.pos]

    def _scan_xml_entity(self) -> str:
        end = self.lexer.text.find(";", self.lexer.pos)
        if end < 0:
            raise self.lexer.error("unterminated entity reference in constructor")
        entity = self.lexer.text[self.lexer.pos + 1:end]
        self.lexer.pos = end + 1
        if entity.startswith("#x") or entity.startswith("#X"):
            return chr(int(entity[2:], 16))
        if entity.startswith("#"):
            return chr(int(entity[1:]))
        if entity in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[entity]
        raise self.lexer.error(f"unknown entity '&{entity};' in constructor")

    def _skip_xml_space(self) -> None:
        while self._char() in " \t\r\n" and self._char():
            self.lexer.pos += 1


# ---------------------------------------------------------------------------
# public helpers
# ---------------------------------------------------------------------------


def parse_query(text: str) -> ast.Module:
    """Parse a complete query (prolog + body) into a :class:`~repro.xquery.ast.Module`."""
    return Parser(text).parse_module()


def parse_expression(text: str) -> ast.Expr:
    """Parse a single expression (no prolog)."""
    parser = Parser(text)
    expr = parser.parse_expr()
    trailing = parser._peek()
    if trailing.kind != TokenKind.EOF:
        raise parser._error(f"unexpected content after expression: {trailing.value!r}", trailing)
    return expr
