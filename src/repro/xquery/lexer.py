"""Streaming tokenizer for the XQuery subset.

The lexer is *streaming* (pull-based) rather than batch because XQuery's
grammar is not context free at the lexical level: a ``<`` can start either a
comparison or a direct element constructor, and inside a constructor the
input is character data, not tokens.  The parser therefore drives the lexer,
and for direct constructors it temporarily takes over at the character level
(via :attr:`Lexer.pos`) before resuming token mode.

XQuery comments ``(: ... :)`` nest and are skipped as whitespace.
"""

from __future__ import annotations

from repro.errors import XQuerySyntaxError
from repro.xquery.tokens import MULTI_CHAR_SYMBOLS, SINGLE_CHAR_SYMBOLS, Token, TokenKind

_PREDEFINED_ENTITIES = {
    "amp": "&",
    "lt": "<",
    "gt": ">",
    "quot": '"',
    "apos": "'",
}


def _is_name_start(char: str) -> bool:
    return char.isalpha() or char == "_"


def _is_name_char(char: str) -> bool:
    return char.isalnum() or char in "_-."


class Lexer:
    """Pull-based tokenizer over a query string."""

    def __init__(self, text: str):
        self.text = text
        self.pos = 0

    # -- character-level helpers (also used by the parser for constructors) --

    def line_column(self, pos: int) -> tuple[int, int]:
        """1-based (line, column) of character offset *pos* in the query."""
        line = self.text.count("\n", 0, pos) + 1
        column = pos - self.text.rfind("\n", 0, pos)
        return line, column

    def error(self, message: str, pos: int | None = None) -> XQuerySyntaxError:
        position = self.pos if pos is None else pos
        line, column = self.line_column(position)
        return XQuerySyntaxError(f"{message} at line {line}, column {column}")

    def at_end(self) -> bool:
        return self.pos >= len(self.text)

    def peek_char(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < len(self.text) else ""

    def skip_ignorable(self) -> None:
        """Skip whitespace and (nested) XQuery comments."""
        while self.pos < len(self.text):
            char = self.text[self.pos]
            if char in " \t\r\n":
                self.pos += 1
            elif char == "(" and self.peek_char(1) == ":":
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self.pos
        depth = 0
        while self.pos < len(self.text):
            if self.text.startswith("(:", self.pos):
                depth += 1
                self.pos += 2
            elif self.text.startswith(":)", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    return
            else:
                self.pos += 1
        raise self.error("unterminated comment", start)

    # -- token-level interface ------------------------------------------------

    def next_token(self) -> Token:
        """Scan and return the next token (EOF token at end of input)."""
        self.skip_ignorable()
        if self.at_end():
            return Token(TokenKind.EOF, "", self.pos, self.pos)
        start = self.pos
        char = self.text[self.pos]

        if char in "\"'":
            return self._scan_string(char)
        if char.isdigit() or (char == "." and self.peek_char(1).isdigit()):
            return self._scan_number()
        if _is_name_start(char):
            return self._scan_name()
        for symbol in MULTI_CHAR_SYMBOLS:
            if self.text.startswith(symbol, self.pos):
                self.pos += len(symbol)
                return Token(TokenKind.SYMBOL, symbol, start, self.pos)
        if char in SINGLE_CHAR_SYMBOLS:
            self.pos += 1
            return Token(TokenKind.SYMBOL, char, start, self.pos)
        raise self.error(f"unexpected character {char!r}")

    def _scan_string(self, quote: str) -> Token:
        start = self.pos
        self.pos += 1
        parts: list[str] = []
        while True:
            if self.at_end():
                raise self.error("unterminated string literal", start)
            char = self.text[self.pos]
            if char == quote:
                if self.peek_char(1) == quote:  # doubled quote escape
                    parts.append(quote)
                    self.pos += 2
                    continue
                self.pos += 1
                return Token(TokenKind.STRING, "".join(parts), start, self.pos)
            if char == "&":
                parts.append(self._scan_entity_reference())
                continue
            parts.append(char)
            self.pos += 1

    def _scan_entity_reference(self) -> str:
        start = self.pos
        end = self.text.find(";", self.pos)
        if end < 0:
            raise self.error("unterminated entity reference", start)
        entity = self.text[self.pos + 1:end]
        self.pos = end + 1
        if entity.startswith("#x") or entity.startswith("#X"):
            return chr(int(entity[2:], 16))
        if entity.startswith("#"):
            return chr(int(entity[1:]))
        if entity in _PREDEFINED_ENTITIES:
            return _PREDEFINED_ENTITIES[entity]
        raise self.error(f"unknown entity reference '&{entity};'", start)

    def _scan_number(self) -> Token:
        start = self.pos
        kind = TokenKind.INTEGER
        while self.peek_char().isdigit():
            self.pos += 1
        if self.peek_char() == "." and self.peek_char(1).isdigit():
            kind = TokenKind.DECIMAL
            self.pos += 1
            while self.peek_char().isdigit():
                self.pos += 1
        if self.peek_char() in "eE" and (
            self.peek_char(1).isdigit()
            or (self.peek_char(1) in "+-" and self.peek_char(2).isdigit())
        ):
            kind = TokenKind.DOUBLE
            self.pos += 1
            if self.peek_char() in "+-":
                self.pos += 1
            while self.peek_char().isdigit():
                self.pos += 1
        return Token(kind, self.text[start:self.pos], start, self.pos)

    def _scan_name(self) -> Token:
        start = self.pos
        self.pos += 1
        while self.pos < len(self.text) and _is_name_char(self.text[self.pos]):
            self.pos += 1
        # QName: prefix:local — only if the colon is immediately followed by a
        # name start character and not part of '::' (axis separator).
        if (
            self.peek_char() == ":"
            and self.peek_char(1) != ":"
            and _is_name_start(self.peek_char(1))
            and not self.text.startswith(":=", self.pos)
        ):
            self.pos += 1
            while self.pos < len(self.text) and _is_name_char(self.text[self.pos]):
                self.pos += 1
        return Token(TokenKind.NAME, self.text[start:self.pos], start, self.pos)
