"""Column-at-a-time storage backend for the algebra.

:class:`ColumnarTable` stores each column of an ``iter|pos|item`` table as
one contiguous Python list.  Column lists are immutable by convention and
shared, never copied, between derived tables, which makes the operators the
loop-lifting compiler emits in bulk nearly free:

* **projection/renaming** re-labels column references — O(number of columns),
  independent of row count;
* **scalar maps** (⊚, atomization, row tagging) compute exactly one new
  column and alias the rest;
* **joins** are hash joins over the key columns only, gathering the payload
  columns through index lists;
* **duplicate elimination, difference and aggregation** hash the relevant
  columns without materialising row tuples.

Node references are hashed by identity (see
:func:`repro.algebra.storage.hashable`), mirroring the row backend, so both
backends agree on equality semantics — the equivalence test suite in
``tests/test_algebra_backends.py`` holds them to identical results.
"""

from __future__ import annotations

from collections import Counter
from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.errors import AlgebraError
from repro.algebra.storage import (
    TableStorage,
    apply_aggregate,
    hashable,
    register_backend,
    sort_key,
)


class ColumnarTable(TableStorage):
    """A relational table stored as one list per column."""

    __slots__ = ("columns", "_data", "_length")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()):
        self.columns = tuple(columns)
        width = len(self.columns)
        data: tuple[list, ...] = tuple([] for _ in range(width))
        length = 0
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise AlgebraError(
                    f"row {row_tuple!r} does not match schema {self.columns!r}"
                )
            for values, value in zip(data, row_tuple):
                values.append(value)
            length += 1
        self._data = data
        self._length = length

    # -- construction ---------------------------------------------------------------

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()) -> "ColumnarTable":
        return cls(columns, rows)

    @classmethod
    def from_columns(cls, columns: Sequence[str], data: Sequence[list]) -> "ColumnarTable":
        """Wrap existing column lists without copying (internal fast path)."""
        table = cls.__new__(cls)
        table.columns = tuple(columns)
        table._data = tuple(data)
        table._length = len(data[0]) if data else 0
        return table

    # -- accessors --------------------------------------------------------------------

    def __len__(self) -> int:
        return self._length

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        return zip(*self._data) if self._data else iter(())

    @property
    def rows(self) -> tuple[tuple[Any, ...], ...]:
        return tuple(self.iter_rows())

    def column_values(self, name: str) -> list[Any]:
        return list(self._data[self.column_index(name)])

    def column(self, name: str) -> list:
        """The raw (shared, do-not-mutate) column list."""
        return self._data[self.column_index(name)]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.iter_rows()]

    # -- columnar kernels -----------------------------------------------------------

    def project(self, mapping: Sequence[tuple[str, str]]) -> "ColumnarTable":
        data = [self._data[self.column_index(old)] for _new, old in mapping]
        table = ColumnarTable.__new__(ColumnarTable)
        table.columns = tuple(new for new, _old in mapping)
        table._data = tuple(data)
        table._length = self._length
        return table

    def select(self, predicate: Callable[[dict], bool]) -> "ColumnarTable":
        keep = [i for i, row in enumerate(self.as_dicts()) if predicate(row)]
        return self._gather(keep)

    def select_flag(self, column: str) -> "ColumnarTable":
        flags = self._data[self.column_index(column)]
        keep = [i for i, flag in enumerate(flags) if flag]
        if len(keep) == self._length:
            return self
        return self._gather(keep)

    def select_computed(self, sources: Sequence[str],
                        function: Callable[..., Any]) -> "ColumnarTable":
        """Fused σ∘⊚ over the raw source columns — one map over the column
        lists, no flag column, no intermediate table."""
        if sources:
            source_columns = [self._data[self.column_index(c)] for c in sources]
            keep = [i for i, flag in enumerate(map(function, *source_columns))
                    if flag]
        else:
            keep = list(range(self._length)) if function() else []
        if len(keep) == self._length:
            return self
        return self._gather(keep)

    def extend(self, column: str, func: Callable[[dict], Any]) -> "ColumnarTable":
        new_column = [func(row) for row in self.as_dicts()]
        return self._with_extra_column(column, new_column)

    def extend_computed(self, result: str, sources: Sequence[str],
                        function: Callable[..., Any]) -> "ColumnarTable":
        if sources:
            source_columns = [self._data[self.column_index(c)] for c in sources]
            new_column = list(map(function, *source_columns))
        else:
            new_column = [function() for _ in range(self._length)]
        return self._with_extra_column(result, new_column)

    def map_column(self, column: str, function: Callable[[Any], Any]) -> "ColumnarTable":
        index = self.column_index(column)
        data = list(self._data)
        data[index] = [function(value) for value in data[index]]
        return ColumnarTable.from_columns(self.columns, data)

    def tag_rows(self, result: str, tag_base: int) -> "ColumnarTable":
        return self._with_extra_column(result, list(range(tag_base, tag_base + self._length)))

    def distinct(self) -> "ColumnarTable":
        seen: set = set()
        keep: list[int] = []
        add = seen.add
        for index, key in enumerate(self._key_iter(range(len(self.columns)))):
            if key not in seen:
                add(key)
                keep.append(index)
        if len(keep) == self._length:
            return self
        return self._gather(keep)

    def union_all(self, other: TableStorage) -> "ColumnarTable":
        self._check_union_compatible(other)
        other = _as_columnar(other)
        if other._length == 0:
            return self
        if self._length == 0:
            return other
        data = [mine + theirs for mine, theirs in zip(self._data, other._data)]
        return ColumnarTable.from_columns(self.columns, data)

    def difference(self, other: TableStorage) -> "ColumnarTable":
        self._check_union_compatible(other, verb="difference")
        other = _as_columnar(other)
        all_indices = range(len(self.columns))
        remove = Counter(other._key_iter(all_indices))
        keep = []
        for index, key in enumerate(self._key_iter(all_indices)):
            if remove[key] > 0:
                remove[key] -= 1
                continue
            keep.append(index)
        return self._gather(keep)

    def sort_by(self, columns: Sequence[str]) -> "ColumnarTable":
        key_columns = [self._data[self.column_index(name)] for name in columns]
        order = sorted(
            range(self._length),
            key=lambda i: tuple(sort_key(column[i]) for column in key_columns),
        )
        return self._gather(order)

    # -- joins -----------------------------------------------------------------------

    def hash_join(self, other: TableStorage,
                  conditions: Sequence[tuple[str, str]]) -> "ColumnarTable":
        other = _as_columnar(other)
        out_columns, right_keep = self._join_layout(other)
        left_keys = [self._data[self.column_index(l)] for l, _r in conditions]
        right_keys = [other._data[other.column_index(r)] for _l, r in conditions]

        index: dict[Any, list[int]] = {}
        if len(conditions) == 1:
            right_key_column = right_keys[0]
            for i in range(other._length):
                index.setdefault(hashable(right_key_column[i]), []).append(i)
            left_key_column = left_keys[0]
            left_key_of = (hashable(left_key_column[i]) for i in range(self._length))
        else:
            for i in range(other._length):
                key = tuple(hashable(column[i]) for column in right_keys)
                index.setdefault(key, []).append(i)
            left_key_of = (
                tuple(hashable(column[i]) for column in left_keys)
                for i in range(self._length)
            )

        left_take: list[int] = []
        right_take: list[int] = []
        get = index.get
        for i, key in enumerate(left_key_of):
            matches = get(key)
            if matches:
                left_take.extend([i] * len(matches))
                right_take.extend(matches)

        data = [[column[i] for i in left_take] for column in self._data]
        data.extend([other._data[j][i] for i in right_take] for j in right_keep)
        return ColumnarTable.from_columns(out_columns, data)

    def theta_join(self, other: TableStorage, conditions: Sequence[tuple[str, str]],
                   compare: Callable[[Any, Any], bool]) -> "ColumnarTable":
        other = _as_columnar(other)
        out_columns, right_keep = self._join_layout(other)
        left_keys = [self._data[self.column_index(l)] for l, _r in conditions]
        right_keys = [other._data[other.column_index(r)] for _l, r in conditions]
        left_take: list[int] = []
        right_take: list[int] = []
        for i in range(self._length):
            for j in range(other._length):
                if all(compare(lk[i], rk[j]) for lk, rk in zip(left_keys, right_keys)):
                    left_take.append(i)
                    right_take.append(j)
        data = [[column[i] for i in left_take] for column in self._data]
        data.extend([other._data[j][i] for i in right_take] for j in right_keep)
        return ColumnarTable.from_columns(out_columns, data)

    def cross(self, other: TableStorage) -> "ColumnarTable":
        other = _as_columnar(other)
        out_columns, right_keep = self._join_layout(other)
        n, m = self._length, other._length
        data = [[column[i] for i in range(n) for _ in range(m)] for column in self._data]
        data.extend([other._data[j][i] for _ in range(n) for i in range(m)]
                    for j in right_keep)
        return ColumnarTable.from_columns(out_columns, data)

    # -- grouping ---------------------------------------------------------------------

    def aggregate(self, kind: str, group_by: Sequence[str], source: str | None,
                  result: str, loop_iters: list | None = None) -> "ColumnarTable":
        group_by = tuple(group_by)
        group_columns = [self._data[self.column_index(c)] for c in group_by]
        source_column = (self._data[self.column_index(source)]
                         if source else [1] * self._length)
        groups: dict[tuple, list] = {}
        for i in range(self._length):
            key = tuple(column[i] for column in group_columns)
            groups.setdefault(key, []).append(source_column[i])
        if loop_iters is not None:
            for value in loop_iters:
                groups.setdefault((value,) if len(group_by) == 1 else tuple(), [])
        width = len(group_by)
        data: list[list] = [[] for _ in range(width + 1)]
        for key, values in groups.items():
            for j in range(width):
                data[j].append(key[j])
            data[width].append(apply_aggregate(kind, values))
        return ColumnarTable.from_columns(group_by + (result,), data)

    # -- iter/item helpers --------------------------------------------------------------

    def iter_item_pairs(self) -> Iterator[tuple[Any, Any]]:
        return zip(self._data[self.column_index("iter")],
                   self._data[self.column_index("item")])

    def items_by_iteration(self) -> tuple[dict, list]:
        """Columnar grouping: read the two raw columns directly — the
        common single-iteration case (fixpoint bodies) returns the shared
        item column without any per-row work."""
        iter_column = self._data[self.column_index("iter")]
        item_column = self._data[self.column_index("item")]
        if not iter_column:
            return {}, []
        first = iter_column[0]
        if all(value == first for value in iter_column):
            return {first: list(item_column)}, [first]
        per_iteration: dict[Any, list] = {}
        order: list = []
        for iteration, item in zip(iter_column, item_column):
            bucket = per_iteration.get(iteration)
            if bucket is None:
                bucket = per_iteration[iteration] = []
                order.append(iteration)
            bucket.append(item)
        return per_iteration, order

    # -- internals -----------------------------------------------------------------------

    def _gather(self, indices: list[int]) -> "ColumnarTable":
        data = [[column[i] for i in indices] for column in self._data]
        return ColumnarTable.from_columns(self.columns, data)

    def _with_extra_column(self, name: str, values: list) -> "ColumnarTable":
        return ColumnarTable.from_columns(self.columns + (name,), list(self._data) + [values])

    def _key_iter(self, column_indices) -> Iterator[tuple]:
        hashed = [[hashable(value) for value in self._data[i]] for i in column_indices]
        if not hashed:
            return iter(() for _ in range(self._length))
        return zip(*hashed)


def _as_columnar(table: TableStorage) -> ColumnarTable:
    if isinstance(table, ColumnarTable):
        return table
    return ColumnarTable(table.columns, table.iter_rows())


register_backend("columnar", ColumnarTable)
