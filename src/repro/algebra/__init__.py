"""Relational XQuery backend (Section 4 of the paper).

The Pathfinder project compiles XQuery to DAG-shaped relational algebra
plans over flat ``iter|pos|item`` tables; the paper exploits that
representation in two ways, both reproduced here:

1. **Algebraic distributivity check** — replace the recursion body's input
   by a union and push the union up through the plan (Figures 7/8).  The
   push succeeds exactly through the operators marked as push-able in
   Table 1; aggregates, difference, row numbering and node constructors
   block it.  See :mod:`repro.algebra.distributivity`.
2. **Fixpoint operators µ and µ∆** — the algebraic counterparts of
   algorithms Naive and Delta.  The interpreted algebra engine in
   :mod:`repro.algebra.evaluator` executes plans containing them and counts
   the rows fed back per iteration, mirroring Table 2's node counts.

The compiler (:mod:`repro.algebra.compiler`) implements a loop-lifting
translation for the XQuery core needed by the paper's queries: FLWOR,
paths/steps, ``fn:id``, value joins, ``count``/``empty``, conditionals,
sequence/union/except, literals and the ``with … recurse`` form.  Like the
paper, it treats the XPath step join and the ``id()`` lookup as macro
operators ("micro plans") rather than expanding them to textbook joins.
"""

from repro.algebra.storage import TableStorage, available_backends, resolve_backend
from repro.algebra.table import Table, Column
from repro.algebra.columnar import ColumnarTable
from repro.algebra.operators import Operator
from repro.algebra.compiler import AlgebraCompiler, compile_expression, compile_recursion_body
from repro.algebra.evaluator import AlgebraEvaluator
from repro.algebra.distributivity import (
    is_distributive_algebraic,
    analyze_plan_distributivity,
    PushUpReport,
)

__all__ = [
    "Table",
    "ColumnarTable",
    "TableStorage",
    "Column",
    "Operator",
    "AlgebraCompiler",
    "compile_expression",
    "compile_recursion_body",
    "AlgebraEvaluator",
    "available_backends",
    "resolve_backend",
    "is_distributive_algebraic",
    "analyze_plan_distributivity",
    "PushUpReport",
]
