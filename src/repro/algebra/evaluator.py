"""Interpreted evaluation of algebra plans, including µ and µ∆.

The engine evaluates a plan DAG bottom-up with memoisation (shared subplans
are computed once).  Fixpoint operators are handled by the engine itself:
the body plan is re-evaluated once per iteration with the
:class:`~repro.algebra.operators.RecursionInput` leaf rebound — to the whole
accumulated result for µ (algorithm Naive) or to the per-round delta for µ∆
(algorithm Delta).  The engine counts the rows fed into the body per
iteration, which is the algebraic counterpart of Table 2's "total number of
nodes fed back".

Two execution details worth knowing:

* **Pluggable storage** — the evaluator is constructed with a table
  ``backend`` (``"row"`` or ``"columnar"``, see
  :mod:`repro.algebra.storage`); operators dispatch through the storage
  protocol, and leaf tables compiled with a different backend are adopted
  (converted) on first use.
* **Per-run state** — every :meth:`AlgebraEvaluator.evaluate_plan` call
  runs in a fresh :class:`_PlanRun` with its own memo cache, recursion
  binding and statistics, so nested or repeated evaluations cannot leak
  fixpoint bindings into each other.  ``AlgebraEvaluator.statistics``
  remains the cumulative view across runs (what the benchmark harness
  reads); ``last_run_statistics`` is the freshest single run.

Inside the fixpoint loop the accumulated result is maintained as an
identity-keyed set plus insertion-ordered item list (a *delta-aware
union*): each round only the genuinely new items are appended and fed back,
and the document-order sort (``ddo``) happens once on the final result
instead of once per round.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Sequence

from repro import faults
from repro.errors import AlgebraError
from repro.algebra.operators import AlgebraEngineProtocol, Fixpoint, Operator
from repro.algebra.storage import TableStorage, resolve_backend
from repro.fixpoint.stats import FixpointStatistics
from repro.xdm.sequence import ddo

SEQ_COLUMNS = ("iter", "pos", "item")


@dataclass
class AlgebraStatistics:
    """Row-level statistics collected while evaluating a plan."""

    operator_invocations: int = 0
    fixpoint_runs: list[FixpointStatistics] = field(default_factory=list)

    @property
    def total_rows_fed_back(self) -> int:
        return sum(run.total_nodes_fed_back for run in self.fixpoint_runs)

    @property
    def max_recursion_depth(self) -> int:
        return max((run.recursion_depth for run in self.fixpoint_runs), default=0)


class _PlanRun(AlgebraEngineProtocol):
    """One plan evaluation: private memo cache, binding and statistics."""

    def __init__(self, storage: type, max_iterations: int,
                 statistics: AlgebraStatistics | None = None,
                 use_index: bool = True, trace=None, governor=None):
        self.storage = storage
        self.max_iterations = max_iterations
        self.statistics = statistics if statistics is not None else AlgebraStatistics()
        self.macro_cache: dict = {}
        self.use_index = use_index
        self.trace = trace
        self.governor = governor
        self._recursion_binding: TableStorage | None = None

    # -- engine protocol ------------------------------------------------------

    def make_table(self, columns: Sequence[str], rows=()) -> TableStorage:
        return self.storage(columns, rows)

    def make_table_from_columns(self, columns: Sequence[str], data) -> TableStorage:
        return self.storage.from_columns(columns, data)

    def adopt(self, table: TableStorage) -> TableStorage:
        if isinstance(table, self.storage):
            return table
        return self.storage.from_rows(table.columns, table.iter_rows())

    def recursion_input(self) -> TableStorage:
        if self._recursion_binding is None:
            raise AlgebraError("recursion input used outside a fixpoint evaluation")
        return self._recursion_binding

    def evaluate_plan(self, plan: Operator) -> TableStorage:
        """Evaluate a nested plan in a fresh run (no binding leaks into it)."""
        nested = _PlanRun(self.storage, self.max_iterations, statistics=self.statistics,
                          use_index=self.use_index, trace=self.trace,
                          governor=self.governor)
        return nested._evaluate(plan, cache={})

    # -- internals ---------------------------------------------------------------

    def _evaluate(self, operator: Operator, cache: dict[int, TableStorage]) -> TableStorage:
        if id(operator) in cache:
            return cache[id(operator)]
        governor = self.governor
        if governor is not None and governor.tick():
            governor.check_now()
        if isinstance(operator, Fixpoint):
            result = self._evaluate_fixpoint(operator, cache)
        else:
            inputs = [self._evaluate(child, cache) for child in operator.children]
            self.statistics.operator_invocations += 1
            result = operator.compute(inputs, self)
        cache[id(operator)] = result
        return result

    def _evaluate_fixpoint(self, operator: Fixpoint, cache: dict[int, TableStorage]) -> TableStorage:
        seed_table = self._evaluate(operator.seed_plan, cache)
        statistics = FixpointStatistics(
            algorithm="delta" if operator.variant == "mu_delta" else "naive"
        )
        trace = self.trace
        span = (trace.begin("fixpoint", algorithm=statistics.algorithm,
                            variant=operator.variant, seed=len(seed_table))
                if trace is not None else None)
        try:
            if operator.variant == "mu_delta":
                result = self._run_mu_delta(operator, seed_table, statistics)
            else:
                result = self._run_mu(operator, seed_table, statistics)
        finally:
            if span is not None:
                trace.end(span)
        if span is not None:
            span.set(result_size=len(result), rounds=statistics.recursion_depth)
        self.statistics.fixpoint_runs.append(statistics)
        return result

    def _apply_body(self, operator: Fixpoint, input_table: TableStorage) -> TableStorage:
        """Evaluate the body plan with the recursion input bound to *input_table*."""
        previous = self._recursion_binding
        self._recursion_binding = input_table
        try:
            # The body must be re-evaluated from scratch each round: no cache
            # entries may survive because the recursion input changed.
            return self._evaluate(operator.body_plan, cache={})
        finally:
            self._recursion_binding = previous

    # -- fixpoint loops -----------------------------------------------------------

    def _run_mu(self, operator: Fixpoint, seed: TableStorage,
                statistics: FixpointStatistics) -> TableStorage:
        trace = self.trace
        span = trace.begin("round", iteration=0) if trace is not None else None
        produced = self._apply_body(operator, seed)
        accumulated = _ResultAccumulator()
        accumulated.add_new(_items(produced))
        if span is not None:
            span.set(fed=len(seed), produced=len(produced),
                     new=len(accumulated), result_size=len(accumulated))
            trace.end(span)
        statistics.record(0, len(seed), len(produced), len(accumulated), len(accumulated))
        iteration = 0
        while True:
            iteration += 1
            if iteration > self.max_iterations:
                raise AlgebraError("µ did not reach a fixed point within the iteration bound")
            if self.governor is not None:
                self.governor.check_round(iteration, frontier=len(accumulated),
                                          result_size=len(accumulated))
            faults.trigger("slow-span")
            fed = self._items_table(accumulated.items)
            span = trace.begin("round", iteration=iteration) if trace is not None else None
            produced = self._apply_body(operator, fed)
            new_items = accumulated.add_new(_items(produced))
            if span is not None:
                span.set(fed=len(fed), produced=len(produced),
                         new=len(new_items), result_size=len(accumulated))
                trace.end(span)
            statistics.record(iteration, len(fed), len(produced),
                              len(new_items), len(accumulated))
            if not new_items:
                return self._items_table(ddo(accumulated.items))

    def _run_mu_delta(self, operator: Fixpoint, seed: TableStorage,
                      statistics: FixpointStatistics) -> TableStorage:
        trace = self.trace
        span = trace.begin("round", iteration=0) if trace is not None else None
        produced = self._apply_body(operator, seed)
        accumulated = _ResultAccumulator()
        delta = accumulated.add_new(_items(produced))
        if span is not None:
            span.set(fed=len(seed), produced=len(produced),
                     new=len(delta), result_size=len(accumulated))
            trace.end(span)
        statistics.record(0, len(seed), len(produced), len(delta), len(accumulated))
        iteration = 0
        while delta:
            iteration += 1
            if iteration > self.max_iterations:
                raise AlgebraError("µ∆ did not reach a fixed point within the iteration bound")
            if self.governor is not None:
                self.governor.check_round(iteration, frontier=len(delta),
                                          result_size=len(accumulated))
            faults.trigger("slow-span")
            fed = self._items_table(delta)
            span = trace.begin("round", iteration=iteration) if trace is not None else None
            produced = self._apply_body(operator, fed)
            delta = accumulated.add_new(_items(produced))
            if span is not None:
                span.set(fed=len(fed), produced=len(produced),
                         new=len(delta), result_size=len(accumulated))
                trace.end(span)
            statistics.record(iteration, len(fed), len(produced), len(delta), len(accumulated))
        return self._items_table(ddo(accumulated.items))

    def _items_table(self, items: list) -> TableStorage:
        count = len(items)
        return self.make_table_from_columns(
            SEQ_COLUMNS, [[1] * count, list(range(1, count + 1)), list(items)]
        )


class _ResultAccumulator:
    """The accumulated fixpoint result: identity set + insertion-ordered list."""

    __slots__ = ("items", "_seen")

    def __init__(self):
        self.items: list = []
        self._seen: set[int] = set()

    def __len__(self) -> int:
        return len(self.items)

    def add_new(self, candidates: list) -> list:
        """Append the not-yet-seen *candidates*; return them (the delta)."""
        seen = self._seen
        fresh = []
        for item in candidates:
            key = id(item)
            if key not in seen:
                seen.add(key)
                fresh.append(item)
        self.items.extend(fresh)
        return fresh


class AlgebraEvaluator:
    """Evaluates plan DAGs over ``iter|pos|item`` tables.

    Parameters
    ----------
    max_iterations:
        Fixpoint iteration bound (cycle/runaway protection).
    backend:
        Table storage backend: ``"row"``, ``"columnar"`` (default) or a
        storage class — see :mod:`repro.algebra.storage`.
    use_index:
        Route the step macro through the per-document structural index's
        batch kernels (:mod:`repro.xdm.index`).  Defaults to on; disable
        for A/B comparisons against the per-node axis walks.
    trace:
        Optional :class:`~repro.observability.tracing.TraceContext`; when
        present every µ/µ∆ run emits a ``fixpoint`` span with per-round
        children carrying the fed/produced/new/result sizes.
    governor:
        Optional :class:`~repro.limits.Governor`; checked per operator
        invocation (cheap stride checkpoint) and at every µ/µ∆ round
        boundary (deadline, cancellation, round/frontier/result budgets).
    """

    def __init__(self, max_iterations: int = 100_000, backend: "str | type | None" = None,
                 use_index: bool = True, trace=None, governor=None):
        self.max_iterations = max_iterations
        self.storage = resolve_backend(backend)
        self.use_index = use_index
        self.trace = trace
        self.governor = governor
        self.run_history: list[AlgebraStatistics] = []

    @property
    def backend(self) -> str:
        return self.storage.backend_name

    # -- evaluation ------------------------------------------------------------

    def evaluate_plan(self, plan: Operator) -> TableStorage:
        """Evaluate *plan* in a fresh run and return its output table."""
        run = _PlanRun(self.storage, self.max_iterations, use_index=self.use_index,
                       trace=self.trace, governor=self.governor)
        result = run._evaluate(plan, cache={})
        self.run_history.append(run.statistics)
        return result

    # -- statistics --------------------------------------------------------------

    @property
    def statistics(self) -> AlgebraStatistics:
        """Cumulative statistics across all :meth:`evaluate_plan` runs."""
        merged = AlgebraStatistics()
        for run in self.run_history:
            merged.operator_invocations += run.operator_invocations
            merged.fixpoint_runs.extend(run.fixpoint_runs)
        return merged

    @property
    def last_run_statistics(self) -> AlgebraStatistics:
        """Statistics of the most recent run only (fresh per run)."""
        if not self.run_history:
            return AlgebraStatistics()
        return self.run_history[-1]


# ---------------------------------------------------------------------------
# helpers over iter|pos|item tables (item identity = node identity)
# ---------------------------------------------------------------------------


def _items(table: TableStorage) -> list:
    return table.column_values("item")
