"""Interpreted evaluation of algebra plans, including µ and µ∆.

The engine evaluates a plan DAG bottom-up with memoisation (shared subplans
are computed once).  Fixpoint operators are handled by the engine itself:
the body plan is re-evaluated once per iteration with the
:class:`~repro.algebra.operators.RecursionInput` leaf rebound — to the whole
accumulated result for µ (algorithm Naive) or to the per-round delta for µ∆
(algorithm Delta).  The engine counts the rows fed into the body per
iteration, which is the algebraic counterpart of Table 2's "total number of
nodes fed back".
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.errors import AlgebraError
from repro.algebra.operators import Fixpoint, Operator, RecursionInput
from repro.algebra.table import Table
from repro.fixpoint.stats import FixpointStatistics
from repro.xdm.sequence import ddo


@dataclass
class AlgebraStatistics:
    """Row-level statistics collected while evaluating a plan."""

    operator_invocations: int = 0
    fixpoint_runs: list[FixpointStatistics] = field(default_factory=list)

    @property
    def total_rows_fed_back(self) -> int:
        return sum(run.total_nodes_fed_back for run in self.fixpoint_runs)

    @property
    def max_recursion_depth(self) -> int:
        return max((run.recursion_depth for run in self.fixpoint_runs), default=0)


class AlgebraEvaluator:
    """Evaluates plan DAGs over ``iter|pos|item`` tables."""

    def __init__(self, max_iterations: int = 100_000):
        self.max_iterations = max_iterations
        self.statistics = AlgebraStatistics()
        self._recursion_binding: Optional[Table] = None

    # -- engine protocol ------------------------------------------------------

    def recursion_input(self) -> Table:
        if self._recursion_binding is None:
            raise AlgebraError("recursion input used outside a fixpoint evaluation")
        return self._recursion_binding

    def evaluate_plan(self, plan: Operator) -> Table:
        """Evaluate *plan* and return its output table."""
        return self._evaluate(plan, cache={})

    # -- internals ---------------------------------------------------------------

    def _evaluate(self, operator: Operator, cache: dict[int, Table]) -> Table:
        if id(operator) in cache:
            return cache[id(operator)]
        if isinstance(operator, Fixpoint):
            result = self._evaluate_fixpoint(operator, cache)
        else:
            inputs = [self._evaluate(child, cache) for child in operator.children]
            self.statistics.operator_invocations += 1
            result = operator.compute(inputs, self)
        cache[id(operator)] = result
        return result

    def _evaluate_fixpoint(self, operator: Fixpoint, cache: dict[int, Table]) -> Table:
        seed_table = self._evaluate(operator.seed_plan, cache)
        statistics = FixpointStatistics(
            algorithm="delta" if operator.variant == "mu_delta" else "naive"
        )
        if operator.variant == "mu_delta":
            result = self._run_mu_delta(operator, seed_table, statistics)
        else:
            result = self._run_mu(operator, seed_table, statistics)
        self.statistics.fixpoint_runs.append(statistics)
        return result

    def _apply_body(self, operator: Fixpoint, input_table: Table) -> Table:
        """Evaluate the body plan with the recursion input bound to *input_table*."""
        previous = self._recursion_binding
        self._recursion_binding = input_table
        try:
            # The body must be re-evaluated from scratch each round: no cache
            # entries may survive because the recursion input changed.
            return self._evaluate(operator.body_plan, cache={})
        finally:
            self._recursion_binding = previous

    def _run_mu(self, operator: Fixpoint, seed: Table, statistics: FixpointStatistics) -> Table:
        fed = seed
        produced = self._apply_body(operator, fed)
        result = _distinct_items(produced)
        statistics.record(0, len(fed), len(produced), len(result), len(result))
        iteration = 0
        while True:
            iteration += 1
            if iteration > self.max_iterations:
                raise AlgebraError("µ did not reach a fixed point within the iteration bound")
            fed = result
            produced = self._apply_body(operator, fed)
            combined = _union_items(result, produced)
            new_rows = len(combined) - len(result)
            statistics.record(iteration, len(fed), len(produced), new_rows, len(combined))
            if new_rows == 0:
                return combined
            result = combined

    def _run_mu_delta(self, operator: Fixpoint, seed: Table, statistics: FixpointStatistics) -> Table:
        fed = seed
        produced = self._apply_body(operator, fed)
        result = _distinct_items(produced)
        delta = result
        statistics.record(0, len(fed), len(produced), len(result), len(result))
        iteration = 0
        while len(delta) > 0:
            iteration += 1
            if iteration > self.max_iterations:
                raise AlgebraError("µ∆ did not reach a fixed point within the iteration bound")
            fed = delta
            produced = self._apply_body(operator, fed)
            delta = _difference_items(produced, result)
            result = _union_items(result, delta)
            statistics.record(iteration, len(fed), len(produced), len(delta), len(result))
        return result


# ---------------------------------------------------------------------------
# helpers over iter|pos|item tables (item identity = node identity)
# ---------------------------------------------------------------------------


def _items(table: Table) -> list:
    index = table.column_index("item")
    return [row[index] for row in table.rows]


def _table_from_items(items: list) -> Table:
    ordered = ddo(items)
    return Table(("iter", "pos", "item"), [(1, position, node) for position, node in enumerate(ordered, start=1)])


def _distinct_items(table: Table) -> Table:
    return _table_from_items(_items(table))


def _union_items(left: Table, right: Table) -> Table:
    return _table_from_items(_items(left) + _items(right))


def _difference_items(left: Table, right: Table) -> Table:
    removed = {id(item) for item in _items(right)}
    return _table_from_items([item for item in _items(left) if id(item) not in removed])
