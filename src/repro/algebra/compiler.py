"""Loop-lifting compiler: XQuery AST → relational algebra plans.

The compiler follows the Relational XQuery translation scheme in spirit:
every expression is compiled relative to a *loop* relation (one row per
iteration of the enclosing FLWOR nesting) into a plan producing an
``iter|pos|item`` table, and variables are looked up in a compile-time
environment mapping names to plans.  Like the paper (Table 1), XPath steps,
``fn:id`` and node construction are emitted as macro operators rather than
expanded into textbook joins; and like Section 4.1, plans destined for the
distributivity check omit duplicate-elimination and order bookkeeping, which
the macros encapsulate anyway.

Supported fragment
------------------
Literals, variables, the context item, sequence/union/except, paths and
axis steps, predicates that are comparisons or boolean function calls,
``for``/``let``/``where`` (as produced by the parser's FLWOR desugaring),
``if``/``then``/``else``, general and value comparisons, arithmetic,
``count``/``empty``/``exists``/``not``/``data``/``string``/``id``/``doc``/
``root``, user-defined function inlining, node constructors (compile-time
only — they mark the plan non-distributive) and the ``with … recurse`` form
(compiled to µ/µ∆).  Positional predicates, ``order by`` and nested
fixpoints under iteration raise :class:`~repro.errors.AlgebraError`.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from repro.errors import AlgebraError, XQueryDynamicError
from repro.algebra.operators import (
    Aggregate,
    AtomizeValue,
    Difference,
    Distinct,
    DocumentRoot,
    Fixpoint,
    IdLookup,
    Join,
    LiteralTable,
    NodeConstructor,
    Operator,
    Project,
    RecursionInput,
    RowTag,
    ScalarOp,
    SelectComputed,
    StepJoin,
    UnionAll,
)
from repro.algebra.storage import resolve_backend
from repro.algebra.table import Table
from repro.xdm.comparison import atomic_equal, atomic_less_than
from repro.xdm.items import UntypedAtomic, is_node, string_value_of_item, xs_double
from repro.xdm.node import DocumentNode
from repro.xquery import ast
from repro.xquery.context import DocumentResolver


SEQ_COLUMNS = ("iter", "pos", "item")


@dataclass
class CompilationContext:
    """Compile-time state threaded through the translation."""

    loop: Operator
    environment: dict[str, Operator] = field(default_factory=dict)
    focus: Operator | None = None
    loop_is_single: bool = True

    def bind(self, name: str, plan: Operator) -> "CompilationContext":
        environment = dict(self.environment)
        environment[name] = plan
        return replace(self, environment=environment)


class AlgebraCompiler:
    """Compiles the supported XQuery fragment into algebra plans."""

    def __init__(self,
                 documents: DocumentResolver | None = None,
                 document: DocumentNode | None = None,
                 functions: dict[tuple[str, int], ast.FunctionDecl] | None = None,
                 analysis_only: bool = False,
                 backend: "str | type | None" = None,
                 push_predicates: bool = True):
        """Create a compiler.

        Parameters
        ----------
        documents:
            Resolver consulted by ``fn:doc``.
        document:
            Default document used by ``fn:id`` (and by ``fn:doc`` when the
            resolver does not know the URI in analysis mode).
        functions:
            User-defined functions, inlined at their call sites.
        analysis_only:
            When true the compiler is lenient about missing documents — the
            resulting plan is only used for the distributivity check, never
            executed.
        backend:
            Storage backend used for the literal tables the compiler emits
            (loop seeds, empty sequences).  Defaults to the row backend; an
            evaluator running a different backend adopts (converts) literal
            leaves on first use, so any combination is valid — matching the
            evaluator's backend merely avoids that conversion.
        push_predicates:
            Push recognized predicate shapes (:mod:`repro.xquery.pushdown`)
            into the :class:`~repro.algebra.operators.StepJoin` macro as
            indexed lookups instead of compiling the materialize-then-filter
            predicate plan.  On by default; ``evaluate(...,
            use_pushdown=False)`` compiles the classical plans for A/B runs.
        """
        self.documents = documents or DocumentResolver()
        self.document = document
        self.functions = functions or {}
        self.analysis_only = analysis_only
        self.storage = Table if backend is None else resolve_backend(backend)
        self.push_predicates = push_predicates
        self._inline_stack: list[tuple[str, int]] = []

    # ------------------------------------------------------------------ entry points

    def single_iteration_loop(self) -> Operator:
        """The loop relation of a top-level expression: a single iteration."""
        return LiteralTable(self.storage(("iter",), [(1,)]))

    def initial_context(self, variables: dict[str, Operator] | None = None) -> CompilationContext:
        return CompilationContext(loop=self.single_iteration_loop(),
                                  environment=dict(variables or {}))

    def compile(self, expr: ast.Expr, context: CompilationContext | None = None) -> Operator:
        """Compile *expr* under *context* (top-level single-iteration default)."""
        return self._compile(expr, context or self.initial_context())

    def compile_recursion_body(self, body: ast.Expr, variable: str,
                               extra_variables: tuple[str, ...] = ()) -> tuple[Operator, RecursionInput]:
        """Compile a recursion body with its variable as a plan input.

        Returns the body plan and the :class:`RecursionInput` leaf standing
        for the recursion variable — the place where the distributivity
        check introduces the symbolic ∪ (Figure 7a) and where µ/µ∆ feed the
        intermediate result during evaluation.
        """
        recursion_input = RecursionInput(variable)
        context = self.initial_context()
        context = context.bind(variable, recursion_input)
        for name in body.free_variables() - {variable}:
            context = context.bind(name, self._empty_sequence_plan(context))
        for name in extra_variables:
            context = context.bind(name, self._empty_sequence_plan(context))
        if self._uses_context_item(body):
            context = replace(context, focus=self._empty_sequence_plan(context))
        plan = self._compile(body, context)
        return plan, recursion_input

    # ------------------------------------------------------------------ dispatch

    def _compile(self, expr: ast.Expr, context: CompilationContext) -> Operator:
        handler = getattr(self, f"_compile_{type(expr).__name__}", None)
        if handler is None:
            raise AlgebraError(
                f"the algebra compiler does not support {type(expr).__name__} expressions"
            )
        return handler(expr, context)

    # ------------------------------------------------------------------ leaves

    def _compile_Literal(self, expr: ast.Literal, context: CompilationContext) -> Operator:
        return self._attach_constant(context.loop, expr.value)

    def _compile_EmptySequence(self, expr: ast.EmptySequence, context: CompilationContext) -> Operator:
        return self._empty_sequence_plan(context)

    def _compile_VarRef(self, expr: ast.VarRef, context: CompilationContext) -> Operator:
        plan = context.environment.get(expr.name)
        if plan is None:
            raise AlgebraError(f"unbound variable ${expr.name} during algebra compilation")
        return plan

    def _compile_ContextItem(self, expr: ast.ContextItem, context: CompilationContext) -> Operator:
        if context.focus is None:
            raise AlgebraError("the context item is undefined in this compilation context")
        return context.focus

    def _compile_RootExpr(self, expr: ast.RootExpr, context: CompilationContext) -> Operator:
        focus = self._compile_ContextItem(ast.ContextItem(), context)
        rooted = ScalarOp(focus, "item_root", ["item"],
                          lambda node: node.root() if is_node(node) else node, name="root")
        return Project(rooted, [("iter", "iter"), ("pos", "pos"), ("item", "item_root")])

    # ------------------------------------------------------------------ sequence operators

    def _compile_SequenceExpr(self, expr: ast.SequenceExpr, context: CompilationContext) -> Operator:
        plans = [self._compile(item, context) for item in expr.items]
        combined = plans[0]
        for plan in plans[1:]:
            combined = UnionAll([combined, plan])
        return combined

    def _compile_UnionExpr(self, expr: ast.UnionExpr, context: CompilationContext) -> Operator:
        left = self._compile(expr.left, context)
        right = self._compile(expr.right, context)
        union = UnionAll([left, right])
        deduplicated = Distinct([Project(union, [("iter", "iter"), ("item", "item")])])
        return self._with_pos(deduplicated)

    def _compile_IntersectExpr(self, expr: ast.IntersectExpr, context: CompilationContext) -> Operator:
        left = Distinct([Project(self._compile(expr.left, context), [("iter", "iter"), ("item", "item")])])
        right = Distinct([Project(self._compile(expr.right, context), [("iter", "iter"), ("item", "item")])])
        joined = Join(left, Project(right, [("iter", "iter"), ("item_r", "item")]),
                      [("iter", "iter"), ("item", "item_r")])
        return self._with_pos(Project(joined, [("iter", "iter"), ("item", "item")]))

    def _compile_ExceptExpr(self, expr: ast.ExceptExpr, context: CompilationContext) -> Operator:
        left = Distinct([Project(self._compile(expr.left, context), [("iter", "iter"), ("item", "item")])])
        right = Distinct([Project(self._compile(expr.right, context), [("iter", "iter"), ("item", "item")])])
        return self._with_pos(Difference([left, right]))

    # ------------------------------------------------------------------ paths

    def _compile_PathExpr(self, expr: ast.PathExpr, context: CompilationContext) -> Operator:
        left = self._compile(expr.left, context)
        right = expr.right
        if isinstance(right, ast.AxisStep):
            return self._compile_step(left, right, context)
        # General right operand: iterate the right expression once per node
        # delivered by the left operand (the loop-lifting "map" dance).
        return self._map_over(left, right, context)

    def _compile_AxisStep(self, expr: ast.AxisStep, context: CompilationContext) -> Operator:
        focus = self._compile_ContextItem(ast.ContextItem(), context)
        return self._compile_step(focus, expr, context)

    def _compile_step(self, source: Operator, step: ast.AxisStep,
                      context: CompilationContext) -> Operator:
        """A step join with the longest recognized predicate prefix pushed.

        Predicates apply sequentially, so only a *prefix* may move into the
        macro: the first unrecognized (or unresolvable) predicate and
        everything after it keep the generic materialize-then-filter plan,
        preserving order-sensitive (positional) semantics.
        """
        pushed, rest = self._split_pushable(step.predicates, context)
        plan = StepJoin(source, step.axis, step.node_test.kind,
                        step.node_test.name, pushed=pushed)
        return self._apply_predicates(plan, rest, context)

    def _split_pushable(self, predicates: tuple[ast.Expr, ...],
                        context: CompilationContext):
        from repro.xquery.pushdown import (
            PositionShape,
            recognize_predicate,
            string_values_or_none,
        )

        if not self.push_predicates or not predicates:
            return (), tuple(predicates)

        def constant_values(name: str):
            """Compile-time variable resolution: only top-level constant
            bindings (LiteralTable plans) with pure string items qualify —
            lifted plans and node-valued bindings fall back."""
            plan = context.environment.get(name)
            if not isinstance(plan, LiteralTable) or "item" not in plan.table.columns:
                return None
            items = plan.table.column_values("item")
            if any(is_node(item) for item in items):
                return None  # node content may mutate after compilation
            return string_values_or_none(items)

        pushed = []
        for position, predicate in enumerate(predicates):
            shape = recognize_predicate(predicate)
            if shape is None:
                return tuple(pushed), tuple(predicates[position:])
            if not isinstance(shape, PositionShape) and shape.rhs is not None:
                if isinstance(shape.rhs, ast.Literal):
                    values = string_values_or_none([shape.rhs.value])
                elif isinstance(shape.rhs, ast.VarRef):
                    values = constant_values(shape.rhs.name)
                else:  # pragma: no cover - recognizer only emits the above
                    values = None
                if values is None:
                    return tuple(pushed), tuple(predicates[position:])
                shape = replace(shape, rhs=None, values=values)
            pushed.append(shape)
        return tuple(pushed), ()

    def _compile_FilterExpr(self, expr: ast.FilterExpr, context: CompilationContext) -> Operator:
        primary = self._compile(expr.primary, context)
        return self._apply_predicates(primary, expr.predicates, context)

    def _map_over(self, source: Operator, body: ast.Expr, context: CompilationContext,
                  bind_variable: str | None = None, position_variable: str | None = None) -> Operator:
        """Evaluate *body* once per row of *source* and map results back.

        This is the shared machinery behind general path steps (the row is
        the context item) and ``for`` iterations (the row is bound to a
        variable).
        """
        tagged = RowTag(source, "inner")
        inner_loop = Project(tagged, [("iter", "inner")])
        item_plan = self._with_pos(Project(tagged, [("iter", "inner"), ("item", "item")]))

        lifted_environment = {
            name: self._lift_plan(plan, tagged)
            for name, plan in context.environment.items()
        }
        inner_context = CompilationContext(
            loop=inner_loop,
            environment=lifted_environment,
            focus=item_plan if bind_variable is None else (
                self._lift_plan(context.focus, tagged) if context.focus is not None else None
            ),
            loop_is_single=False,
        )
        if bind_variable is not None:
            inner_context = inner_context.bind(bind_variable, item_plan)
            if position_variable is not None:
                position_plan = self._with_pos(Project(tagged, [("iter", "inner"), ("item", "pos")]))
                inner_context = inner_context.bind(position_variable, position_plan)

        inner_result = self._compile(body, inner_context)
        mapping = Project(tagged, [("inner2", "inner"), ("outer", "iter")])
        joined = Join(inner_result, mapping, [("iter", "inner2")])
        mapped = Project(joined, [("iter", "outer"), ("item", "item")])
        return self._with_pos(Distinct([mapped]) if bind_variable is None else mapped)

    def _lift_plan(self, plan: Operator, tagged: Operator) -> Operator:
        """Re-address an outer-loop plan to the inner loop created by *tagged*."""
        mapping = Project(tagged, [("outer_iter", "iter"), ("inner", "inner")])
        joined = Join(plan, mapping, [("iter", "outer_iter")])
        return Project(joined, [("iter", "inner"), ("pos", "pos"), ("item", "item")])

    # ------------------------------------------------------------------ predicates and filters

    def _apply_predicates(self, candidates: Operator, predicates: tuple[ast.Expr, ...],
                          context: CompilationContext) -> Operator:
        plan = candidates
        for predicate in predicates:
            plan = self._apply_predicate(plan, predicate, context)
        return plan

    def _apply_predicate(self, candidates: Operator, predicate: ast.Expr,
                         context: CompilationContext) -> Operator:
        if isinstance(predicate, ast.Literal) and isinstance(predicate.value, (int, float)):
            raise AlgebraError("positional predicates are not supported by the algebra backend")
        tagged = RowTag(candidates, "inner")
        inner_loop = Project(tagged, [("iter", "inner")])
        candidate_plan = self._with_pos(Project(tagged, [("iter", "inner"), ("item", "item")]))
        lifted_environment = {
            name: self._lift_plan(plan, tagged) for name, plan in context.environment.items()
        }
        inner_context = CompilationContext(
            loop=inner_loop, environment=lifted_environment, focus=candidate_plan,
            loop_is_single=False,
        )
        selected = self._selected_iterations(predicate, inner_context)
        # keep candidate rows whose inner iteration survived the predicate
        joined = Join(tagged, Project(selected, [("selected_iter", "iter")]),
                      [("inner", "selected_iter")])
        return Project(joined, [("iter", "iter"), ("pos", "pos"), ("item", "item")])

    def _selected_iterations(self, condition: ast.Expr, context: CompilationContext) -> Operator:
        """Compile *condition* into a plan of the iterations it selects.

        General comparisons and exists-style conditions use the semijoin
        shape (no aggregate on the data path); everything else goes through
        a per-iteration boolean value.
        """
        if isinstance(condition, ast.GeneralComparison) and condition.op == "=":
            return self._existential_join(condition, context)
        if isinstance(condition, ast.FunctionCall) and condition.name in ("exists", "fn:exists") and condition.args:
            inner = self._compile(condition.args[0], context)
            return Distinct([Project(inner, [("iter", "iter")])])
        if (isinstance(condition, ast.FunctionCall) and condition.name in ("not", "fn:not")
                and condition.args and isinstance(condition.args[0], ast.FunctionCall)
                and condition.args[0].name in ("empty", "fn:empty")):
            inner = self._compile(condition.args[0].args[0], context)
            return Distinct([Project(inner, [("iter", "iter")])])
        if isinstance(condition, (ast.AxisStep, ast.PathExpr, ast.FilterExpr, ast.VarRef)):
            # Node-sequence condition: non-empty means true.
            inner = self._compile(condition, context)
            return Distinct([Project(inner, [("iter", "iter")])])
        boolean = self._compile(condition, context)
        selected = SelectComputed(boolean, ["item"], _effective_boolean, name="ebv")
        return Distinct([Project(selected, [("iter", "iter")])])

    def _existential_join(self, comparison: ast.GeneralComparison,
                          context: CompilationContext) -> Operator:
        left = AtomizeValue([self._compile(comparison.left, context)])
        right = AtomizeValue([self._compile(comparison.right, context)])
        left_p = Project(left, [("iter", "iter"), ("item", "item")])
        right_p = Project(right, [("iter", "iter"), ("item_r", "item")])
        joined = Join(left_p, right_p, [("iter", "iter")])
        selected = SelectComputed(joined, ["item", "item_r"], _general_equal, name="=")
        return Distinct([Project(selected, [("iter", "iter")])])

    # ------------------------------------------------------------------ FLWOR, conditionals

    def _compile_ForExpr(self, expr: ast.ForExpr, context: CompilationContext) -> Operator:
        source = self._compile(expr.sequence, context)
        return self._map_over(source, expr.body, context,
                              bind_variable=expr.var, position_variable=expr.position_var)

    def _compile_LetExpr(self, expr: ast.LetExpr, context: CompilationContext) -> Operator:
        value = self._compile(expr.value, context)
        return self._compile(expr.body, context.bind(expr.var, value))

    def _compile_IfExpr(self, expr: ast.IfExpr, context: CompilationContext) -> Operator:
        then_plan = self._compile(expr.then_branch, context)
        is_where_shape = isinstance(expr.else_branch, ast.EmptySequence)
        if is_where_shape:
            selected = self._selected_iterations(expr.condition, context)
            joined = Join(then_plan, Project(selected, [("sel_iter", "iter")]), [("iter", "sel_iter")])
            return Project(joined, [("iter", "iter"), ("pos", "pos"), ("item", "item")])
        selected = self._selected_iterations(expr.condition, context)
        loop_iters = Distinct([Project(context.loop, [("iter", "iter")])])
        unselected = Difference([loop_iters, selected])
        else_plan = self._compile(expr.else_branch, context)
        then_part = Project(
            Join(then_plan, Project(selected, [("sel_iter", "iter")]), [("iter", "sel_iter")]),
            [("iter", "iter"), ("pos", "pos"), ("item", "item")],
        )
        else_part = Project(
            Join(else_plan, Project(unselected, [("sel_iter", "iter")]), [("iter", "sel_iter")]),
            [("iter", "iter"), ("pos", "pos"), ("item", "item")],
        )
        return UnionAll([then_part, else_part])

    def _compile_QuantifiedExpr(self, expr: ast.QuantifiedExpr, context: CompilationContext) -> Operator:
        raise AlgebraError("quantified expressions are not supported by the algebra backend")

    def _compile_TypeswitchExpr(self, expr: ast.TypeswitchExpr, context: CompilationContext) -> Operator:
        raise AlgebraError("typeswitch is not supported by the algebra backend")

    # ------------------------------------------------------------------ comparisons, arithmetic

    def _compile_GeneralComparison(self, expr: ast.GeneralComparison,
                                   context: CompilationContext) -> Operator:
        matched = self._existential_join_general(expr, context)
        counted = Aggregate(matched, "count", ("iter",), "item", "matches", loop=context.loop)
        boolean = ScalarOp(counted, "item", ["matches"], lambda n: n > 0, name="exists")
        return self._with_pos(Project(boolean, [("iter", "iter"), ("item", "item")]))

    def _existential_join_general(self, expr: ast.GeneralComparison,
                                  context: CompilationContext) -> Operator:
        left = AtomizeValue([self._compile(expr.left, context)])
        right = AtomizeValue([self._compile(expr.right, context)])
        left_p = Project(left, [("iter", "iter"), ("item", "item")])
        right_p = Project(right, [("iter", "iter"), ("item_r", "item")])
        joined = Join(left_p, right_p, [("iter", "iter")])
        compare = _comparison_function(expr.op)
        selected = SelectComputed(joined, ["item", "item_r"], compare, name=expr.op)
        return Project(selected, [("iter", "iter"), ("item", "item")])

    def _compile_ValueComparison(self, expr: ast.ValueComparison, context: CompilationContext) -> Operator:
        return self._compile_GeneralComparison(
            ast.GeneralComparison(expr.op, expr.left, expr.right), context
        )

    def _compile_ArithmeticExpr(self, expr: ast.ArithmeticExpr, context: CompilationContext) -> Operator:
        left = AtomizeValue([self._compile(expr.left, context)])
        right = AtomizeValue([self._compile(expr.right, context)])
        left_p = Project(left, [("iter", "iter"), ("item", "item")])
        right_p = Project(right, [("iter", "iter"), ("item_r", "item")])
        joined = Join(left_p, right_p, [("iter", "iter")])
        function = _arithmetic_function(expr.op)
        computed = ScalarOp(joined, "result", ["item", "item_r"], function, name=expr.op)
        return self._with_pos(Project(computed, [("iter", "iter"), ("item", "result")]))

    def _compile_UnaryExpr(self, expr: ast.UnaryExpr, context: CompilationContext) -> Operator:
        inner = AtomizeValue([self._compile(expr.operand, context)])
        negate = expr.op == "-"

        def apply(value):
            number = xs_double(value) if isinstance(value, (str, UntypedAtomic)) else value
            return -number if negate else +number

        computed = ScalarOp(inner, "result", ["item"], apply, name=f"unary{expr.op}")
        return self._with_pos(Project(computed, [("iter", "iter"), ("item", "result")]))

    # ------------------------------------------------------------------ functions

    def _compile_FunctionCall(self, expr: ast.FunctionCall, context: CompilationContext) -> Operator:
        name = expr.name.split(":")[-1] if expr.name.startswith("fn:") else expr.name
        declaration = self.functions.get((expr.name, len(expr.args)))
        if declaration is not None:
            return self._inline_function(declaration, expr, context)

        if name in ("true", "false") and not expr.args:
            return self._attach_constant(context.loop, name == "true")
        if name == "count" and len(expr.args) == 1:
            inner = self._compile(expr.args[0], context)
            counted = Aggregate(inner, "count", ("iter",), "item", "item", loop=context.loop)
            return self._with_pos(Project(counted, [("iter", "iter"), ("item", "item")]))
        if name in ("empty", "exists") and len(expr.args) == 1:
            inner = self._compile(expr.args[0], context)
            counted = Aggregate(inner, "count", ("iter",), "item", "n", loop=context.loop)
            predicate = (lambda n: n == 0) if name == "empty" else (lambda n: n > 0)
            boolean = ScalarOp(counted, "item", ["n"], predicate, name=name)
            return self._with_pos(Project(boolean, [("iter", "iter"), ("item", "item")]))
        if name == "not" and len(expr.args) == 1:
            inner = self._compile(expr.args[0], context)
            negated = ScalarOp(inner, "item_neg", ["item"], lambda v: not _effective_boolean(v), name="not")
            return self._with_pos(Project(negated, [("iter", "iter"), ("item", "item_neg")]))
        if name == "data" and len(expr.args) == 1:
            return AtomizeValue([self._compile(expr.args[0], context)])
        if name == "string" and len(expr.args) == 1:
            inner = self._compile(expr.args[0], context)
            stringified = ScalarOp(inner, "item_s", ["item"], string_value_of_item, name="string")
            return self._with_pos(Project(stringified, [("iter", "iter"), ("item", "item_s")]))
        if name == "id" and len(expr.args) in (1, 2):
            inner = self._compile(expr.args[0], context)
            document = self._require_document()
            return IdLookup(AtomizeValue([inner]), document)
        if name == "doc" and len(expr.args) == 1:
            return self._compile_doc(expr.args[0], context)
        if name == "root" and len(expr.args) <= 1:
            target = (self._compile(expr.args[0], context) if expr.args
                      else self._compile_ContextItem(ast.ContextItem(), context))
            rooted = ScalarOp(target, "item_root", ["item"],
                              lambda node: node.root() if is_node(node) else node, name="root")
            return self._with_pos(Project(rooted, [("iter", "iter"), ("item", "item_root")]))
        raise AlgebraError(f"built-in function {expr.name}() is not supported by the algebra compiler")

    def _inline_function(self, declaration: ast.FunctionDecl, call: ast.FunctionCall,
                         context: CompilationContext) -> Operator:
        key = (declaration.name, declaration.arity)
        if key in self._inline_stack:
            raise AlgebraError(
                f"recursive user-defined function {declaration.name}() cannot be inlined"
            )
        self._inline_stack.append(key)
        try:
            call_context = context
            for parameter, argument in zip(declaration.params, call.args):
                call_context = call_context.bind(parameter.name, self._compile(argument, context))
            return self._compile(declaration.body, call_context)
        finally:
            self._inline_stack.pop()

    def _compile_doc(self, uri_expr: ast.Expr, context: CompilationContext) -> Operator:
        if not isinstance(uri_expr, ast.Literal) or not isinstance(uri_expr.value, str):
            raise AlgebraError("fn:doc requires a string literal URI in the algebra compiler")
        try:
            document = self.documents.resolve(uri_expr.value)
        except Exception:
            if not self.analysis_only and self.document is None:
                raise
            document = self.document or DocumentNode()
        return DocumentRoot(context.loop, document)

    def _require_document(self) -> DocumentNode:
        if self.document is not None:
            return self.document
        if self.analysis_only:
            return DocumentNode()
        raise AlgebraError("fn:id requires a default document (pass document= to the compiler)")

    # ------------------------------------------------------------------ constructors

    def _compile_DirectElementConstructor(self, expr: ast.DirectElementConstructor,
                                          context: CompilationContext) -> Operator:
        content_plans = [self._compile(part, context) for part in expr.content] or [
            self._empty_sequence_plan(context)
        ]
        combined = content_plans[0]
        for plan in content_plans[1:]:
            combined = UnionAll([combined, plan])
        return NodeConstructor(combined, "element", expr.name)

    def _compile_ComputedConstructor(self, expr: ast.ComputedConstructor,
                                     context: CompilationContext) -> Operator:
        content = (self._compile(expr.content, context) if expr.content is not None
                   else self._empty_sequence_plan(context))
        name = None
        if isinstance(expr.name, ast.Literal):
            name = str(expr.name.value)
        return NodeConstructor(content, expr.kind, name)

    def _compile_OrderedExpr(self, expr: ast.OrderedExpr, context: CompilationContext) -> Operator:
        return self._compile(expr.body, context)

    # ------------------------------------------------------------------ the IFP form

    def _compile_WithExpr(self, expr: ast.WithExpr, context: CompilationContext) -> Operator:
        if not context.loop_is_single:
            raise AlgebraError(
                "with … seeded by … recurse under an enclosing iteration is not supported "
                "by the algebra backend; evaluate the fixpoint per seed instead"
            )
        seed = self._compile(expr.seed, context)
        recursion_input = RecursionInput(expr.var)
        body_context = context.bind(expr.var, recursion_input)
        body_plan = self._compile(expr.body, body_context)
        variant = self._fixpoint_variant(expr, body_plan, recursion_input)
        return Fixpoint(seed, body_plan, recursion_input, variant=variant)

    def _fixpoint_variant(self, expr: ast.WithExpr, body_plan: Operator,
                          recursion_input: RecursionInput) -> str:
        if expr.algorithm == "naive":
            return "mu"
        if expr.algorithm == "delta":
            return "mu_delta"
        from repro.algebra.distributivity import plan_allows_union_pushup

        return "mu_delta" if plan_allows_union_pushup(body_plan, recursion_input) else "mu"

    # ------------------------------------------------------------------ helpers

    def _attach_constant(self, loop: Operator, value) -> Operator:
        with_pos = ScalarOp(loop, "pos", [], lambda: 1, name="pos")
        with_item = ScalarOp(with_pos, "item", [], lambda: value, name="const")
        return Project(with_item, [("iter", "iter"), ("pos", "pos"), ("item", "item")])

    def _empty_sequence_plan(self, context: CompilationContext) -> Operator:
        return LiteralTable(self.storage(SEQ_COLUMNS))

    def _with_pos(self, plan: Operator) -> Operator:
        """Attach a constant ``pos`` column and normalise the column order."""
        with_pos = ScalarOp(plan, "pos_n", [], lambda: 1, name="pos")
        return Project(with_pos, [("iter", "iter"), ("pos", "pos_n"), ("item", "item")])

    def _uses_context_item(self, expr: ast.Expr) -> bool:
        return any(isinstance(sub, (ast.ContextItem, ast.RootExpr))
                   for sub in expr.iter_subexpressions())


# ---------------------------------------------------------------------------
# scalar helpers used inside ScalarOp
# ---------------------------------------------------------------------------


def _effective_boolean(value) -> bool:
    if is_node(value):
        return True
    if isinstance(value, bool):
        return value
    if isinstance(value, (int, float)):
        return value != 0 and value == value
    if isinstance(value, str):
        return len(value) > 0
    return value is not None


def _general_equal(left, right) -> bool:
    left, right = _promote(left, right)
    return atomic_equal(left, right)


def _promote(left, right):
    if isinstance(left, UntypedAtomic) and isinstance(right, (int, float)) and not isinstance(right, bool):
        return xs_double(left), right
    if isinstance(right, UntypedAtomic) and isinstance(left, (int, float)) and not isinstance(left, bool):
        return left, xs_double(right)
    if isinstance(left, UntypedAtomic) or isinstance(right, UntypedAtomic):
        return str(left), str(right)
    return left, right


def _comparison_function(op: str):
    def compare(left, right) -> bool:
        left_p, right_p = _promote(left, right)
        if op in ("=", "eq"):
            return atomic_equal(left_p, right_p)
        if op in ("!=", "ne"):
            return not atomic_equal(left_p, right_p)
        if op in ("<", "lt"):
            return atomic_less_than(left_p, right_p)
        if op in ("<=", "le"):
            return atomic_less_than(left_p, right_p) or atomic_equal(left_p, right_p)
        if op in (">", "gt"):
            return atomic_less_than(right_p, left_p)
        if op in (">=", "ge"):
            return atomic_less_than(right_p, left_p) or atomic_equal(left_p, right_p)
        raise AlgebraError(f"unsupported comparison operator {op!r}")

    return compare


def _arithmetic_function(op: str):
    def apply(left, right):
        left_n = xs_double(left) if isinstance(left, (str, UntypedAtomic)) else left
        right_n = xs_double(right) if isinstance(right, (str, UntypedAtomic)) else right
        if op == "+":
            return left_n + right_n
        if op == "-":
            return left_n - right_n
        if op == "*":
            return left_n * right_n
        if op == "div":
            if right_n == 0:
                raise XQueryDynamicError("division by zero", code="FOAR0001")
            return left_n / right_n
        if op == "idiv":
            if right_n == 0:
                raise XQueryDynamicError("integer division by zero", code="FOAR0001")
            # truncate toward zero, matching the interpreter and fn semantics
            quotient = int(abs(left_n) // abs(right_n))
            return quotient if (left_n >= 0) == (right_n >= 0) else -quotient
        if op == "mod":
            if right_n == 0:
                raise XQueryDynamicError("modulo by zero", code="FOAR0001")
            return left_n - right_n * int(left_n / right_n)
        raise AlgebraError(f"unsupported arithmetic operator {op!r}")

    return apply


# ---------------------------------------------------------------------------
# module-level conveniences
# ---------------------------------------------------------------------------


def compile_expression(expr: ast.Expr,
                       documents: DocumentResolver | None = None,
                       document: DocumentNode | None = None,
                       functions: dict[tuple[str, int], ast.FunctionDecl] | None = None,
                       backend: "str | type | None" = None) -> Operator:
    """Compile a top-level expression with a fresh compiler."""
    compiler = AlgebraCompiler(documents=documents, document=document, functions=functions,
                               backend=backend)
    return compiler.compile(expr)


def compile_recursion_body(body: ast.Expr, variable: str,
                           documents: DocumentResolver | None = None,
                           document: DocumentNode | None = None,
                           functions: dict[tuple[str, int], ast.FunctionDecl] | None = None,
                           analysis_only: bool = True,
                           backend: "str | type | None" = None) -> tuple[Operator, RecursionInput]:
    """Compile a recursion body for analysis or µ/µ∆ evaluation."""
    compiler = AlgebraCompiler(documents=documents, document=document,
                               functions=functions, analysis_only=analysis_only,
                               backend=backend)
    return compiler.compile_recursion_body(body, variable)
