"""Pluggable table storage for the algebra backend.

The operators in :mod:`repro.algebra.operators` never materialise rows
themselves: they dispatch through the kernel methods defined here, so the
physical representation of an ``iter|pos|item`` table is a backend choice.
Two backends ship with the repository:

``row`` (:class:`repro.algebra.table.Table`)
    The original reference backend: a tuple of row tuples.  Simple, easy to
    inspect, and the semantics baseline every other backend is tested
    against.

``columnar`` (:class:`repro.algebra.columnar.ColumnarTable`)
    Column-at-a-time storage: one contiguous list per column, shared
    (never copied) between derived tables.  Projection/renaming is O(1),
    joins and duplicate elimination are hash-based over key columns, and
    scalar maps touch only the columns they read.  This is the default
    execution backend and the seam for future physical backends (NumPy
    columns, SQL pushdown via ``sqlgen/``).

See DESIGN.md for the encoding and the protocol rationale.

Backends register themselves in :data:`BACKENDS`; :func:`resolve_backend`
maps a backend name (or a storage class) to the class the evaluator and
compiler instantiate tables with.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Iterator, Sequence
from typing import Any

from repro.errors import AlgebraError

#: Registered storage backends by name.
BACKENDS: dict[str, type] = {}

#: The backend used when none is requested explicitly.
DEFAULT_BACKEND = "columnar"


def register_backend(name: str, cls: type) -> None:
    """Register a storage class under a backend name."""
    BACKENDS[name] = cls
    cls.backend_name = name


def resolve_backend(backend: "str | type | None") -> type:
    """Map a backend name (or storage class, or None) to a storage class."""
    if backend is None:
        backend = DEFAULT_BACKEND
    if isinstance(backend, type):
        return backend
    try:
        return BACKENDS[backend]
    except KeyError:
        raise AlgebraError(
            f"unknown table backend {backend!r} (available: {', '.join(sorted(BACKENDS))})"
        ) from None


def available_backends() -> list[str]:
    return sorted(BACKENDS)


class TableStorage:
    """The storage protocol: what operators may ask of a table.

    Subclasses must provide ``columns``, :meth:`from_rows`, ``__len__``,
    :meth:`iter_rows` and the ``rows`` view; every kernel has a generic
    row-at-a-time implementation here that backends override with faster
    representations-specific code.
    """

    __slots__ = ()

    #: Filled in by :func:`register_backend`.
    backend_name: str = "?"

    columns: tuple[str, ...]

    # -- construction (required) ---------------------------------------------------

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()) -> "TableStorage":
        raise NotImplementedError

    @classmethod
    def from_columns(cls, columns: Sequence[str], data: Sequence[list]) -> "TableStorage":
        """Build a table from per-column value lists (zero-copy where possible)."""
        if not data:
            return cls.from_rows(columns)
        return cls.from_rows(columns, zip(*data))

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dict_rows: Iterable[dict]) -> "TableStorage":
        return cls.from_rows(columns, [tuple(row[c] for c in columns) for row in dict_rows])

    def empty_like(self) -> "TableStorage":
        return type(self).from_rows(self.columns)

    # -- accessors (required) -----------------------------------------------------

    def __len__(self) -> int:
        raise NotImplementedError

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        raise NotImplementedError

    @property
    def rows(self) -> tuple[tuple[Any, ...], ...]:
        """A materialised row-tuple view (for inspection and interop)."""
        raise NotImplementedError

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return self.iter_rows()

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TableStorage):
            return NotImplemented
        return (self.columns == other.columns
                and sorted(map(repr, self.iter_rows())) == sorted(map(repr, other.iter_rows())))

    def __hash__(self) -> None:  # tables are mutable views; identity hashing only
        return id(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"{type(self).__name__}({'|'.join(self.columns)}, {len(self)} rows)"

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise AlgebraError(f"unknown column '{name}' in schema {self.columns!r}") from None

    def column_values(self, name: str) -> list[Any]:
        index = self.column_index(name)
        return [row[index] for row in self.iter_rows()]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.iter_rows()]

    # -- generic kernels ----------------------------------------------------------

    def project(self, mapping: Sequence[tuple[str, str]]) -> "TableStorage":
        """Project/rename: mapping is a list of (new_name, old_name) pairs."""
        indices = [self.column_index(old) for _new, old in mapping]
        new_columns = [new for new, _old in mapping]
        return type(self).from_rows(
            new_columns, [tuple(row[i] for i in indices) for row in self.iter_rows()]
        )

    def select(self, predicate: Callable[[dict], bool]) -> "TableStorage":
        return type(self).from_rows(
            self.columns,
            [row for row in self.iter_rows() if predicate(dict(zip(self.columns, row)))],
        )

    def select_flag(self, column: str) -> "TableStorage":
        """σ — keep rows whose *column* holds a truthy value."""
        index = self.column_index(column)
        return type(self).from_rows(
            self.columns, [row for row in self.iter_rows() if row[index]]
        )

    def select_computed(self, sources: Sequence[str],
                        function: Callable[..., Any]) -> "TableStorage":
        """σ∘⊚ — keep rows where ``function(*sources)`` is truthy.

        The fused form of ``extend_computed`` + ``select_flag``: the flag
        column is never materialised.
        """
        indices = [self.column_index(c) for c in sources]
        return type(self).from_rows(
            self.columns,
            [row for row in self.iter_rows()
             if function(*(row[i] for i in indices))],
        )

    def extend(self, column: str, func: Callable[[dict], Any]) -> "TableStorage":
        new_rows = []
        for row in self.iter_rows():
            values = dict(zip(self.columns, row))
            new_rows.append(row + (func(values),))
        return type(self).from_rows(self.columns + (column,), new_rows)

    def extend_computed(self, result: str, sources: Sequence[str],
                        function: Callable[..., Any]) -> "TableStorage":
        """⊚ — append a column computed from *sources* via *function*."""
        indices = [self.column_index(c) for c in sources]
        rows = [row + (function(*(row[i] for i in indices)),) for row in self.iter_rows()]
        return type(self).from_rows(self.columns + (result,), rows)

    def map_column(self, column: str, function: Callable[[Any], Any]) -> "TableStorage":
        """Replace *column* by ``function`` applied value-wise."""
        index = self.column_index(column)
        rows = [row[:index] + (function(row[index]),) + row[index + 1:]
                for row in self.iter_rows()]
        return type(self).from_rows(self.columns, rows)

    def tag_rows(self, result: str, tag_base: int) -> "TableStorage":
        """# — append a unique row identifier column."""
        rows = [row + (tag_base + index,) for index, row in enumerate(self.iter_rows())]
        return type(self).from_rows(self.columns + (result,), rows)

    def distinct(self) -> "TableStorage":
        seen = set()
        unique = []
        for row in self.iter_rows():
            key = tuple(hashable(value) for value in row)
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return type(self).from_rows(self.columns, unique)

    def union_all(self, other: "TableStorage") -> "TableStorage":
        self._check_union_compatible(other)
        return type(self).from_rows(self.columns, list(self.iter_rows()) + list(other.iter_rows()))

    def difference(self, other: "TableStorage") -> "TableStorage":
        """EXCEPT ALL-style difference (removes one occurrence per match)."""
        self._check_union_compatible(other, verb="difference")
        from collections import Counter

        remove = Counter(tuple(hashable(v) for v in row) for row in other.iter_rows())
        kept = []
        for row in self.iter_rows():
            key = tuple(hashable(v) for v in row)
            if remove[key] > 0:
                remove[key] -= 1
                continue
            kept.append(row)
        return type(self).from_rows(self.columns, kept)

    def sort_by(self, columns: Sequence[str]) -> "TableStorage":
        indices = [self.column_index(name) for name in columns]
        return type(self).from_rows(
            self.columns,
            sorted(self.iter_rows(), key=lambda row: tuple(sort_key(row[i]) for i in indices)),
        )

    # -- joins ---------------------------------------------------------------------

    def _join_layout(self, other: "TableStorage") -> tuple[tuple[str, ...], list[int]]:
        out_columns = self.columns + tuple(c for c in other.columns if c not in self.columns)
        right_keep = [i for i, c in enumerate(other.columns) if c not in self.columns]
        return out_columns, right_keep

    def hash_join(self, other: "TableStorage",
                  conditions: Sequence[tuple[str, str]]) -> "TableStorage":
        """⋈ — equi-join on (left, right) column pairs, keys hashed by identity."""
        out_columns, right_keep = self._join_layout(other)
        left_indices = [self.column_index(l) for l, _r in conditions]
        right_indices = [other.column_index(r) for _l, r in conditions]
        index: dict[Any, list[tuple]] = {}
        for row in other.iter_rows():
            key = tuple(hashable(row[i]) for i in right_indices)
            index.setdefault(key, []).append(row)
        rows = []
        for row in self.iter_rows():
            key = tuple(hashable(row[i]) for i in left_indices)
            for match in index.get(key, ()):
                rows.append(row + tuple(match[i] for i in right_keep))
        return type(self).from_rows(out_columns, rows)

    def theta_join(self, other: "TableStorage", conditions: Sequence[tuple[str, str]],
                   compare: Callable[[Any, Any], bool]) -> "TableStorage":
        """⋈ — nested-loop join with a custom comparison per condition pair."""
        out_columns, right_keep = self._join_layout(other)
        left_indices = [self.column_index(l) for l, _r in conditions]
        right_indices = [other.column_index(r) for _l, r in conditions]
        rows = []
        for left_row in self.iter_rows():
            for right_row in other.iter_rows():
                if all(compare(left_row[li], right_row[ri])
                       for li, ri in zip(left_indices, right_indices)):
                    rows.append(left_row + tuple(right_row[i] for i in right_keep))
        return type(self).from_rows(out_columns, rows)

    def cross(self, other: "TableStorage") -> "TableStorage":
        """× — Cartesian product."""
        out_columns, right_keep = self._join_layout(other)
        rows = [
            l + tuple(r[i] for i in right_keep)
            for l in self.iter_rows()
            for r in other.iter_rows()
        ]
        return type(self).from_rows(out_columns, rows)

    # -- grouping -------------------------------------------------------------------

    def aggregate(self, kind: str, group_by: Sequence[str], source: str | None,
                  result: str, loop_iters: list | None = None) -> "TableStorage":
        """Grouping aggregate; *loop_iters* supplies empty groups (count = 0)."""
        group_by = tuple(group_by)
        groups: dict[tuple, list] = {}
        group_indices = [self.column_index(c) for c in group_by]
        source_index = self.column_index(source) if source else None
        for row in self.iter_rows():
            key = tuple(row[i] for i in group_indices)
            groups.setdefault(key, []).append(
                row[source_index] if source_index is not None else 1
            )
        if loop_iters is not None:
            for value in loop_iters:
                groups.setdefault((value,) if len(group_by) == 1 else tuple(), [])
        rows = [key + (apply_aggregate(kind, values),) for key, values in groups.items()]
        return type(self).from_rows(group_by + (result,), rows)

    def row_number(self, result: str, order_by: Sequence[str],
                   partition_by: Sequence[str] = ()) -> "TableStorage":
        """̺ — ordered row numbering within partitions."""
        table = self.sort_by(tuple(partition_by) + tuple(order_by))
        partition_indices = [table.column_index(c) for c in partition_by]
        counters: dict[tuple, int] = {}
        rows = []
        for row in table.iter_rows():
            key = tuple(row[i] for i in partition_indices)
            counters[key] = counters.get(key, 0) + 1
            rows.append(row + (counters[key],))
        return type(self).from_rows(table.columns + (result,), rows)

    # -- iter/item helpers (used by the macro operators) -----------------------------

    def iter_item_pairs(self) -> Iterator[tuple[Any, Any]]:
        """Iterate (iter, item) pairs of an ``iter|…|item`` table."""
        iter_index = self.column_index("iter")
        item_index = self.column_index("item")
        for row in self.iter_rows():
            yield row[iter_index], row[item_index]

    def items_by_iteration(self) -> tuple[dict, list]:
        """Group the ``item`` column per ``iter`` value, keeping first-seen
        iteration order: ``(iteration → item list, iteration order)``.

        This is the batch entry point of the macro operators (step join,
        ``fn:id``, constructors): one pass over the storage hands each
        kernel whole per-iteration item columns instead of row pairs.
        """
        per_iteration: dict[Any, list] = {}
        order: list = []
        for iteration, item in self.iter_item_pairs():
            bucket = per_iteration.get(iteration)
            if bucket is None:
                bucket = per_iteration[iteration] = []
                order.append(iteration)
            bucket.append(item)
        return per_iteration, order

    # -- internals --------------------------------------------------------------------

    def _check_union_compatible(self, other: "TableStorage", verb: str = "union") -> None:
        if self.columns != other.columns:
            raise AlgebraError(
                f"{verb} over incompatible schemas {self.columns!r} and {other.columns!r}"
            )


def apply_aggregate(kind: str, values: list) -> Any:
    if kind == "count":
        return len(values)
    if not values:
        return None
    if kind == "sum":
        return sum(values)
    if kind == "max":
        return max(values)
    if kind == "min":
        return min(values)
    raise AlgebraError(f"unknown aggregate kind '{kind}'")


def hashable(value: Any) -> Any:
    """Rows may carry node references; hash them by identity."""
    if value.__class__.__hash__ is not None:
        try:
            hash(value)
            return value
        except TypeError:  # pragma: no cover - defensive
            pass
    return id(value)


def sort_key(value: Any) -> Any:
    if hasattr(value, "order_key"):
        return (1, value.order_key)
    if isinstance(value, bool):
        return (2, value)
    if isinstance(value, (int, float)):
        return (0, value)
    return (3, str(value))
