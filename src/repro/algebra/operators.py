"""The relational algebra dialect of Table 1.

Every operator records whether a union may be pushed up through it
(``union_pushable`` — the "Push?" column of Table 1) and knows how to
compute its output table from its input tables.  Plans are DAGs of
operators; sharing is by object identity and the evaluator memoises
accordingly.

Following the paper, the non-textbook operators (the XPath step join, the
``fn:id`` lookup, node constructors and the fixpoint operators µ/µ∆) are
"macros": single operators standing for micro-plans of standard relational
operators.  Their ``union_pushable`` flags are those Table 1 assigns to the
macro as a whole.
"""

from __future__ import annotations

import itertools
from typing import Any, Callable, Optional, Sequence

from repro.errors import AlgebraError
from repro.algebra.table import Table
from repro.xdm.items import is_node, string_value_of_item
from repro.xdm.node import AttributeNode, CommentNode, DocumentNode, ElementNode, Node, TextNode
from repro.xdm.sequence import ddo

_operator_ids = itertools.count(1)

_EVALUATOR_SINGLETON = None


def _shared_evaluator():
    """A lazily created XQuery evaluator reused by the step-join macro."""
    global _EVALUATOR_SINGLETON
    if _EVALUATOR_SINGLETON is None:
        from repro.xquery.evaluator import Evaluator

        _EVALUATOR_SINGLETON = Evaluator()
    return _EVALUATOR_SINGLETON


class Operator:
    """Base class of all plan operators."""

    #: Symbol used when rendering plans (Table 1 notation).
    symbol: str = "?"
    #: The "Push?" column of Table 1: may ∪ be pushed up through this operator?
    union_pushable: bool = False
    #: True for operators the checker may skip when duplicates/order are
    #: irrelevant (Section 4.1): duplicate elimination and row numbering.
    order_or_duplicates_only: bool = False

    def __init__(self, children: Sequence["Operator"] = ()):  # noqa: D401
        self.children: tuple[Operator, ...] = tuple(children)
        self.operator_id: int = next(_operator_ids)
        #: Optional template tag (plan fragments the checker can big-step over).
        self.template: Optional[str] = None

    # -- evaluation -----------------------------------------------------------

    def compute(self, inputs: list[Table], engine: "AlgebraEngineProtocol") -> Table:
        """Compute the operator's output from its children's outputs."""
        raise NotImplementedError

    # -- rendering -------------------------------------------------------------

    def label(self) -> str:
        return self.symbol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.operator_id}>"

    def iter_operators(self):
        """Pre-order DAG iteration (each operator yielded once)."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            operator = stack.pop()
            if id(operator) in seen:
                continue
            seen.add(id(operator))
            yield operator
            stack.extend(operator.children)


class AlgebraEngineProtocol:
    """What operators may ask of the engine during evaluation."""

    def recursion_input(self) -> Table:  # pragma: no cover - interface only
        raise NotImplementedError

    def evaluate_plan(self, plan: Operator) -> Table:  # pragma: no cover - interface only
        raise NotImplementedError


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------


class LiteralTable(Operator):
    """A constant table (used for literal frequencies, loop seeds, ...)."""

    symbol = "table"
    union_pushable = True

    def __init__(self, table: Table):
        super().__init__()
        self.table = table

    def compute(self, inputs, engine):
        return self.table

    def label(self):
        return f"table({'|'.join(self.table.columns)}, {len(self.table)})"


class DocumentRoot(Operator):
    """The ``fn:doc`` leaf: one row per loop iteration carrying the doc node."""

    symbol = "doc"
    union_pushable = True

    def __init__(self, loop: Operator, document: DocumentNode):
        super().__init__([loop])
        self.document = document

    def compute(self, inputs, engine):
        loop = inputs[0]
        iter_index = loop.column_index("iter")
        rows = [(row[iter_index], 1, self.document) for row in loop.rows]
        return Table(("iter", "pos", "item"), rows)


class RecursionInput(Operator):
    """The recursion variable's input inside a fixpoint body plan.

    During µ/µ∆ evaluation the engine rebinds this leaf to the current
    (respectively delta) intermediate result; during the distributivity
    check it is the place where the symbolic ∪ starts its way up the plan
    (Figure 7a).
    """

    symbol = "$x"
    union_pushable = True

    def __init__(self, variable: str):
        super().__init__()
        self.variable = variable

    def compute(self, inputs, engine):
        return engine.recursion_input()

    def label(self):
        return f"${self.variable}"


# ---------------------------------------------------------------------------
# textbook operators
# ---------------------------------------------------------------------------


class Project(Operator):
    """π — projection with renaming: ``mapping`` is (new, old) pairs."""

    symbol = "π"
    union_pushable = True

    def __init__(self, child: Operator, mapping: Sequence[tuple[str, str]]):
        super().__init__([child])
        self.mapping = tuple(mapping)

    def compute(self, inputs, engine):
        return inputs[0].project(self.mapping)

    def label(self):
        parts = [new if new == old else f"{new}:{old}" for new, old in self.mapping]
        return f"π_{{{','.join(parts)}}}"


class Select(Operator):
    """σ — keep rows whose boolean column is true."""

    symbol = "σ"
    union_pushable = True

    def __init__(self, child: Operator, column: str):
        super().__init__([child])
        self.column = column

    def compute(self, inputs, engine):
        index = inputs[0].column_index(self.column)
        return Table(inputs[0].columns, [row for row in inputs[0].rows if row[index]])

    def label(self):
        return f"σ_{self.column}"


class Join(Operator):
    """⋈ — equi-join on pairs of columns (left column, right column)."""

    symbol = "⋈"
    union_pushable = True

    def __init__(self, left: Operator, right: Operator,
                 conditions: Sequence[tuple[str, str]],
                 comparison: Callable[[Any, Any], bool] | None = None):
        super().__init__([left, right])
        self.conditions = tuple(conditions)
        self.comparison = comparison

    def compute(self, inputs, engine):
        left, right = inputs
        out_columns = left.columns + tuple(c for c in right.columns if c not in left.columns)
        right_keep = [i for i, c in enumerate(right.columns) if c not in left.columns]
        left_indices = [left.column_index(l) for l, _r in self.conditions]
        right_indices = [right.column_index(r) for _l, r in self.conditions]
        compare = self.comparison or _default_equality

        rows = []
        if self.comparison is None and self.conditions:
            # hash join on the (hashable-by-identity) key
            from repro.algebra.table import _hashable

            index: dict[tuple, list[tuple]] = {}
            for row in right.rows:
                key = tuple(_hashable(row[i]) for i in right_indices)
                index.setdefault(key, []).append(row)
            for row in left.rows:
                key = tuple(_hashable(row[i]) for i in left_indices)
                for match in index.get(key, ()):
                    rows.append(row + tuple(match[i] for i in right_keep))
            return Table(out_columns, rows)

        for left_row in left.rows:
            for right_row in right.rows:
                if all(
                    compare(left_row[li], right_row[ri])
                    for li, ri in zip(left_indices, right_indices)
                ):
                    rows.append(left_row + tuple(right_row[i] for i in right_keep))
        return Table(out_columns, rows)

    def label(self):
        condition = ",".join(f"{l}={r}" for l, r in self.conditions)
        return f"⋈_{{{condition}}}"


def _default_equality(left: Any, right: Any) -> bool:
    if is_node(left) or is_node(right):
        return left is right
    from repro.xdm.comparison import atomic_equal

    return atomic_equal(left, right)


class Cross(Operator):
    """× — Cartesian product."""

    symbol = "×"
    union_pushable = True

    def compute(self, inputs, engine):
        left, right = inputs
        out_columns = left.columns + tuple(c for c in right.columns if c not in left.columns)
        right_keep = [i for i, c in enumerate(right.columns) if c not in left.columns]
        rows = [
            l + tuple(r[i] for i in right_keep)
            for l in left.rows
            for r in right.rows
        ]
        return Table(out_columns, rows)


class Distinct(Operator):
    """δ — duplicate elimination.

    Not union-pushable under the bag semantics of Table 1, but the
    distributivity checker may skip it entirely because distributivity is
    defined up to duplicates (Section 4.1) — hence
    ``order_or_duplicates_only``.
    """

    symbol = "δ"
    union_pushable = False
    order_or_duplicates_only = True

    def compute(self, inputs, engine):
        return inputs[0].distinct()


class UnionAll(Operator):
    """∪ — union (bag union of union-compatible inputs)."""

    symbol = "∪"
    union_pushable = True

    def compute(self, inputs, engine):
        left, right = inputs
        return left.union_all(right)


class Difference(Operator):
    """\\ — EXCEPT ALL.  Consumes both inputs entirely: not pushable."""

    symbol = "\\"
    union_pushable = False

    def compute(self, inputs, engine):
        left, right = inputs
        return left.difference(right)


class Aggregate(Operator):
    """Grouping aggregate (count/sum/max/min) — blocks union push-up.

    ``group_by`` names the grouping columns (typically ``iter``),
    ``source`` the aggregated column, ``result`` the output column.
    ``loop`` optionally supplies the iterations that must appear in the
    output even when they have no input rows (count = 0 semantics).
    """

    symbol = "count"
    union_pushable = False

    def __init__(self, child: Operator, kind: str, group_by: Sequence[str],
                 source: Optional[str], result: str, loop: Operator | None = None):
        children = [child] + ([loop] if loop is not None else [])
        super().__init__(children)
        self.kind = kind
        self.group_by = tuple(group_by)
        self.source = source
        self.result = result
        self.has_loop = loop is not None

    def compute(self, inputs, engine):
        table = inputs[0]
        groups: dict[tuple, list] = {}
        group_indices = [table.column_index(c) for c in self.group_by]
        source_index = table.column_index(self.source) if self.source else None
        for row in table.rows:
            key = tuple(row[i] for i in group_indices)
            groups.setdefault(key, []).append(row[source_index] if source_index is not None else 1)
        if self.has_loop:
            loop = inputs[1]
            loop_iter = loop.column_index("iter")
            for row in loop.rows:
                groups.setdefault((row[loop_iter],) if len(self.group_by) == 1 else tuple(), [])
        rows = []
        for key, values in groups.items():
            rows.append(key + (self._aggregate(values),))
        return Table(self.group_by + (self.result,), rows)

    def _aggregate(self, values: list) -> Any:
        if self.kind == "count":
            return len(values)
        if not values:
            return None
        if self.kind == "sum":
            return sum(values)
        if self.kind == "max":
            return max(values)
        if self.kind == "min":
            return min(values)
        raise AlgebraError(f"unknown aggregate kind '{self.kind}'")

    def label(self):
        return f"{self.kind}_{self.result}/{','.join(self.group_by)}"


class ScalarOp(Operator):
    """⊚ — n-ary arithmetic/comparison operator computing a new column."""

    symbol = "⊚"
    union_pushable = True

    def __init__(self, child: Operator, result: str, sources: Sequence[str],
                 function: Callable[..., Any], name: str = "fun"):
        super().__init__([child])
        self.result = result
        self.sources = tuple(sources)
        self.function = function
        self.name = name

    def compute(self, inputs, engine):
        table = inputs[0]
        indices = [table.column_index(c) for c in self.sources]
        rows = [row + (self.function(*(row[i] for i in indices)),) for row in table.rows]
        return Table(table.columns + (self.result,), rows)

    def label(self):
        return f"⊚{self.name}_{self.result}:<{','.join(self.sources)}>"


class RowTag(Operator):
    """# — attach a unique row identifier column."""

    symbol = "#"
    union_pushable = True

    def __init__(self, child: Operator, result: str):
        super().__init__([child])
        self.result = result

    def compute(self, inputs, engine):
        table = inputs[0]
        rows = [row + (f"r{self.operator_id}_{index}",) for index, row in enumerate(table.rows)]
        return Table(table.columns + (self.result,), rows)

    def label(self):
        return f"#_{self.result}"


class RowNumber(Operator):
    """̺ — ordered row numbering; requires its whole input, blocks push-up."""

    symbol = "̺"
    union_pushable = False
    order_or_duplicates_only = True

    def __init__(self, child: Operator, result: str, order_by: Sequence[str],
                 partition_by: Sequence[str] = ()):
        super().__init__([child])
        self.result = result
        self.order_by = tuple(order_by)
        self.partition_by = tuple(partition_by)

    def compute(self, inputs, engine):
        table = inputs[0].sort_by(self.partition_by + self.order_by)
        partition_indices = [table.column_index(c) for c in self.partition_by]
        counters: dict[tuple, int] = {}
        rows = []
        for row in table.rows:
            key = tuple(row[i] for i in partition_indices)
            counters[key] = counters.get(key, 0) + 1
            rows.append(row + (counters[key],))
        return Table(table.columns + (self.result,), rows)

    def label(self):
        return f"̺_{self.result}:<{','.join(self.order_by)}>"


# ---------------------------------------------------------------------------
# XQuery-specific macro operators
# ---------------------------------------------------------------------------


class StepJoin(Operator):
    """ — the XPath location-step macro (axis ``α``, node test ``n``).

    Input: ``iter|pos|item`` with node items (the context nodes).
    Output: ``iter|pos|item`` containing the step results per iteration in
    document order without duplicates (the ddo that the macro encapsulates).
    """

    symbol = "step"
    union_pushable = True

    def __init__(self, child: Operator, axis: str, node_test_kind: str,
                 node_test_name: Optional[str] = None):
        super().__init__([child])
        self.axis = axis
        self.node_test_kind = node_test_kind
        self.node_test_name = node_test_name
        self.template = "step"

    def compute(self, inputs, engine):
        table = inputs[0]
        iter_index = table.column_index("iter")
        item_index = table.column_index("item")
        per_iteration: dict[Any, list[Node]] = {}
        iteration_order: list[Any] = []
        for row in table.rows:
            iteration = row[iter_index]
            node = row[item_index]
            if not is_node(node):
                raise AlgebraError("step join applied to a non-node item")
            if iteration not in per_iteration:
                per_iteration[iteration] = []
                iteration_order.append(iteration)
            per_iteration[iteration].extend(self._step(node))
        rows = []
        for iteration in iteration_order:
            for position, node in enumerate(ddo(per_iteration[iteration]), start=1):
                rows.append((iteration, position, node))
        return Table(("iter", "pos", "item"), rows)

    def _step(self, node: Node) -> list[Node]:
        from repro.xquery import ast as xq_ast

        evaluator = _shared_evaluator()
        axis_nodes = evaluator._axis_nodes(node, self.axis)
        test = xq_ast.NodeTest(self.node_test_kind, self.node_test_name)
        return [candidate for candidate in axis_nodes
                if evaluator._node_test(candidate, test, self.axis)]

    def label(self):
        if self.node_test_kind == "name":
            test = self.node_test_name or "*"
        else:
            test = f"{self.node_test_kind}({self.node_test_name or ''})"
        return f"{self.axis}::{test}"


class IdLookup(Operator):
    """The ``fn:id`` macro: resolve ID strings to elements of a document."""

    symbol = "id"
    union_pushable = True

    def __init__(self, child: Operator, document: DocumentNode):
        super().__init__([child])
        self.document = document
        self.template = "id"

    def compute(self, inputs, engine):
        table = inputs[0]
        iter_index = table.column_index("iter")
        item_index = table.column_index("item")
        per_iteration: dict[Any, list[Node]] = {}
        order: list[Any] = []
        for row in table.rows:
            iteration = row[iter_index]
            if iteration not in per_iteration:
                per_iteration[iteration] = []
                order.append(iteration)
            value = row[item_index]
            text = string_value_of_item(value)
            for token in text.split():
                element = self.document.lookup_id(token)
                if element is not None:
                    per_iteration[iteration].append(element)
        rows = []
        for iteration in order:
            for position, node in enumerate(ddo(per_iteration[iteration]), start=1):
                rows.append((iteration, position, node))
        return Table(("iter", "pos", "item"), rows)


class AtomizeValue(Operator):
    """Itemwise atomization (typed value of nodes) — pushable."""

    symbol = "data"
    union_pushable = True

    def compute(self, inputs, engine):
        table = inputs[0]
        item_index = table.column_index("item")
        rows = []
        for row in table.rows:
            value = row[item_index]
            atomized = value.typed_value() if is_node(value) else value
            rows.append(row[:item_index] + (atomized,) + row[item_index + 1:])
        return Table(table.columns, rows)


class NodeConstructor(Operator):
    """ε — node construction; creates fresh identities, never pushable."""

    symbol = "ε"
    union_pushable = False

    def __init__(self, child: Operator, kind: str, name: Optional[str] = None):
        super().__init__([child])
        self.kind = kind
        self.name = name

    def compute(self, inputs, engine):
        table = inputs[0]
        iter_index = table.column_index("iter")
        item_index = table.column_index("item")
        per_iteration: dict[Any, list] = {}
        order = []
        for row in table.rows:
            iteration = row[iter_index]
            if iteration not in per_iteration:
                per_iteration[iteration] = []
                order.append(iteration)
            per_iteration[iteration].append(row[item_index])
        rows = []
        for iteration in order:
            rows.append((iteration, 1, self._construct(per_iteration[iteration])))
        return Table(("iter", "pos", "item"), rows)

    def _construct(self, items: list):
        text = " ".join(string_value_of_item(item) for item in items)
        if self.kind == "text":
            return TextNode(text)
        if self.kind == "comment":
            return CommentNode(text)
        if self.kind == "attribute":
            return AttributeNode(self.name or "value", text)
        element = ElementNode(self.name or "element")
        for item in items:
            if is_node(item):
                from repro.xdm.document import copy_node

                if isinstance(item, AttributeNode):
                    element.add_attribute(AttributeNode(item.name, item.value))
                else:
                    element.append_child(copy_node(item))
            else:
                element.append_child(TextNode(string_value_of_item(item)))
        return element

    def label(self):
        return f"ε_{self.kind}({self.name or ''})"


# ---------------------------------------------------------------------------
# fixpoint operators
# ---------------------------------------------------------------------------


class Fixpoint(Operator):
    """µ / µ∆ — the algebraic fixpoint operators (Section 4.1).

    ``children[0]`` is the seed plan, ``body`` is the recursion body plan
    containing exactly one :class:`RecursionInput` leaf.  ``variant`` is
    ``"mu"`` (Naive) or ``"mu_delta"`` (Delta).  The operator is evaluated by
    the algebra engine, which iterates the body plan and rebinds the
    recursion input between rounds; it is itself union-pushable (Table 1).
    """

    symbol = "µ"
    union_pushable = True

    def __init__(self, seed: Operator, body: Operator, recursion_input: RecursionInput,
                 variant: str = "mu"):
        super().__init__([seed, body])
        self.recursion_input = recursion_input
        self.variant = variant

    @property
    def seed_plan(self) -> Operator:
        return self.children[0]

    @property
    def body_plan(self) -> Operator:
        return self.children[1]

    def compute(self, inputs, engine):
        raise AlgebraError(
            "fixpoint operators are evaluated by the algebra engine, not standalone"
        )

    def label(self):
        return "µ∆" if self.variant == "mu_delta" else "µ"
