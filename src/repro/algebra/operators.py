"""The relational algebra dialect of Table 1.

Every operator records whether a union may be pushed up through it
(``union_pushable`` — the "Push?" column of Table 1) and knows how to
compute its output table from its input tables.  Plans are DAGs of
operators; sharing is by object identity and the evaluator memoises
accordingly.

Operators are *storage-agnostic*: they never materialise rows themselves
but dispatch through the kernel methods of
:class:`~repro.algebra.storage.TableStorage` (hash joins, set-based
duplicate elimination, column-wise scalar maps), and construct fresh tables
through the engine's storage factory.  The physical representation — row
tuples or columnar — is chosen by the evaluator; see
:mod:`repro.algebra.storage`.

Following the paper, the non-textbook operators (the XPath step join, the
``fn:id`` lookup, node constructors and the fixpoint operators µ/µ∆) are
"macros": single operators standing for micro-plans of standard relational
operators.  Their ``union_pushable`` flags are those Table 1 assigns to the
macro as a whole.
"""

from __future__ import annotations

import itertools
from collections.abc import Callable, Sequence
from typing import Any

from repro.errors import AlgebraError
from repro.algebra.storage import TableStorage
from repro.algebra.table import Table
from repro.xdm.index import (
    PLANE_AXES as _PLANE_AXES,
    IndexSet,
    batch_step,
    indexed_step,
)
from repro.xdm.items import is_node, string_value_of_item
from repro.xdm.node import AttributeNode, CommentNode, DocumentNode, ElementNode, Node, TextNode
from repro.xdm.sequence import ddo
from repro.xquery.pushdown import PROFILE, PositionShape, apply_shapes

_operator_ids = itertools.count(1)

#: Multiplier separating the row-tag ranges of distinct RowTag operators.
_ROW_TAG_STRIDE = 1 << 40

_EVALUATOR_SINGLETON = None


def _shared_evaluator():
    """A lazily created XQuery evaluator reused by the step-join macro."""
    global _EVALUATOR_SINGLETON
    if _EVALUATOR_SINGLETON is None:
        from repro.xquery.evaluator import Evaluator

        _EVALUATOR_SINGLETON = Evaluator()
    return _EVALUATOR_SINGLETON


class Operator:
    """Base class of all plan operators."""

    #: Symbol used when rendering plans (Table 1 notation).
    symbol: str = "?"
    #: The "Push?" column of Table 1: may ∪ be pushed up through this operator?
    union_pushable: bool = False
    #: True for operators the checker may skip when duplicates/order are
    #: irrelevant (Section 4.1): duplicate elimination and row numbering.
    order_or_duplicates_only: bool = False

    def __init__(self, children: Sequence["Operator"] = ()):  # noqa: D401
        self.children: tuple[Operator, ...] = tuple(children)
        self.operator_id: int = next(_operator_ids)
        #: Optional template tag (plan fragments the checker can big-step over).
        self.template: str | None = None

    # -- evaluation -----------------------------------------------------------

    def compute(self, inputs: list[TableStorage], engine: "AlgebraEngineProtocol") -> TableStorage:
        """Compute the operator's output from its children's outputs."""
        raise NotImplementedError

    # -- rendering -------------------------------------------------------------

    def label(self) -> str:
        return self.symbol

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} #{self.operator_id}>"

    def iter_operators(self):
        """Pre-order DAG iteration (each operator yielded once)."""
        seen: set[int] = set()
        stack = [self]
        while stack:
            operator = stack.pop()
            if id(operator) in seen:
                continue
            seen.add(id(operator))
            yield operator
            stack.extend(operator.children)


class AlgebraEngineProtocol:
    """What operators may ask of the engine during evaluation."""

    #: Per-run memo the macro operators may use (None disables caching).
    #: Entries keep a strong reference to their key object so ``id()`` reuse
    #: after garbage collection cannot alias cache entries.
    macro_cache: dict | None = None

    #: Whether the step macro may answer from the structural index's batch
    #: kernels (:mod:`repro.xdm.index`).
    use_index: bool = True

    def recursion_input(self) -> TableStorage:  # pragma: no cover - interface only
        raise NotImplementedError

    def evaluate_plan(self, plan: Operator) -> TableStorage:  # pragma: no cover - interface only
        raise NotImplementedError

    def make_table(self, columns: Sequence[str], rows=()) -> TableStorage:
        """Construct a table in the engine's storage backend."""
        return Table(columns, rows)

    def make_table_from_columns(self, columns: Sequence[str], data: Sequence[list]) -> TableStorage:
        """Construct a table from per-column value lists."""
        return Table.from_columns(columns, data)

    def adopt(self, table: TableStorage) -> TableStorage:
        """Convert *table* into the engine's storage backend if needed."""
        return table


# ---------------------------------------------------------------------------
# leaves
# ---------------------------------------------------------------------------


class LiteralTable(Operator):
    """A constant table (used for literal frequencies, loop seeds, ...)."""

    symbol = "table"
    union_pushable = True

    def __init__(self, table: TableStorage):
        super().__init__()
        self.table = table

    def compute(self, inputs, engine):
        return engine.adopt(self.table)

    def label(self):
        return f"table({'|'.join(self.table.columns)}, {len(self.table)})"


class DocumentRoot(Operator):
    """The ``fn:doc`` leaf: one row per loop iteration carrying the doc node."""

    symbol = "doc"
    union_pushable = True

    def __init__(self, loop: Operator, document: DocumentNode):
        super().__init__([loop])
        self.document = document

    def compute(self, inputs, engine):
        iters = inputs[0].column_values("iter")
        count = len(iters)
        return engine.make_table_from_columns(
            ("iter", "pos", "item"), [iters, [1] * count, [self.document] * count]
        )


class RecursionInput(Operator):
    """The recursion variable's input inside a fixpoint body plan.

    During µ/µ∆ evaluation the engine rebinds this leaf to the current
    (respectively delta) intermediate result; during the distributivity
    check it is the place where the symbolic ∪ starts its way up the plan
    (Figure 7a).
    """

    symbol = "$x"
    union_pushable = True

    def __init__(self, variable: str):
        super().__init__()
        self.variable = variable

    def compute(self, inputs, engine):
        return engine.recursion_input()

    def label(self):
        return f"${self.variable}"


# ---------------------------------------------------------------------------
# textbook operators
# ---------------------------------------------------------------------------


class Project(Operator):
    """π — projection with renaming: ``mapping`` is (new, old) pairs."""

    symbol = "π"
    union_pushable = True

    def __init__(self, child: Operator, mapping: Sequence[tuple[str, str]]):
        super().__init__([child])
        self.mapping = tuple(mapping)

    def compute(self, inputs, engine):
        return inputs[0].project(self.mapping)

    def label(self):
        parts = [new if new == old else f"{new}:{old}" for new, old in self.mapping]
        return f"π_{{{','.join(parts)}}}"


class Select(Operator):
    """σ — keep rows whose boolean column is true.

    The textbook operator of Table 1, kept as the reference primitive:
    since the σ∘⊚ fusion the compiler emits :class:`SelectComputed`
    instead, so this operator only appears in hand-built plans and the
    operator unit tests.
    """

    symbol = "σ"
    union_pushable = True

    def __init__(self, child: Operator, column: str):
        super().__init__([child])
        self.column = column

    def compute(self, inputs, engine):
        return inputs[0].select_flag(self.column)

    def label(self):
        return f"σ_{self.column}"


class SelectComputed(Operator):
    """σ∘⊚ — fused select: keep rows where ``function(*sources)`` is truthy.

    Replaces the ``Select(ScalarOp(child, flag, …), flag)`` pair the
    compiler used to emit for predicate/where conditions: the boolean
    column is never materialised and only one output table is built.
    Union-pushable for the same reason the pair is.
    """

    symbol = "σ⊚"
    union_pushable = True

    def __init__(self, child: Operator, sources: Sequence[str],
                 function: Callable[..., Any], name: str = "fun"):
        super().__init__([child])
        self.sources = tuple(sources)
        self.function = function
        self.name = name

    def compute(self, inputs, engine):
        return inputs[0].select_computed(self.sources, self.function)

    def label(self):
        return f"σ⊚{self.name}<{','.join(self.sources)}>"


class Join(Operator):
    """⋈ — equi-join on pairs of columns (left column, right column)."""

    symbol = "⋈"
    union_pushable = True

    def __init__(self, left: Operator, right: Operator,
                 conditions: Sequence[tuple[str, str]],
                 comparison: Callable[[Any, Any], bool] | None = None):
        super().__init__([left, right])
        self.conditions = tuple(conditions)
        self.comparison = comparison

    def compute(self, inputs, engine):
        left, right = inputs
        if self.comparison is None and self.conditions:
            return left.hash_join(right, self.conditions)
        compare = self.comparison or _default_equality
        return left.theta_join(right, self.conditions, compare)

    def label(self):
        condition = ",".join(f"{l}={r}" for l, r in self.conditions)
        return f"⋈_{{{condition}}}"


def _default_equality(left: Any, right: Any) -> bool:
    if is_node(left) or is_node(right):
        return left is right
    from repro.xdm.comparison import atomic_equal

    return atomic_equal(left, right)


class Cross(Operator):
    """× — Cartesian product."""

    symbol = "×"
    union_pushable = True

    def compute(self, inputs, engine):
        left, right = inputs
        return left.cross(right)


class Distinct(Operator):
    """δ — duplicate elimination.

    Not union-pushable under the bag semantics of Table 1, but the
    distributivity checker may skip it entirely because distributivity is
    defined up to duplicates (Section 4.1) — hence
    ``order_or_duplicates_only``.
    """

    symbol = "δ"
    union_pushable = False
    order_or_duplicates_only = True

    def compute(self, inputs, engine):
        return inputs[0].distinct()


class UnionAll(Operator):
    """∪ — union (bag union of union-compatible inputs)."""

    symbol = "∪"
    union_pushable = True

    def compute(self, inputs, engine):
        left, right = inputs
        return left.union_all(right)


class Difference(Operator):
    """\\ — EXCEPT ALL.  Consumes both inputs entirely: not pushable."""

    symbol = "\\"
    union_pushable = False

    def compute(self, inputs, engine):
        left, right = inputs
        return left.difference(right)


class Aggregate(Operator):
    """Grouping aggregate (count/sum/max/min) — blocks union push-up.

    ``group_by`` names the grouping columns (typically ``iter``),
    ``source`` the aggregated column, ``result`` the output column.
    ``loop`` optionally supplies the iterations that must appear in the
    output even when they have no input rows (count = 0 semantics).
    """

    symbol = "count"
    union_pushable = False

    def __init__(self, child: Operator, kind: str, group_by: Sequence[str],
                 source: str | None, result: str, loop: Operator | None = None):
        children = [child] + ([loop] if loop is not None else [])
        super().__init__(children)
        self.kind = kind
        self.group_by = tuple(group_by)
        self.source = source
        self.result = result
        self.has_loop = loop is not None

    def compute(self, inputs, engine):
        loop_iters = inputs[1].column_values("iter") if self.has_loop else None
        return inputs[0].aggregate(self.kind, self.group_by, self.source,
                                   self.result, loop_iters=loop_iters)

    def label(self):
        return f"{self.kind}_{self.result}/{','.join(self.group_by)}"


class ScalarOp(Operator):
    """⊚ — n-ary arithmetic/comparison operator computing a new column."""

    symbol = "⊚"
    union_pushable = True

    def __init__(self, child: Operator, result: str, sources: Sequence[str],
                 function: Callable[..., Any], name: str = "fun"):
        super().__init__([child])
        self.result = result
        self.sources = tuple(sources)
        self.function = function
        self.name = name

    def compute(self, inputs, engine):
        return inputs[0].extend_computed(self.result, self.sources, self.function)

    def label(self):
        return f"⊚{self.name}_{self.result}:<{','.join(self.sources)}>"


class RowTag(Operator):
    """# — attach a unique row identifier column."""

    symbol = "#"
    union_pushable = True

    def __init__(self, child: Operator, result: str):
        super().__init__([child])
        self.result = result

    def compute(self, inputs, engine):
        return inputs[0].tag_rows(self.result, self.operator_id * _ROW_TAG_STRIDE)

    def label(self):
        return f"#_{self.result}"


class RowNumber(Operator):
    """̺ — ordered row numbering; requires its whole input, blocks push-up."""

    symbol = "̺"
    union_pushable = False
    order_or_duplicates_only = True

    def __init__(self, child: Operator, result: str, order_by: Sequence[str],
                 partition_by: Sequence[str] = ()):
        super().__init__([child])
        self.result = result
        self.order_by = tuple(order_by)
        self.partition_by = tuple(partition_by)

    def compute(self, inputs, engine):
        return inputs[0].row_number(self.result, self.order_by, self.partition_by)

    def label(self):
        return f"̺_{self.result}:<{','.join(self.order_by)}>"


# ---------------------------------------------------------------------------
# XQuery-specific macro operators
# ---------------------------------------------------------------------------


def _group_items_by_iteration(table: TableStorage,
                              require_nodes: bool = False) -> tuple[dict, list]:
    """Group an ``iter|…|item`` table's items per iteration, keeping order."""
    per_iteration, order = table.items_by_iteration()
    if require_nodes:
        for bucket in per_iteration.values():
            for item in bucket:
                if not is_node(item):
                    raise AlgebraError("step join applied to a non-node item")
    return per_iteration, order


class StepJoin(Operator):
    """ — the XPath location-step macro (axis ``α``, node test ``n``).

    Input: ``iter|pos|item`` with node items (the context nodes).
    Output: ``iter|pos|item`` containing the step results per iteration in
    document order without duplicates (the ddo that the macro encapsulates).

    With the structural index enabled (the default; see
    :mod:`repro.xdm.index` and the engine's ``use_index`` flag) each
    iteration's whole context column goes through one *batch step kernel*:
    descendant steps become merged pre-order interval slices into the name
    inverted index — duplicate-free and document-ordered by construction —
    and the remaining axes dedup once by identity and sort once by order
    key.  Without the index the macro falls back to per-node axis walks
    memoised in the engine's macro cache.

    ``pushed`` carries predicate *shapes* the compiler recognized and
    resolved at compile time (:mod:`repro.xquery.pushdown`): value and
    existence tests filter through the value inverted indexes; positional
    shapes slice the axis-ordered per-node result — which is also how the
    macro gains positional predicate support, something the generic
    materialize-then-filter predicate plan cannot express.  Value-only
    shapes commute with the per-iteration union, so they are applied to
    the merged batch column; any positional shape forces per-context-node
    application (XQuery counts positions per context node).
    """

    symbol = "step"
    union_pushable = True

    def __init__(self, child: Operator, axis: str, node_test_kind: str,
                 node_test_name: str | None = None, pushed: tuple = ()):
        super().__init__([child])
        self.axis = axis
        self.node_test_kind = node_test_kind
        self.node_test_name = node_test_name
        self.pushed = tuple(pushed)
        self._pushed_values = tuple(
            (None if isinstance(shape, PositionShape) else (shape.values or ()))
            for shape in self.pushed
        )
        self._pushed_positional = any(isinstance(shape, PositionShape)
                                      for shape in self.pushed)
        self.template = "step"

    def compute(self, inputs, engine):
        per_iteration, order = _group_items_by_iteration(inputs[0], require_nodes=True)
        use_index = getattr(engine, "use_index", True)
        index_set = None  # built lazily, shared by all iterations of this call
        timer = PROFILE.timer() if PROFILE.enabled and self.pushed else 0.0
        iters: list = []
        positions: list = []
        items: list = []
        for iteration in order:
            nodes = per_iteration[iteration]
            result = None
            if len(nodes) == 1:
                # Singleton iterations (the loop-lifted common case) hit the
                # per-run macro cache; the index accelerates the first
                # computation inside _step.
                result = self._step_ddo(nodes[0], engine)
            else:
                if (use_index and self.axis in _PLANE_AXES
                        and not self._pushed_positional):
                    # Whole-column contexts (fixpoint feedback) on the plane
                    # axes: merged interval slices beat even memoised
                    # per-node results, because they skip the per-round
                    # O(m log m) ddo over the concatenation.  Pushed value
                    # shapes filter the merged column directly.
                    result = batch_step(nodes, self.axis, self.node_test_kind,
                                        self.node_test_name)
                    if result is not None and self.pushed:
                        if index_set is None:
                            index_set = IndexSet()
                        result = apply_shapes(result, self.pushed,
                                              self._pushed_values,
                                              use_index=True,
                                              index_set=index_set)
                if result is None:
                    if use_index and index_set is None:
                        index_set = IndexSet()
                    merged: list[Node] = []
                    for node in nodes:
                        merged.extend(self._step_ddo(node, engine, index_set))
                    result = ddo(merged)
            iters.extend([iteration] * len(result))
            positions.extend(range(1, len(result) + 1))
            items.extend(result)
        if PROFILE.enabled and self.pushed:
            PROFILE.record(f"algebra-step:{self.axis}", True,
                           PROFILE.timer() - timer)
        return engine.make_table_from_columns(("iter", "pos", "item"),
                                              [iters, positions, items])

    def _step_ddo(self, node: Node, engine, index_set=None) -> list[Node]:
        """The step result for one context node — pushed shapes applied in
        axis order, then deduplicated and in document order — memoised per
        run (the step relation and the pushed constants of a static document
        do not change between fixpoint rounds, so re-fed fixpoint contexts
        hit the cache every round)."""
        use_index = getattr(engine, "use_index", True)
        cache = getattr(engine, "macro_cache", None)
        if cache is None:
            return ddo(self._filtered_step(node, use_index, index_set))
        key = (self.operator_id, id(node))
        hit = cache.get(key)
        if hit is not None and hit[0] is node:
            return hit[1]
        result = ddo(self._filtered_step(node, use_index, index_set))
        cache[key] = (node, result)
        return result

    def _filtered_step(self, node: Node, use_index: bool, index_set=None) -> list[Node]:
        """One node's raw step result with the pushed shapes applied.

        The raw result is in the axis's *natural* order (reverse axes
        nearest-first), which is exactly the order positional shapes count
        along; the caller applies the final ddo.
        """
        result = self._step(node, use_index, index_set)
        if self.pushed:
            result = apply_shapes(result, self.pushed, self._pushed_values,
                                  use_index=use_index, index_set=index_set)
        return result

    def _step(self, node: Node, use_index: bool = True, index_set=None) -> list[Node]:
        if use_index:
            if index_set is not None:
                # Batched context: the IndexSet amortizes the root walk, so
                # every axis (child maps, attribute lists, sibling ranks)
                # goes through the index kernels.
                result = index_set.step(node, self.axis, self.node_test_kind,
                                        self.node_test_name)
            else:
                result = indexed_step(node, self.axis, self.node_test_kind,
                                      self.node_test_name)
            if result is not None:
                return result
        from repro.xquery import ast as xq_ast

        evaluator = _shared_evaluator()
        axis_nodes = evaluator._axis_nodes(node, self.axis)
        test = xq_ast.NodeTest(self.node_test_kind, self.node_test_name)
        return [candidate for candidate in axis_nodes
                if evaluator._node_test(candidate, test, self.axis)]

    def label(self):
        if self.node_test_kind == "name":
            test = self.node_test_name or "*"
        else:
            test = f"{self.node_test_kind}({self.node_test_name or ''})"
        pushed = f"[{len(self.pushed)} pushed]" if self.pushed else ""
        return f"{self.axis}::{test}{pushed}"


class IdLookup(Operator):
    """The ``fn:id`` macro: resolve ID strings to elements of a document."""

    symbol = "id"
    union_pushable = True

    def __init__(self, child: Operator, document: DocumentNode):
        super().__init__([child])
        self.document = document
        self.template = "id"

    def compute(self, inputs, engine):
        per_iteration, order = _group_items_by_iteration(inputs[0])
        iters: list = []
        positions: list = []
        items: list = []
        for iteration in order:
            values = per_iteration[iteration]
            if len(values) == 1:
                ordered = self._resolve_ddo(string_value_of_item(values[0]), engine)
            else:
                merged: list[Node] = []
                for value in values:
                    merged.extend(self._resolve_ddo(string_value_of_item(value), engine))
                ordered = ddo(merged)
            iters.extend([iteration] * len(ordered))
            positions.extend(range(1, len(ordered) + 1))
            items.extend(ordered)
        return engine.make_table_from_columns(("iter", "pos", "item"),
                                              [iters, positions, items])

    def _resolve_ddo(self, text: str, engine) -> list[Node]:
        """Resolve one ID string, deduplicated and in document order,
        memoised per run (ID assignment is static during evaluation)."""
        cache = getattr(engine, "macro_cache", None)
        key = (self.operator_id, text)
        if cache is not None:
            hit = cache.get(key)
            if hit is not None:
                return hit[1]
        lookup = self.document.lookup_id
        resolved = [element for token in text.split()
                    if (element := lookup(token)) is not None]
        ordered = ddo(resolved)
        if cache is not None:
            cache[key] = (text, ordered)
        return ordered


class AtomizeValue(Operator):
    """Itemwise atomization (typed value of nodes) — pushable."""

    symbol = "data"
    union_pushable = True

    def compute(self, inputs, engine):
        return inputs[0].map_column(
            "item", lambda value: value.typed_value() if is_node(value) else value
        )


class NodeConstructor(Operator):
    """ε — node construction; creates fresh identities, never pushable."""

    symbol = "ε"
    union_pushable = False

    def __init__(self, child: Operator, kind: str, name: str | None = None):
        super().__init__([child])
        self.kind = kind
        self.name = name

    def compute(self, inputs, engine):
        per_iteration, order = _group_items_by_iteration(inputs[0])
        constructed = [self._construct(per_iteration[iteration]) for iteration in order]
        return engine.make_table_from_columns(
            ("iter", "pos", "item"), [order, [1] * len(order), constructed]
        )

    def _construct(self, items: list):
        text = " ".join(string_value_of_item(item) for item in items)
        if self.kind == "text":
            return TextNode(text)
        if self.kind == "comment":
            return CommentNode(text)
        if self.kind == "attribute":
            return AttributeNode(self.name or "value", text)
        element = ElementNode(self.name or "element")
        for item in items:
            if is_node(item):
                from repro.xdm.document import copy_node

                if isinstance(item, AttributeNode):
                    element.add_attribute(AttributeNode(item.name, item.value))
                else:
                    element.append_child(copy_node(item))
            else:
                element.append_child(TextNode(string_value_of_item(item)))
        return element

    def label(self):
        return f"ε_{self.kind}({self.name or ''})"


# ---------------------------------------------------------------------------
# fixpoint operators
# ---------------------------------------------------------------------------


class Fixpoint(Operator):
    """µ / µ∆ — the algebraic fixpoint operators (Section 4.1).

    ``children[0]`` is the seed plan, ``body`` is the recursion body plan
    containing exactly one :class:`RecursionInput` leaf.  ``variant`` is
    ``"mu"`` (Naive) or ``"mu_delta"`` (Delta).  The operator is evaluated by
    the algebra engine, which iterates the body plan and rebinds the
    recursion input between rounds; it is itself union-pushable (Table 1).
    """

    symbol = "µ"
    union_pushable = True

    def __init__(self, seed: Operator, body: Operator, recursion_input: RecursionInput,
                 variant: str = "mu"):
        super().__init__([seed, body])
        self.recursion_input = recursion_input
        self.variant = variant

    @property
    def seed_plan(self) -> Operator:
        return self.children[0]

    @property
    def body_plan(self) -> Operator:
        return self.children[1]

    def compute(self, inputs, engine):
        raise AlgebraError(
            "fixpoint operators are evaluated by the algebra engine, not standalone"
        )

    def label(self):
        return "µ∆" if self.variant == "mu_delta" else "µ"
