"""Algebraic distributivity check: pushing ∪ up through the plan (Section 4.1).

The check starts at the :class:`~repro.algebra.operators.RecursionInput`
leaf (the place where the recursion body consumes the recursion variable)
and asks whether a union introduced there can be pushed up through *every*
operator on *every* path to the plan root — Figure 7(a).  Per Figure 8 and
Table 1, the push succeeds through projections, selections, joins, cross
products, unions, scalar operators, row tagging, step joins and fixpoints,
and is blocked by aggregates, difference, row numbering, duplicate
elimination and node constructors.

Two refinements from the paper are implemented:

* **Order/duplicate stripping** — because distributivity is defined up to
  duplicates and order (Definition 3.1), the checker may skip duplicate
  elimination (δ) and row numbering (̺) operators.  This is on by default
  and can be disabled for the ablation study.
* **Template big steps** — operators emitted as part of a known-distributive
  plan template (e.g. the step-join or id-lookup macros) are crossed in one
  step instead of being re-examined operator by operator.  With macro
  operators this is mostly a bookkeeping detail, but the report records how
  many big steps were taken so the effect remains observable.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from collections.abc import Iterable, Mapping

from repro.errors import AlgebraError
from repro.algebra.compiler import compile_recursion_body
from repro.algebra.operators import NodeConstructor, Operator, RecursionInput
from repro.algebra.plan import ancestors_of
from repro.xquery import ast
from repro.xquery.context import DocumentResolver
from repro.xdm.node import DocumentNode

#: Plan templates known to be distributive as a whole (big-step targets).
DISTRIBUTIVE_TEMPLATES = frozenset({"step", "id"})


@dataclass
class PushUpReport:
    """Outcome of the union push-up check for one recursion body plan."""

    distributive: bool
    operators_checked: int = 0
    big_steps: int = 0
    blocking_operators: list[Operator] = field(default_factory=list)
    ignored_order_operators: int = 0

    def blocking_labels(self) -> list[str]:
        return [operator.label() for operator in self.blocking_operators]


def plan_allows_union_pushup(body_plan: Operator, recursion_input: RecursionInput,
                             ignore_order_and_duplicates: bool = True,
                             use_templates: bool = True) -> bool:
    """Boolean version of :func:`analyze_plan_pushup`."""
    return analyze_plan_pushup(
        body_plan, recursion_input,
        ignore_order_and_duplicates=ignore_order_and_duplicates,
        use_templates=use_templates,
    ).distributive


def analyze_plan_pushup(body_plan: Operator, recursion_input: RecursionInput,
                        ignore_order_and_duplicates: bool = True,
                        use_templates: bool = True) -> PushUpReport:
    """Run the ∪ push-up over *body_plan* starting at *recursion_input*."""
    report = PushUpReport(distributive=True)

    # Node constructors anywhere in the recursion body rule out Delta: every
    # re-evaluation creates fresh node identities (Section 3.2 / Table 1).
    constructors = [op for op in body_plan.iter_operators() if isinstance(op, NodeConstructor)]
    if constructors:
        report.distributive = False
        report.blocking_operators.extend(constructors)

    for operator in ancestors_of(body_plan, recursion_input):
        if use_templates and operator.template in DISTRIBUTIVE_TEMPLATES:
            report.big_steps += 1
            continue
        report.operators_checked += 1
        if operator.order_or_duplicates_only and ignore_order_and_duplicates:
            report.ignored_order_operators += 1
            continue
        if not operator.union_pushable:
            report.distributive = False
            report.blocking_operators.append(operator)
    return report


def analyze_plan_distributivity(body: ast.Expr, variable: str,
                                functions: Mapping[tuple[str, int], ast.FunctionDecl] | Iterable[ast.FunctionDecl] | None = None,
                                documents: DocumentResolver | None = None,
                                document: DocumentNode | None = None,
                                ignore_order_and_duplicates: bool = True,
                                use_templates: bool = True) -> PushUpReport:
    """Compile *body* and run the algebraic distributivity check on the plan."""
    function_map = _normalize_functions(functions)
    plan, recursion_input = compile_recursion_body(
        body, variable, documents=documents, document=document,
        functions=function_map, analysis_only=True,
    )
    return analyze_plan_pushup(
        plan, recursion_input,
        ignore_order_and_duplicates=ignore_order_and_duplicates,
        use_templates=use_templates,
    )


def is_distributive_algebraic(body: ast.Expr, variable: str,
                              functions: Mapping[tuple[str, int], ast.FunctionDecl] | Iterable[ast.FunctionDecl] | None = None,
                              documents: DocumentResolver | None = None,
                              document: DocumentNode | None = None,
                              strict: bool = True) -> bool:
    """Algebraic distributivity verdict for an XQuery recursion body.

    When *strict* is false, bodies the algebra compiler cannot handle are
    reported as non-distributive instead of raising, which is the behaviour
    a processor falling back to Naive would exhibit.
    """
    try:
        return analyze_plan_distributivity(
            body, variable, functions=functions, documents=documents, document=document
        ).distributive
    except AlgebraError:
        if strict:
            raise
        return False


def _normalize_functions(functions) -> dict[tuple[str, int], ast.FunctionDecl] | None:
    if functions is None:
        return None
    if isinstance(functions, Mapping):
        return dict(functions)
    return {(decl.name, decl.arity): decl for decl in functions}
