"""The row-tuple storage backend for the algebra.

Plans operate over flat (1NF) tables in the ``iter|pos|item`` encoding of
Relational XQuery: ``iter`` identifies the iteration (loop) a row belongs
to, ``pos`` encodes sequence order inside that iteration, and ``item``
carries the encoded XQuery item — an atomic value or a node reference.

:class:`Table` keeps rows as tuples and the schema as a tuple of column
names; it is the *reference* implementation of the storage protocol in
:mod:`repro.algebra.storage` — faithful enough to observe plan shape, row
counts and operator semantics, while node references stay Python objects
instead of pre/post ranks (a documented simplification — see DESIGN.md).
The columnar backend (:mod:`repro.algebra.columnar`) is tested for
equivalence against this one.
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable, Iterator, Sequence
from typing import Any

from repro.errors import AlgebraError
from repro.algebra.storage import TableStorage, hashable, register_backend, sort_key

# Backwards-compatible aliases (these helpers originally lived here).
_hashable = hashable
_sort_key = sort_key


@dataclass(frozen=True)
class Column:
    """A named column (kept as a small value object for plan rendering)."""

    name: str

    def __str__(self) -> str:
        return self.name


class Table(TableStorage):
    """An immutable relational table: a schema plus a list of row tuples."""

    __slots__ = ("columns", "_rows")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()):
        self.columns: tuple[str, ...] = tuple(columns)
        normalized = []
        width = len(self.columns)
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise AlgebraError(
                    f"row {row_tuple!r} does not match schema {self.columns!r}"
                )
            normalized.append(row_tuple)
        self._rows: tuple[tuple[Any, ...], ...] = tuple(normalized)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_rows(cls, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()) -> "Table":
        return cls(columns, rows)

    # -- basic accessors ---------------------------------------------------------

    @property
    def rows(self) -> tuple[tuple[Any, ...], ...]:
        return self._rows

    def __len__(self) -> int:
        return len(self._rows)

    def iter_rows(self) -> Iterator[tuple[Any, ...]]:
        return iter(self._rows)

    def column_values(self, name: str) -> list[Any]:
        index = self.column_index(name)
        return [row[index] for row in self._rows]


register_backend("row", Table)
