"""Flat relational tables for the algebra backend.

Plans operate over flat (1NF) tables in the ``iter|pos|item`` encoding of
Relational XQuery: ``iter`` identifies the iteration (loop) a row belongs
to, ``pos`` encodes sequence order inside that iteration, and ``item``
carries the encoded XQuery item — an atomic value or a node reference.

The implementation keeps rows as tuples and the schema as a tuple of column
names.  It is an *interpreted* algebra: faithful enough to observe plan
shape, row counts and operator semantics, while node references stay Python
objects instead of pre/post ranks (a documented simplification — see
DESIGN.md).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Iterable, Iterator, Sequence

from repro.errors import AlgebraError


@dataclass(frozen=True)
class Column:
    """A named column (kept as a small value object for plan rendering)."""

    name: str

    def __str__(self) -> str:
        return self.name


class Table:
    """An immutable relational table: a schema plus a list of row tuples."""

    __slots__ = ("columns", "rows")

    def __init__(self, columns: Sequence[str], rows: Iterable[Sequence[Any]] = ()):
        self.columns: tuple[str, ...] = tuple(columns)
        normalized = []
        width = len(self.columns)
        for row in rows:
            row_tuple = tuple(row)
            if len(row_tuple) != width:
                raise AlgebraError(
                    f"row {row_tuple!r} does not match schema {self.columns!r}"
                )
            normalized.append(row_tuple)
        self.rows: tuple[tuple[Any, ...], ...] = tuple(normalized)

    # -- construction helpers --------------------------------------------------

    @classmethod
    def from_dicts(cls, columns: Sequence[str], dict_rows: Iterable[dict]) -> "Table":
        return cls(columns, [tuple(row[c] for c in columns) for row in dict_rows])

    def empty_like(self) -> "Table":
        return Table(self.columns)

    # -- basic accessors ---------------------------------------------------------

    def __len__(self) -> int:
        return len(self.rows)

    def __iter__(self) -> Iterator[tuple[Any, ...]]:
        return iter(self.rows)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Table):
            return NotImplemented
        return self.columns == other.columns and sorted(map(repr, self.rows)) == sorted(map(repr, other.rows))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({'|'.join(self.columns)}, {len(self.rows)} rows)"

    def column_index(self, name: str) -> int:
        try:
            return self.columns.index(name)
        except ValueError:
            raise AlgebraError(f"unknown column '{name}' in schema {self.columns!r}") from None

    def column_values(self, name: str) -> list[Any]:
        index = self.column_index(name)
        return [row[index] for row in self.rows]

    def as_dicts(self) -> list[dict]:
        return [dict(zip(self.columns, row)) for row in self.rows]

    # -- row-level operations used by the operators --------------------------------

    def project(self, mapping: Sequence[tuple[str, str]]) -> "Table":
        """Project/rename: mapping is a list of (new_name, old_name) pairs."""
        indices = [self.column_index(old) for _new, old in mapping]
        new_columns = [new for new, _old in mapping]
        return Table(new_columns, [tuple(row[i] for i in indices) for row in self.rows])

    def select(self, predicate: Callable[[dict], bool]) -> "Table":
        return Table(self.columns, [row for row in self.rows if predicate(dict(zip(self.columns, row)))])

    def extend(self, column: str, func: Callable[[dict], Any]) -> "Table":
        new_rows = []
        for row in self.rows:
            values = dict(zip(self.columns, row))
            new_rows.append(row + (func(values),))
        return Table(self.columns + (column,), new_rows)

    def distinct(self) -> "Table":
        seen = set()
        unique = []
        for row in self.rows:
            key = tuple(_hashable(value) for value in row)
            if key not in seen:
                seen.add(key)
                unique.append(row)
        return Table(self.columns, unique)

    def union_all(self, other: "Table") -> "Table":
        if self.columns != other.columns:
            raise AlgebraError(
                f"union over incompatible schemas {self.columns!r} and {other.columns!r}"
            )
        return Table(self.columns, self.rows + other.rows)

    def difference(self, other: "Table") -> "Table":
        """EXCEPT ALL-style difference (removes one occurrence per match)."""
        if self.columns != other.columns:
            raise AlgebraError(
                f"difference over incompatible schemas {self.columns!r} and {other.columns!r}"
            )
        from collections import Counter

        remove = Counter(tuple(_hashable(v) for v in row) for row in other.rows)
        kept = []
        for row in self.rows:
            key = tuple(_hashable(v) for v in row)
            if remove[key] > 0:
                remove[key] -= 1
                continue
            kept.append(row)
        return Table(self.columns, kept)

    def sort_by(self, columns: Sequence[str]) -> "Table":
        indices = [self.column_index(name) for name in columns]
        return Table(self.columns, sorted(self.rows, key=lambda row: tuple(_sort_key(row[i]) for i in indices)))


def _hashable(value: Any) -> Any:
    """Rows may carry node references; hash them by identity."""
    if value.__class__.__hash__ is not None:
        try:
            hash(value)
            return value
        except TypeError:  # pragma: no cover - defensive
            pass
    return id(value)


def _sort_key(value: Any) -> Any:
    if hasattr(value, "order_key"):
        return (1, value.order_key)
    if isinstance(value, bool):
        return (2, value)
    if isinstance(value, (int, float)):
        return (0, value)
    return (3, str(value))
