"""Plan-level utilities: traversal, rendering and simple statistics.

Plans are DAGs of :class:`~repro.algebra.operators.Operator`; these helpers
render them in the style of Figure 9 (indented text or Graphviz ``dot``) and
compute the ancestor relation the distributivity check is based on.
"""

from __future__ import annotations

from collections.abc import Iterable

from repro.algebra.operators import Operator, RecursionInput


def iter_plan(root: Operator) -> Iterable[Operator]:
    """Iterate over all operators of the plan DAG (each exactly once)."""
    return root.iter_operators()


def plan_size(root: Operator) -> int:
    """Number of distinct operators in the plan."""
    return sum(1 for _ in iter_plan(root))


def find_recursion_inputs(root: Operator) -> list[RecursionInput]:
    """All recursion-input leaves contained in the plan."""
    return [op for op in iter_plan(root) if isinstance(op, RecursionInput)]


def ancestors_of(root: Operator, target: Operator) -> list[Operator]:
    """All operators on some path from *target* (exclusive) up to *root*.

    This is the set of operators a ∪ introduced at *target* has to be pushed
    through to reach the top of the plan (Figure 7).
    """
    ancestors: dict[int, Operator] = {}

    def visit(operator: Operator) -> bool:
        """Return True if *operator*'s subtree contains the target."""
        if operator is target:
            return True
        contains = False
        for child in operator.children:
            if visit(child):
                contains = True
        if contains and operator is not target:
            ancestors[id(operator)] = operator
        return contains

    visit(root)
    return list(ancestors.values())


def render_plan(root: Operator, indent: str = "  ") -> str:
    """Render the plan as an indented tree (shared subplans are marked)."""
    lines: list[str] = []
    seen: set[int] = set()

    def visit(operator: Operator, depth: int) -> None:
        prefix = indent * depth
        shared = " (shared)" if id(operator) in seen else ""
        lines.append(f"{prefix}{operator.label()}{shared}")
        if id(operator) in seen:
            return
        seen.add(id(operator))
        for child in operator.children:
            visit(child, depth + 1)

    visit(root, 0)
    return "\n".join(lines)


def render_dot(root: Operator) -> str:
    """Render the plan DAG in Graphviz ``dot`` syntax."""
    lines = ["digraph plan {", "  node [shape=box, fontname=\"monospace\"];"]
    for operator in iter_plan(root):
        label = operator.label().replace('"', '\\"')
        lines.append(f'  n{operator.operator_id} [label="{label}"];')
    for operator in iter_plan(root):
        for child in operator.children:
            lines.append(f"  n{operator.operator_id} -> n{child.operator_id};")
    lines.append("}")
    return "\n".join(lines)
