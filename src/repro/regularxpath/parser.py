"""Parser for Regular XPath path expressions.

Grammar (precedence low to high)::

    path     ::= sequence ("union" sequence | "|" sequence)*
    sequence ::= closed ("/" closed)*
    closed   ::= atom ("+" | "*")* ("[" path "]")*
    atom     ::= step | "(" path ")"
    step     ::= (axis "::")? nodetest
    nodetest ::= NCName | "*" | "node()" | "text()"

Examples::

    (child::prerequisites/child::pre_code)+
    (descendant::course | child::module)+
    (following-sibling::SPEECH)+[child::SPEAKER]
"""

from __future__ import annotations

import re

from repro.errors import XQuerySyntaxError
from repro.regularxpath.rpast import RPClosure, RPExpr, RPFilter, RPSequence, RPStep, RPUnion

_AXES = {
    "child", "descendant", "descendant-or-self", "self", "attribute",
    "parent", "ancestor", "ancestor-or-self",
    "following-sibling", "preceding-sibling", "following", "preceding",
}

_TOKEN_RE = re.compile(
    r"\s*(?:(?P<dcolon>::)|(?P<symbol>[()\[\]/|+*])|(?P<name>[A-Za-z_][\w.-]*(\(\))?)|(?P<union>union))"
)


class _Tokens:
    def __init__(self, text: str):
        self.tokens: list[str] = []
        position = 0
        while position < len(text):
            match = _TOKEN_RE.match(text, position)
            if match is None:
                remaining = text[position:].strip()
                if not remaining:
                    break
                raise XQuerySyntaxError(f"cannot tokenize Regular XPath near {remaining[:20]!r}")
            token = match.group().strip()
            if token:
                self.tokens.append(token)
            position = match.end()
        self.index = 0

    def peek(self) -> str | None:
        return self.tokens[self.index] if self.index < len(self.tokens) else None

    def next(self) -> str:
        token = self.peek()
        if token is None:
            raise XQuerySyntaxError("unexpected end of Regular XPath expression")
        self.index += 1
        return token

    def accept(self, token: str) -> bool:
        if self.peek() == token:
            self.index += 1
            return True
        return False

    def expect(self, token: str) -> None:
        found = self.next()
        if found != token:
            raise XQuerySyntaxError(f"expected {token!r} in Regular XPath, found {found!r}")


def parse_regular_xpath(text: str) -> RPExpr:
    """Parse a Regular XPath path expression into an :class:`RPExpr`."""
    tokens = _Tokens(text)
    expr = _parse_union(tokens)
    if tokens.peek() is not None:
        raise XQuerySyntaxError(f"unexpected trailing token {tokens.peek()!r} in Regular XPath")
    return expr


def _parse_union(tokens: _Tokens) -> RPExpr:
    left = _parse_sequence(tokens)
    while tokens.peek() in ("union", "|"):
        tokens.next()
        left = RPUnion(left, _parse_sequence(tokens))
    return left


def _parse_sequence(tokens: _Tokens) -> RPExpr:
    left = _parse_closed(tokens)
    while tokens.accept("/"):
        left = RPSequence(left, _parse_closed(tokens))
    return left


def _parse_closed(tokens: _Tokens) -> RPExpr:
    expr = _parse_atom(tokens)
    while True:
        token = tokens.peek()
        if token == "+":
            tokens.next()
            expr = RPClosure(expr, reflexive=False)
        elif token == "*" and _star_is_closure(expr):
            tokens.next()
            expr = RPClosure(expr, reflexive=True)
        elif token == "[":
            tokens.next()
            filter_expr = _parse_union(tokens)
            tokens.expect("]")
            expr = RPFilter(expr, filter_expr)
        else:
            return expr


def _star_is_closure(expr: RPExpr) -> bool:
    # ``*`` directly after an atom is a closure marker; a lone ``*`` step is
    # produced by _parse_atom, so reaching here always means closure.
    return expr is not None


def _parse_atom(tokens: _Tokens) -> RPExpr:
    token = tokens.peek()
    if token == "(":
        tokens.next()
        expr = _parse_union(tokens)
        tokens.expect(")")
        return expr
    name = tokens.next()
    if name in ("*",):
        return RPStep("child", "*")
    if not re.match(r"[A-Za-z_]", name):
        raise XQuerySyntaxError(f"unexpected token {name!r} in Regular XPath step")
    axis = "child"
    node_test = name
    if tokens.peek() == "::":
        if name not in _AXES:
            raise XQuerySyntaxError(f"unknown Regular XPath axis {name!r}")
        tokens.next()
        axis = name
        node_test = tokens.next()
        if node_test == "(":  # pragma: no cover - defensive
            raise XQuerySyntaxError("expected a node test after '::'")
    return RPStep(axis, node_test)
