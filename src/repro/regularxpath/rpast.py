"""AST for Regular XPath path expressions."""

from __future__ import annotations

from dataclasses import dataclass


class RPExpr:
    """Base class of Regular XPath path expressions."""

    __slots__ = ()


@dataclass(frozen=True)
class RPStep(RPExpr):
    """A single location step ``axis::nodetest``.

    ``axis`` defaults to ``child``; ``node_test`` is an element name, ``*``,
    or one of the kind tests ``node()``/``text()``.
    """

    axis: str
    node_test: str

    def __str__(self) -> str:
        return f"{self.axis}::{self.node_test}"


@dataclass(frozen=True)
class RPSequence(RPExpr):
    """Path composition ``left/right``."""

    left: RPExpr
    right: RPExpr

    def __str__(self) -> str:
        return f"{self.left}/{self.right}"


@dataclass(frozen=True)
class RPUnion(RPExpr):
    """Path union ``left union right``."""

    left: RPExpr
    right: RPExpr

    def __str__(self) -> str:
        return f"({self.left} union {self.right})"


@dataclass(frozen=True)
class RPClosure(RPExpr):
    """Transitive closure ``operand+`` (or reflexive-transitive ``operand*``)."""

    operand: RPExpr
    reflexive: bool = False

    def __str__(self) -> str:
        suffix = "*" if self.reflexive else "+"
        return f"({self.operand}){suffix}"


@dataclass(frozen=True)
class RPFilter(RPExpr):
    """A filtered path ``operand[filter]`` (existence test on the filter path)."""

    operand: RPExpr
    filter: RPExpr
    name_filter: str | None = None

    def __str__(self) -> str:
        return f"{self.operand}[{self.filter}]"
