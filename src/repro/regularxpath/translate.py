"""Translation of Regular XPath into the engine's XQuery AST.

The key equation is the paper's Section 2 observation: the transitive
closure ``s+`` of a step expression ``s`` is::

    with $x seeded by . recurse $x/s

Because every Regular XPath step satisfies the distributivity conditions of
Section 3.1 (no free recursion variable, no positional functions, no node
constructors), the translated IFPs are always eligible for Delta-based
evaluation; the translation marks them ``using auto`` so the engine's
distributivity check makes that call, or the caller may force an algorithm.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.errors import XQueryStaticError
from repro.xdm.node import Node
from repro.xdm.sequence import ddo
from repro.xquery import ast
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.regularxpath.parser import parse_regular_xpath
from repro.regularxpath.rpast import RPClosure, RPExpr, RPFilter, RPSequence, RPStep, RPUnion

#: Variable name used by generated closure IFPs (kept out of user namespaces).
CLOSURE_VARIABLE = "rxp_closure"


def to_xquery_expr(expr: RPExpr | str, algorithm: str = "auto") -> ast.Expr:
    """Translate a Regular XPath expression into an XQuery AST expression.

    The resulting expression is evaluated relative to the context item (it
    navigates *from* the focus node), exactly like an XPath relative path.
    ``algorithm`` is attached to every generated IFP (``auto``/``naive``/
    ``delta``).
    """
    if isinstance(expr, str):
        expr = parse_regular_xpath(expr)
    return _translate(expr, algorithm)


def _translate(expr: RPExpr, algorithm: str) -> ast.Expr:
    if isinstance(expr, RPStep):
        return _translate_step(expr)
    if isinstance(expr, RPSequence):
        return ast.PathExpr(_translate(expr.left, algorithm), _translate(expr.right, algorithm))
    if isinstance(expr, RPUnion):
        return ast.UnionExpr(_translate(expr.left, algorithm), _translate(expr.right, algorithm))
    if isinstance(expr, RPClosure):
        return _translate_closure(expr, algorithm)
    if isinstance(expr, RPFilter):
        inner = _translate(expr.operand, algorithm)
        predicate = _translate(expr.filter, algorithm)
        return ast.FilterExpr(inner, (predicate,))
    raise XQueryStaticError(f"cannot translate Regular XPath node {type(expr).__name__}")


def _translate_step(step: RPStep) -> ast.Expr:
    if step.node_test == "*":
        node_test = ast.NodeTest("name", "*")
    elif step.node_test == "node()":
        node_test = ast.NodeTest("node")
    elif step.node_test == "text()":
        node_test = ast.NodeTest("text")
    else:
        node_test = ast.NodeTest("name", step.node_test)
    return ast.AxisStep(step.axis, node_test)


def _translate_closure(closure: RPClosure, algorithm: str) -> ast.Expr:
    inner = _translate(closure.operand, algorithm)
    ifp = ast.WithExpr(
        var=CLOSURE_VARIABLE,
        seed=ast.ContextItem(),
        body=ast.PathExpr(ast.VarRef(CLOSURE_VARIABLE), inner),
        algorithm=algorithm,
    )
    if not closure.reflexive:
        return ifp
    # Reflexive closure: the context node itself joins the result.
    return ast.UnionExpr(ast.AxisStep("self", ast.NodeTest("node")), ifp)


def evaluate_regular_xpath(expr: RPExpr | str, context_nodes: Sequence[Node],
                           algorithm: str = "auto",
                           context: DynamicContext | None = None) -> list[Node]:
    """Evaluate a Regular XPath expression from the given context nodes.

    The result is the union over all context nodes, in document order —
    i.e. the usual XPath semantics of applying a relative path to a node
    sequence.
    """
    translated = to_xquery_expr(expr, algorithm=algorithm)
    evaluator = Evaluator()
    base_context = context or DynamicContext()
    results: list[Node] = []
    size = len(context_nodes)
    for position, node in enumerate(context_nodes, start=1):
        focused = base_context.with_focus(node, position, size)
        results.extend(evaluator.evaluate(translated, focused))
    return ddo(results)
