"""Regular XPath: XPath location paths closed under transitive closure.

Regular XPath [ten Cate, PODS 2006] extends XPath location paths with a
transitive closure operator ``+`` (and its reflexive variant ``*``).  The
paper uses it as the flagship application of the IFP form: any Regular XPath
step expression ``s`` satisfies the syntactic distributivity conditions of
Section 3.1, and ``s+`` is equivalent to::

    with $x seeded by . recurse $x/s

so Theorem 3.2 licences Delta-based evaluation for every Regular XPath
closure.

This package provides a small parser for Regular XPath path expressions
(:mod:`repro.regularxpath.parser`), their translation into the engine's
XQuery AST with closures expressed as IFPs (:mod:`repro.regularxpath.translate`)
and a convenience evaluator (:func:`evaluate_regular_xpath`).
"""

from repro.regularxpath.rpast import (
    RPStep,
    RPSequence,
    RPUnion,
    RPClosure,
    RPFilter,
    RPExpr,
)
from repro.regularxpath.parser import parse_regular_xpath
from repro.regularxpath.translate import to_xquery_expr, evaluate_regular_xpath

__all__ = [
    "RPExpr",
    "RPStep",
    "RPSequence",
    "RPUnion",
    "RPClosure",
    "RPFilter",
    "parse_regular_xpath",
    "to_xquery_expr",
    "evaluate_regular_xpath",
]
