"""The concurrent query service: a threaded HTTP daemon over a Session.

``repro-serve`` turns the library into a long-running server.  See
:mod:`repro.service.server` for the endpoints (``POST /query``,
``POST /batch``, ``POST /documents``, ``GET /health``, ``GET /stats``)
and DESIGN.md §8 for the architecture.
"""

from repro.service.server import (
    QueryService,
    ServiceError,
    create_server,
    main,
    serve,
)

__all__ = ["QueryService", "ServiceError", "create_server", "main", "serve"]
