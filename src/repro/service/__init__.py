"""The concurrent query service: a threaded HTTP daemon over a Session.

``repro-serve`` turns the library into a long-running server.  See
:mod:`repro.service.server` for the endpoints (``POST /query``,
``POST /batch``, ``POST /documents``, ``GET /health``, ``GET /ready``,
``GET /stats``) and DESIGN.md §8 for the architecture.

``repro-serve --workers N --journal PATH`` scales past one process: a
prefork supervisor (:mod:`repro.service.supervisor`) binds the socket
once and keeps N worker processes (:mod:`repro.service.worker`) alive
through crashes and hangs, while a durable append-only corpus journal
(:mod:`repro.service.journal`) keeps ``POST /documents`` consistent
across the fleet.  See DESIGN.md §12.
"""

from repro.service.journal import CorpusJournal, JournalRecord, JournalTailer
from repro.service.server import (
    QueryService,
    ServiceError,
    create_server,
    main,
    serve,
)

__all__ = [
    "CorpusJournal",
    "JournalRecord",
    "JournalTailer",
    "QueryService",
    "ServiceError",
    "create_server",
    "main",
    "serve",
]
