"""Prefork worker entrypoint: ``python -m repro.service.worker``.

Spawned by :mod:`repro.service.supervisor`, never run by hand.  The
worker inherits two file descriptors from the supervisor:

``--listen-fd``
    The already-bound, already-listening service socket.  Every worker
    accepts from the same socket (classic prefork), so the kernel load
    balances connections across the fleet with no proxy in front.
``--control-fd``
    One end of a ``socketpair``.  The worker writes JSON-line
    heartbeats up (pid, slot, readiness, direct port, in-flight count)
    and reads fleet-status pushes down (``workers_alive``,
    ``workers_target``, ``degraded``), which it folds into its own
    ``GET /health`` / ``GET /ready`` responses via
    :meth:`QueryService.update_cluster`.

Startup order matters for correctness: the corpus journal is fully
replayed *before* the accept loops start, so a freshly restarted worker
answers queries item-identically to its siblings from the first
request.  After replay a background tailer keeps applying records that
other workers append via ``POST /documents``.

Besides the shared service socket, each worker binds a private
ephemeral port on 127.0.0.1 serving the same :class:`QueryService`.
The supervisor learns it from heartbeats and uses it for per-worker
``/metrics`` scrapes (aggregated with ``worker="<slot>"`` labels) and
for tests that must target one specific worker.
"""

from __future__ import annotations

import argparse
import json
import os
import select
import signal
import socket
import sys
import threading
import time

from repro import faults
from repro.service.server import (
    QueryServer,
    add_service_arguments,
    build_service,
    configure_logging,
    create_server,
)


def _heartbeat_payload(service, slot: int, direct_port: int) -> dict:
    status, body = service.ready()
    return {
        "type": "heartbeat",
        "pid": os.getpid(),
        "slot": slot,
        "ready": status == 200 and bool(body.get("ready")),
        "direct_port": direct_port,
        "in_flight": service.stats.in_flight,
    }


def run_worker(arguments: argparse.Namespace) -> int:
    configure_logging(verbose=arguments.verbose, log_json=arguments.log_json)
    fault_plan = faults.plan_from_env()
    if fault_plan is not None:
        faults.activate(fault_plan)

    service = build_service(arguments)
    replayed = service.replay_journal()
    service.start_journal_tailer()

    listen_socket = socket.socket(fileno=arguments.listen_fd)
    server = QueryServer.from_socket(listen_socket, service,
                                     verbose=arguments.verbose,
                                     drain_timeout=arguments.drain_timeout)
    # The private per-worker endpoint (same service, own socket).
    direct_server = create_server(service, host="127.0.0.1", port=0,
                                  verbose=arguments.verbose,
                                  drain_timeout=arguments.drain_timeout)
    direct_port = direct_server.server_address[1]

    for srv in (server, direct_server):
        thread = threading.Thread(target=srv.serve_forever,
                                  name=f"serve-{srv.server_port}", daemon=True)
        thread.start()

    print(f"repro-serve-worker[{arguments.slot}]: pid {os.getpid()} serving "
          f"(direct http://127.0.0.1:{direct_port}, "
          f"journal records replayed: {replayed})", file=sys.stderr)

    stop = threading.Event()

    def request_shutdown(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, request_shutdown)
    signal.signal(signal.SIGINT, request_shutdown)

    control = socket.socket(fileno=arguments.control_fd)
    buffer = b""
    try:
        while not stop.is_set():
            hang = faults.firing("worker-hang")
            if hang is not None:
                # Chaos drill: stop heartbeating long enough for the
                # supervisor to declare us hung and SIGKILL us.
                time.sleep(hang.sleep_s if hang.sleep_s is not None else 60.0)
            beat = _heartbeat_payload(service, arguments.slot, direct_port)
            try:
                control.sendall(json.dumps(beat).encode("utf-8") + b"\n")
            except OSError:
                break  # supervisor is gone; shut down
            readable, _, _ = select.select(
                [control], [], [], arguments.heartbeat_interval)
            if not readable:
                continue
            try:
                chunk = control.recv(65536)
            except OSError:
                break
            if not chunk:
                break  # supervisor closed its end
            buffer += chunk
            while b"\n" in buffer:
                line, _, buffer = buffer.partition(b"\n")
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                if message.get("type") == "status":
                    service.update_cluster(message)
    finally:
        server.graceful_shutdown(arguments.drain_timeout)
        direct_server.shutdown()
        direct_server.server_close()
        service.stop_journal_tailer()
        service.session.close()
        control.close()
        final = service.stats.snapshot()
        print(f"repro-serve-worker[{arguments.slot}]: stopped "
              f"({final['requests']} requests, {final['errors']} errors)",
              file=sys.stderr)
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve-worker",
        description="Internal prefork worker (spawned by repro-serve "
                    "--workers N; not meant to be run directly)")
    add_service_arguments(parser)
    parser.add_argument("--listen-fd", type=int, required=True,
                        help="inherited fd of the bound+listening socket")
    parser.add_argument("--control-fd", type=int, required=True,
                        help="inherited fd of the supervisor socketpair")
    parser.add_argument("--slot", type=int, default=0,
                        help="worker slot index (labels logs and metrics)")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5)
    return run_worker(parser.parse_args(argv))


if __name__ == "__main__":
    raise SystemExit(main())
