"""The durable corpus journal: crash-safe ``POST /documents`` replication.

Once ``repro-serve`` is N worker *processes* (:mod:`repro.service.supervisor`),
the corpus mutation path can no longer live in one process's memory: a
registration that lands on worker 2 must become visible on workers 1 and 3,
and a worker restarted after a crash must recover the corpus it missed.
The journal is the single source of truth for that state:

* **append-only** — every ``register``/``replace``/``remove`` is one framed
  record appended by whichever worker handled the request;
* **checksummed** — each record is ``MAGIC | length | CRC32(payload) |
  payload``, so torn writes and bit rot are *detected*, never silently
  applied;
* **fsync'd** — :meth:`CorpusJournal.append` returns only after the record
  is on disk, so an acknowledged registration survives a worker SIGKILL;
* **crash-tolerant on read** — :meth:`CorpusJournal.scan` stops cleanly at
  a truncated tail (a writer died mid-frame) and *resyncs* past a corrupt
  record by searching for the next frame magic, so one bad record never
  takes the rest of the journal with it.

Cross-process appends are serialized with an OS-level ``flock`` on the
journal file (CPython may split a large ``write`` into several syscalls,
so ``O_APPEND`` alone is not enough), and every worker *tails* the file
(:class:`JournalTailer`): new records are applied through
:meth:`repro.session.Session.apply_journal_record` — the ordinary
generation bump — so all workers converge on an identical corpus snapshot
and answers stay item-identical across the fleet.

Record payload schema (JSON, UTF-8)::

    {"op": "register" | "replace" | "remove",
     "uri": "<document uri>",
     "xml": "<document text>",          # register/replace only
     "id_attributes": ["id", ...],       # optional
     "ts": <unix seconds, informational>}

``register`` and ``replace`` apply identically (registration *is*
replacement in :class:`~repro.session.Session`); the distinct op names
keep the journal readable as an audit log.
"""

from __future__ import annotations

import io
import json
import os
import struct
import threading
import time
import zlib
from dataclasses import dataclass, field
from collections.abc import Callable, Mapping
from typing import Any

from repro import faults

#: Frame magic: lets the reader resynchronize after a corrupt record by
#: scanning for the next frame start instead of abandoning the journal.
MAGIC = b"RPJ1"

#: ``MAGIC | uint32 payload length | uint32 CRC32(payload)``, big-endian.
_HEADER = struct.Struct(">4sII")

#: A length field above this is treated as corruption, not as a frame —
#: matches the service's request-body ceiling with headroom.
MAX_RECORD = 80 * 1024 * 1024

try:  # pragma: no cover - import guard, exercised implicitly on Linux
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback (single-process)
    fcntl = None  # type: ignore[assignment]


@dataclass(frozen=True)
class JournalRecord:
    """One decoded record plus its position in the file."""

    payload: Mapping[str, Any]
    offset: int        #: byte offset of the frame start
    end_offset: int    #: byte offset just past the frame

    @property
    def op(self) -> str:
        return str(self.payload.get("op", ""))

    @property
    def uri(self) -> str:
        return str(self.payload.get("uri", ""))


@dataclass
class ScanResult:
    """What :meth:`CorpusJournal.scan` recovered from the file.

    ``end_offset`` is where the next scan (or tail poll) should resume:
    past the last decodable byte, but *at* the start of a truncated tail
    frame so a still-writing record is picked up once complete.
    """

    records: list[JournalRecord] = field(default_factory=list)
    end_offset: int = 0
    #: Records whose CRC failed (or whose length field was insane); the
    #: scan skipped past them by searching for the next frame magic.
    corrupt_records: int = 0
    #: Garbage bytes skipped while resynchronizing.
    skipped_bytes: int = 0
    #: The file ended mid-frame (writer crashed mid-append).
    truncated_tail: bool = False


def encode_record(payload: Mapping[str, Any]) -> bytes:
    """Frame *payload* as ``MAGIC | length | CRC32 | JSON bytes``."""
    body = json.dumps(payload, sort_keys=True).encode("utf-8")
    return _HEADER.pack(MAGIC, len(body), zlib.crc32(body)) + body


def make_record(op: str, uri: str, xml: str | None = None,
                id_attributes: list[str] | tuple[str, ...] | None = None) -> dict:
    """The canonical payload for one corpus mutation."""
    payload: dict[str, Any] = {"op": op, "uri": uri, "ts": round(time.time(), 3)}
    if xml is not None:
        payload["xml"] = xml
    if id_attributes is not None:
        payload["id_attributes"] = list(id_attributes)
    return payload


class CorpusJournal:
    """The append/scan halves of one on-disk journal file.

    Thread-safe within a process (one lock around appends) and
    process-safe across workers (``flock`` around the write+fsync).
    Reading never takes the flock: scans only look at complete frames
    and stop at the (possibly still-growing) tail.
    """

    def __init__(self, path: str | os.PathLike):
        self.path = os.fspath(path)
        self._lock = threading.Lock()
        # Create the file eagerly so tailers can stat/open it immediately.
        with open(self.path, "ab"):
            pass

    # -- writing -------------------------------------------------------------

    def append(self, payload: Mapping[str, Any]) -> int:
        """Durably append one record; returns the frame's start offset.

        The record is on disk (``fsync``) before this returns — an
        acknowledged ``POST /documents`` survives a worker SIGKILL.  The
        ``journal-corrupt`` fault point fires *after* the write, flipping
        bytes inside the just-written payload to exercise the reader's
        resynchronization path.
        """
        frame = encode_record(payload)
        with self._lock, open(self.path, "ab") as handle:
            if fcntl is not None:
                fcntl.flock(handle.fileno(), fcntl.LOCK_EX)
            try:
                offset = handle.seek(0, io.SEEK_END)
                handle.write(frame)
                handle.flush()
                os.fsync(handle.fileno())
                if faults.firing("journal-corrupt") is not None:
                    self._corrupt_frame(offset, len(frame))
            finally:
                if fcntl is not None:
                    fcntl.flock(handle.fileno(), fcntl.LOCK_UN)
        return offset

    def _corrupt_frame(self, offset: int, length: int) -> None:
        """Flip bytes in the middle of the frame at *offset* (chaos hook)."""
        with open(self.path, "r+b") as handle:
            target = offset + _HEADER.size + max(0, (length - _HEADER.size) // 2)
            handle.seek(target)
            byte = handle.read(1) or b"\x00"
            handle.seek(target)
            handle.write(bytes([byte[0] ^ 0xFF]))
            handle.flush()
            os.fsync(handle.fileno())

    # -- reading -------------------------------------------------------------

    def size(self) -> int:
        try:
            return os.stat(self.path).st_size
        except OSError:
            return 0

    def scan(self, from_offset: int = 0) -> ScanResult:
        """Decode every complete, intact record from *from_offset* on.

        Tolerates the two crash shapes a durable log must survive:

        * **truncated tail** — the file ends mid-frame (a writer died
          between ``write`` and completing the frame): the scan stops and
          reports ``truncated_tail``; ``end_offset`` stays at the frame
          start so a tailer re-reads once the bytes arrive (a *later*
          append after the torn frame is recovered by resync instead);
        * **corrupt record** — CRC mismatch or an implausible length
          field: the scan searches forward for the next frame magic and
          continues, counting the casualty.
        """
        result = ScanResult(end_offset=from_offset)
        try:
            with open(self.path, "rb") as handle:
                handle.seek(from_offset)
                data = handle.read()
        except OSError:
            return result
        position = 0

        def resync(start: int) -> int:
            """Next plausible frame start at or after *start* (-1: none)."""
            return data.find(MAGIC, start)

        while position < len(data):
            if not data.startswith(MAGIC, position):
                found = resync(position + 1)
                if found < 0:
                    result.skipped_bytes += len(data) - position
                    result.end_offset = from_offset + len(data)
                    return result
                result.skipped_bytes += found - position
                position = found
                continue
            if position + _HEADER.size > len(data):
                result.truncated_tail = True
                result.end_offset = from_offset + position
                return result
            magic, length, crc = _HEADER.unpack_from(data, position)
            if length > MAX_RECORD:
                # A corrupt length field, not a record: resync.
                result.corrupt_records += 1
                found = resync(position + 1)
                if found < 0:
                    result.skipped_bytes += len(data) - position
                    result.end_offset = from_offset + len(data)
                    return result
                result.skipped_bytes += found - position
                position = found
                continue
            body_end = position + _HEADER.size + length
            if body_end > len(data):
                result.truncated_tail = True
                result.end_offset = from_offset + position
                return result
            body = data[position + _HEADER.size:body_end]
            if zlib.crc32(body) != crc:
                result.corrupt_records += 1
                found = resync(position + 1)
                if found < 0:
                    result.end_offset = from_offset + len(data)
                    return result
                position = found
                continue
            try:
                payload = json.loads(body.decode("utf-8"))
            except (UnicodeDecodeError, json.JSONDecodeError):
                # CRC held but the content is not a record (should not
                # happen outside hand-edited files): treat as corrupt.
                result.corrupt_records += 1
                position = body_end
                result.end_offset = from_offset + position
                continue
            result.records.append(JournalRecord(
                payload=payload,
                offset=from_offset + position,
                end_offset=from_offset + body_end))
            position = body_end
            result.end_offset = from_offset + position
        return result


class JournalTailer:
    """Applies journal records, in order, exactly once per process.

    One tailer per worker: :meth:`replay` runs the whole journal at
    startup (before the worker accepts traffic), :meth:`start` keeps a
    polling thread applying whatever other workers append, and
    :meth:`catch_up` is the synchronous hook the registration handler
    calls right after its own append so the handling worker answers from
    the post-mutation corpus.

    *apply* receives each record's payload mapping; an apply failure is
    counted and reported through *on_error* (if given) but never stops
    the tail — one poisoned record must not wedge the fleet.
    """

    def __init__(self, journal: CorpusJournal,
                 apply: Callable[[Mapping[str, Any]], Any],
                 on_applied: Callable[[int], None] | None = None,
                 on_error: Callable[[Mapping[str, Any], Exception], None] | None = None):
        self.journal = journal
        self._apply = apply
        self._on_applied = on_applied
        self._on_error = on_error
        self._lock = threading.Lock()
        self._offset = 0
        self._applied = 0
        self._apply_errors = 0
        self._corrupt_records = 0
        self._skipped_bytes = 0
        self._stop = threading.Event()
        self._thread: threading.Thread | None = None

    # -- applying ------------------------------------------------------------

    def catch_up(self) -> int:
        """Apply every complete record past the current offset.

        Returns how many records were applied.  Serialized: concurrent
        callers (the poll thread and a registration handler) cannot
        double-apply a record.
        """
        with self._lock:
            result = self.journal.scan(self._offset)
            applied = 0
            for record in result.records:
                try:
                    self._apply(record.payload)
                    applied += 1
                    self._applied += 1
                    if self._on_applied is not None:
                        self._on_applied(1)
                except Exception as error:  # noqa: BLE001 - tail must survive
                    self._apply_errors += 1
                    if self._on_error is not None:
                        self._on_error(record.payload, error)
            self._offset = result.end_offset
            self._corrupt_records += result.corrupt_records
            self._skipped_bytes += result.skipped_bytes
            return applied

    def replay(self) -> int:
        """Startup replay: alias of :meth:`catch_up`, named for intent."""
        return self.catch_up()

    # -- polling -------------------------------------------------------------

    def start(self, interval: float = 0.1) -> None:
        """Poll the journal file and apply new records as they appear."""
        if self._thread is not None:
            return
        self._stop.clear()

        def tail() -> None:
            while not self._stop.wait(interval):
                try:
                    if self.journal.size() > self.offset:
                        self.catch_up()
                except Exception:  # noqa: BLE001 - the tail must survive
                    # A transient stat/read failure (journal on a flaky
                    # mount): retry on the next tick.
                    continue

        self._thread = threading.Thread(target=tail, name="repro-journal-tail",
                                        daemon=True)
        self._thread.start()

    def stop(self) -> None:
        self._stop.set()
        thread = self._thread
        if thread is not None:
            thread.join(timeout=5.0)
            self._thread = None

    # -- introspection -------------------------------------------------------

    @property
    def offset(self) -> int:
        with self._lock:
            return self._offset

    @property
    def applied(self) -> int:
        with self._lock:
            return self._applied

    def stats(self) -> dict:
        with self._lock:
            return {
                "offset": self._offset,
                "applied": self._applied,
                "apply_errors": self._apply_errors,
                "corrupt_records": self._corrupt_records,
                "skipped_bytes": self._skipped_bytes,
            }


__all__ = ["MAGIC", "MAX_RECORD", "CorpusJournal", "JournalRecord",
           "JournalTailer", "ScanResult", "encode_record", "make_record"]
