"""The HTTP query daemon: many clients, one hot :class:`Session`.

Architecture (stdlib only — ``http.server.ThreadingHTTPServer`` spawns one
worker thread per connection; the shared state underneath is the
thread-safe machinery PR 6 built):

* one :class:`~repro.session.Session` holds the corpus, the module/plan
  LRUs, the structural-index registry entries and the per-worker SQLite
  stores — everything stays warm across requests;
* every request resolves a corpus *snapshot* up front, so a concurrent
  ``POST /documents`` re-registration never changes the documents under a
  running evaluation (it bumps the session generation; later requests see
  the new corpus and rebuild indexes/shreds lazily);
* ``POST /batch`` captures one snapshot for the whole list of queries,
  amortizing capture and cache traffic across the batch;
* :class:`ServiceStats` keeps an in-flight gauge and per-engine latency
  counters under its own lock; ``GET /stats`` merges them with the
  session's cache/pool counters.

Endpoints
---------
``POST /query``
    ``{"query": "...", "engine"?: "interpreter|algebra|sql",
    "variables"?: {name: value-or-list}, "context"?: "<registered uri>",
    "settings"?: {EvalSettings fields}}`` →
    ``{"ok": true, "items": [...], "count": n, "engine": "...",
    "elapsed_ms": t}``.  Items are serialized per item — nodes as XML
    text, atomics as XQuery lexical values.
``POST /batch``
    ``{"queries": [<query payloads>], "settings"?: {defaults}}`` →
    ``{"ok": true, "results": [<per-query responses>], "count": n}``.
    Per-query failures do not fail the batch; each result carries its own
    ``ok`` flag.
``POST /documents``
    ``{"uri": "...", "xml": "<...>", "id_attributes"?: [...]}`` registers
    or replaces a document (the mutation path) → new generation.
``GET /health``
    liveness + generation + in-flight gauge.
``GET /stats``
    cache hit rates, per-engine latency counters, SQLite pool state.

Graceful shutdown: SIGINT/SIGTERM stop the accept loop, then the server
waits (bounded) for in-flight requests to drain before closing.
"""

from __future__ import annotations

import argparse
import json
import signal
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Any, Mapping

from repro.errors import ReproError
from repro.session import Session
from repro.settings import EvalSettings, coerce_settings
from repro.xdm.items import format_atomic, is_node
from repro.xmlio.parser import parse_xml_file
from repro.xmlio.serializer import serialize


class ServiceError(Exception):
    """A request the service rejects (bad payload, unknown field…)."""

    def __init__(self, message: str, status: int = 400):
        super().__init__(message)
        self.status = status


def serialize_items(items: list) -> list[str]:
    """Per-item serialization: nodes as XML text, atomics lexically."""
    return [serialize(item) if is_node(item) else format_atomic(item)
            for item in items]


class ServiceStats:
    """Lock-protected request counters: in-flight gauge, per-engine latency."""

    def __init__(self):
        self._lock = threading.Lock()
        self.started_at = time.time()
        self.in_flight = 0
        self.peak_in_flight = 0
        self.requests = 0
        self.errors = 0
        #: engine name → {count, errors, total_seconds, max_seconds}
        self.engines: dict[str, dict[str, float]] = {}

    def enter(self) -> None:
        with self._lock:
            self.in_flight += 1
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def exit(self, engine: str | None, seconds: float, error: bool) -> None:
        with self._lock:
            self.in_flight -= 1
            self.requests += 1
            if error:
                self.errors += 1
            if engine is not None:
                counters = self.engines.setdefault(engine, {
                    "count": 0, "errors": 0,
                    "total_seconds": 0.0, "max_seconds": 0.0,
                })
                counters["count"] += 1
                if error:
                    counters["errors"] += 1
                counters["total_seconds"] += seconds
                counters["max_seconds"] = max(counters["max_seconds"], seconds)

    def drained(self) -> bool:
        with self._lock:
            return self.in_flight == 0

    def snapshot(self) -> dict:
        with self._lock:
            engines = {
                name: {
                    **counters,
                    "mean_seconds": (counters["total_seconds"] / counters["count"]
                                     if counters["count"] else 0.0),
                }
                for name, counters in self.engines.items()
            }
            return {
                "uptime_seconds": time.time() - self.started_at,
                "in_flight": self.in_flight,
                "peak_in_flight": self.peak_in_flight,
                "requests": self.requests,
                "errors": self.errors,
                "engines": engines,
            }


class QueryService:
    """The HTTP-agnostic request handlers over one session.

    Separated from the transport so the integration tests (and the batch
    endpoint) can call the handlers directly; the HTTP layer only decodes
    JSON and picks the handler.
    """

    def __init__(self, session: Session | None = None,
                 settings: EvalSettings | Mapping[str, Any] | None = None):
        self.session = session if session is not None else Session()
        if settings is not None:
            self.session.settings = coerce_settings(settings, self.session.settings)
        self.stats = ServiceStats()

    # -- handlers ------------------------------------------------------------

    def handle_query(self, payload: Mapping[str, Any],
                     resolver=None) -> dict:
        """Evaluate one query payload (see the module docstring schema).

        *resolver* lets ``/batch`` share one corpus snapshot across its
        queries; standalone requests capture their own.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ServiceError('"query" must be a non-empty string')
        unknown = set(payload) - {"query", "engine", "variables", "context",
                                  "settings"}
        if unknown:
            raise ServiceError(f"unknown request field(s): {sorted(unknown)}")

        settings = self._settings_of(payload)
        variables = payload.get("variables")
        if variables is not None and not isinstance(variables, Mapping):
            raise ServiceError('"variables" must be an object')

        if resolver is None:
            resolver = self.session.snapshot()
        context_item = None
        context_uri = payload.get("context")
        if context_uri is not None:
            try:
                context_item = resolver.resolve(context_uri)
            except ReproError:
                raise ServiceError(f'"context" document {context_uri!r} '
                                   f"is not registered")

        engine = settings.engine.value
        started = time.perf_counter()
        error = True
        self.stats.enter()
        try:
            result = self.session.evaluate(
                query, documents=resolver, variables=variables,
                context_item=context_item, settings=settings)
            elapsed = time.perf_counter() - started
            error = False
        except ReproError as exc:
            raise ServiceError(f"{type(exc).__name__}: {exc}", status=422)
        finally:
            self.stats.exit(engine, time.perf_counter() - started, error)
        response = {
            "ok": True,
            "items": serialize_items(result.items),
            "count": len(result.items),
            "engine": engine,
            "elapsed_ms": round(elapsed * 1000.0, 3),
        }
        if result.profile is not None:
            response["profile"] = result.profile
        return response

    def handle_batch(self, payload: Mapping[str, Any]) -> dict:
        """Evaluate many queries against one shared corpus snapshot."""
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ServiceError('"queries" must be a non-empty array')
        unknown = set(payload) - {"queries", "settings"}
        if unknown:
            raise ServiceError(f"unknown request field(s): {sorted(unknown)}")
        defaults = payload.get("settings")

        resolver = self.session.snapshot()  # one snapshot for the whole batch
        results = []
        for entry in queries:
            if defaults and isinstance(entry, Mapping) and "settings" not in entry:
                entry = {**entry, "settings": defaults}
            try:
                results.append(self.handle_query(entry, resolver=resolver))
            except ServiceError as exc:
                results.append({"ok": False, "error": str(exc)})
        return {"ok": True, "results": results, "count": len(results)}

    def handle_register(self, payload: Mapping[str, Any]) -> dict:
        """Register/replace a document — the service's mutation path."""
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        uri = payload.get("uri")
        xml = payload.get("xml")
        if not isinstance(uri, str) or not uri:
            raise ServiceError('"uri" must be a non-empty string')
        if not isinstance(xml, str) or not xml.strip():
            raise ServiceError('"xml" must be a non-empty XML string')
        id_attributes = payload.get("id_attributes")
        try:
            generation = self.session.register_document(
                uri, xml, id_attributes=id_attributes)
        except ReproError as exc:
            raise ServiceError(f"{type(exc).__name__}: {exc}", status=422)
        return {"ok": True, "uri": uri, "generation": generation}

    def health(self) -> dict:
        return {
            "status": "ok",
            "generation": self.session.generation,
            "documents": self.session.document_uris(),
            "in_flight": self.stats.snapshot()["in_flight"],
        }

    def stats_report(self) -> dict:
        return {"service": self.stats.snapshot(), "session": self.session.stats()}

    def _settings_of(self, payload: Mapping[str, Any]) -> EvalSettings:
        raw = payload.get("settings")
        if raw is not None and not isinstance(raw, Mapping):
            raise ServiceError('"settings" must be an object of '
                               "EvalSettings fields")
        try:
            settings = coerce_settings(raw, self.session.settings)
            engine = payload.get("engine")
            if engine is not None:
                settings = settings.replace(engine=engine)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad settings: {exc}")
        return settings


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP plumbing; all logic lives in :class:`QueryService`."""

    protocol_version = "HTTP/1.1"
    #: Headers and body flush as separate small sends; without TCP_NODELAY,
    #: Nagle + delayed ACK stalls every keep-alive response by ~40ms.
    disable_nagle_algorithm = True
    #: Maximum accepted request body (a corpus re-registration can be big).
    MAX_BODY = 64 * 1024 * 1024

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if getattr(self.server, "verbose", False):
            sys.stderr.write("%s - %s\n" % (self.address_string(), format % args))

    def do_GET(self):
        if self.path == "/health":
            self._respond(200, self.service.health())
        elif self.path == "/stats":
            self._respond(200, self.service.stats_report())
        else:
            self._respond(404, {"ok": False, "error": f"unknown path {self.path}"})

    def do_POST(self):
        routes = {
            "/query": self.service.handle_query,
            "/batch": self.service.handle_batch,
            "/documents": self.service.handle_register,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._respond(404, {"ok": False, "error": f"unknown path {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length > self.MAX_BODY:
                raise ServiceError("request body too large", status=413)
            body = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                raise ServiceError(f"invalid JSON body: {exc}")
            self._respond(200, handler(payload))
        except ServiceError as exc:
            self._respond(exc.status, {"ok": False, "error": str(exc)})
        except Exception as exc:  # a bug, not a bad request — say so
            self._respond(500, {"ok": False,
                                "error": f"internal error: {type(exc).__name__}: {exc}"})

    def _respond(self, status: int, payload: dict) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)


class QueryServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to a :class:`QueryService`.

    Worker threads are daemonic so a hung client cannot block process
    exit; :meth:`graceful_shutdown` gives in-flight requests a bounded
    drain window first.
    """

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, service: QueryService, verbose: bool = False):
        super().__init__(address, _Handler)
        self.service = service
        self.verbose = verbose

    def graceful_shutdown(self, timeout: float = 10.0) -> bool:
        """Stop accepting, drain in-flight requests, close sockets.

        Returns ``True`` when the drain completed inside *timeout*.
        """
        self.shutdown()            # stops the accept loop (thread-safe)
        deadline = time.time() + timeout
        drained = self.service.stats.drained()
        while not drained and time.time() < deadline:
            time.sleep(0.02)
            drained = self.service.stats.drained()
        self.server_close()
        return drained


def create_server(service: QueryService | None = None,
                  host: str = "127.0.0.1", port: int = 0,
                  verbose: bool = False) -> QueryServer:
    """A ready-to-run server (``port=0`` picks an ephemeral port)."""
    return QueryServer((host, port), service or QueryService(), verbose=verbose)


def serve(server: QueryServer) -> threading.Thread:
    """Run *server*'s accept loop on a daemon thread; returns the thread."""
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-accept", daemon=True)
    thread.start()
    return thread


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve XQuery evaluation over HTTP "
                    "(POST /query, POST /batch, GET /health, GET /stats)",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8720)
    parser.add_argument("--doc", action="append", default=[], metavar="URI=PATH",
                        help="register a document at startup (repeatable)")
    parser.add_argument("--id-attribute", action="append", default=["id", "xml:id"],
                        help="attribute names to treat as IDs (repeatable)")
    parser.add_argument("--engine", choices=["interpreter", "algebra", "sql"],
                        default="interpreter",
                        help="default engine for requests that name none")
    parser.add_argument("--sql-store", choices=["memory", "wal"], default="wal",
                        help="per-worker SQLite stores: in-memory or "
                             "file-backed WAL databases (default: wal)")
    parser.add_argument("--sql-store-dir", default=None,
                        help="directory for WAL store files "
                             "(default: a private tempdir)")
    parser.add_argument("--verbose", action="store_true",
                        help="log every request line to stderr")
    arguments = parser.parse_args(argv)

    session = Session(settings=EvalSettings(engine=arguments.engine),
                      id_attributes=tuple(arguments.id_attribute),
                      sql_store=arguments.sql_store,
                      sql_store_dir=arguments.sql_store_dir)
    for spec in arguments.doc:
        if "=" not in spec:
            parser.error("--doc expects URI=PATH")
        uri, path = spec.split("=", 1)
        session.register_document(
            uri, parse_xml_file(path, id_attributes=tuple(arguments.id_attribute)))

    service = QueryService(session=session)
    server = create_server(service, host=arguments.host, port=arguments.port,
                           verbose=arguments.verbose)
    host, port = server.server_address[:2]
    print(f"repro-serve: listening on http://{host}:{port} "
          f"(docs: {session.document_uris() or 'none'}, "
          f"default engine: {arguments.engine}, "
          f"sql stores: {arguments.sql_store})", file=sys.stderr)

    stop_signal = {"received": None}

    def request_shutdown(signum, frame):
        stop_signal["received"] = signum
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, request_shutdown)
    signal.signal(signal.SIGTERM, request_shutdown)
    try:
        server.serve_forever()
    finally:
        deadline = time.time() + 10.0
        while not service.stats.drained() and time.time() < deadline:
            time.sleep(0.02)
        server.server_close()
        session.close()
        final = service.stats.snapshot()
        print(f"repro-serve: stopped "
              f"(signal {stop_signal['received']}, "
              f"{final['requests']} requests, {final['errors']} errors, "
              f"drained: {final['in_flight'] == 0})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
