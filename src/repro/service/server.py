"""The HTTP query daemon: many clients, one hot :class:`Session`.

Architecture (stdlib only — ``http.server.ThreadingHTTPServer`` spawns one
worker thread per connection; the shared state underneath is the
thread-safe machinery PR 6 built):

* one :class:`~repro.session.Session` holds the corpus, the module/plan
  LRUs, the structural-index registry entries and the per-worker SQLite
  stores — everything stays warm across requests;
* every request resolves a corpus *snapshot* up front, so a concurrent
  ``POST /documents`` re-registration never changes the documents under a
  running evaluation (it bumps the session generation; later requests see
  the new corpus and rebuild indexes/shreds lazily);
* ``POST /batch`` captures one snapshot for the whole list of queries,
  amortizing capture and cache traffic across the batch;
* :class:`ServiceStats` records every request into a
  :class:`~repro.observability.metrics.MetricsRegistry` (per-engine
  request/error counters, latency and fixpoint-round histograms, an
  in-flight gauge); ``GET /stats`` serves the JSON view, ``GET /metrics``
  the Prometheus text exposition with scrape-time session gauges (cache
  hit ratios, pool counters, uptime) merged in.

Endpoints
---------
``POST /query``
    ``{"query": "...", "engine"?: "interpreter|algebra|sql",
    "variables"?: {name: value-or-list}, "context"?: "<registered uri>",
    "settings"?: {EvalSettings fields}, "trace"?: true}`` →
    ``{"ok": true, "items": [...], "count": n, "engine": "...",
    "elapsed_ms": t, "trace"?: {span tree}}``.  Items are serialized per
    item — nodes as XML text, atomics as XQuery lexical values; with
    ``"trace": true`` the response carries the query's span tree
    (:meth:`repro.observability.tracing.Span.to_dict` schema).
``POST /batch``
    ``{"queries": [<query payloads>], "settings"?: {defaults}}`` →
    ``{"ok": true, "results": [<per-query responses>], "count": n}``.
    Per-query failures do not fail the batch; each result carries its own
    ``ok`` flag.
``POST /analyze``
    ``{"query": "...", "variables"?: {name: ...} | [names]}`` runs the
    static analyzer only (:mod:`repro.analysis`) — scope/arity errors with
    line:column, per-fixpoint distributivity facts, cardinality — without
    evaluating anything → ``{"ok": true, "analysis": {report}}``.  Static
    errors are part of the report (the request itself succeeds); only a
    parse failure maps to 422.
``POST /documents``
    ``{"uri": "...", "xml": "<...>", "id_attributes"?: [...]}`` registers
    or replaces a document (the mutation path) → new generation.
``GET /health``
    liveness + generation + in-flight gauge.
``GET /stats``
    cache hit rates, per-engine latency counters, SQLite pool state.
``GET /metrics``
    the same telemetry in Prometheus text exposition format 0.0.4.

Resource governance (PR 8): ``--max-concurrency`` bounds admission — a
saturated server answers ``503`` with a ``Retry-After`` header instead
of queueing; requests may carry ``timeout_s`` (clamped by
``--max-timeout``), and deadline/budget expiry maps to ``408`` /
``429`` with structured bodies (``error_type``, budget details).  Every
query evaluates under a :class:`~repro.limits.CancelToken`: a client
that disconnects mid-query gets its evaluation cancelled (the worker is
reclaimed), and graceful drain cancels whatever outlives
``--drain-timeout``.  ``REPRO_FAULTS`` arms the fault-injection plan of
:mod:`repro.faults` at startup for chaos drills.

Graceful shutdown: SIGINT/SIGTERM stop the accept loop, then the server
waits (bounded by ``--drain-timeout``) for in-flight requests to drain,
cancelling stragglers, before closing.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import logging
import os
import select
import signal
import socket
import sys
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from collections.abc import Mapping
from typing import Any

from repro import faults
from repro.errors import (
    BudgetExceeded,
    QueryCancelled,
    QueryTimeout,
    ReproError,
    XQueryStaticError,
)
from repro.limits import CancelToken, ResourceLimits
from repro.observability import FIXPOINT_ROUND_BUCKETS, MetricsRegistry
from repro.service.journal import CorpusJournal, JournalTailer, make_record
from repro.session import Session
from repro.settings import EvalSettings, coerce_settings
from repro.xdm.items import format_atomic, is_node
from repro.xmlio.parser import parse_xml, parse_xml_file
from repro.xmlio.serializer import serialize

#: Request and slow-query log lines go through this logger: INFO carries
#: one record per request (``--verbose``), WARNING carries slow queries
#: (``--slow-query-ms``).  :func:`configure_logging` attaches the handler.
LOGGER = logging.getLogger("repro.service")


class _JsonLineFormatter(logging.Formatter):
    """One JSON object per log line (``--log-json``)."""

    def format(self, record: logging.LogRecord) -> str:
        payload: dict[str, Any] = {
            "ts": round(record.created, 3),
            "level": record.levelname.lower(),
            "logger": record.name,
        }
        fields = getattr(record, "fields", None)
        if fields:
            payload.update(fields)
        else:
            payload["message"] = record.getMessage()
        return json.dumps(payload, sort_keys=True)


class _LineFormatter(logging.Formatter):
    """Human-readable request lines (the default)."""

    def format(self, record: logging.LogRecord) -> str:
        fields = getattr(record, "fields", None)
        if fields:
            rendered = " ".join(f"{key}={value}" for key, value in fields.items())
            return f"{self.formatTime(record)} {record.levelname} {rendered}"
        return f"{self.formatTime(record)} {record.levelname} {record.getMessage()}"


def configure_logging(verbose: bool = False, log_json: bool = False) -> logging.Logger:
    """Install the service log handler on ``repro.service``.

    ``verbose`` lowers the level to INFO so every request logs one
    structured record; otherwise only WARNING (slow queries, handler
    plumbing problems) is emitted.  ``log_json`` switches the formatter
    to JSON lines.
    """
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(_JsonLineFormatter() if log_json else _LineFormatter())
    LOGGER.handlers[:] = [handler]
    LOGGER.setLevel(logging.INFO if verbose else logging.WARNING)
    LOGGER.propagate = False
    return LOGGER


class ServiceError(Exception):
    """A request the service rejects (bad payload, unknown field…).

    ``headers`` are extra response headers (``Retry-After`` on 503);
    ``body`` holds structured fields merged into the JSON error body
    next to ``ok``/``error`` (``error_type``, budget details, …).
    """

    def __init__(self, message: str, status: int = 400,
                 headers: Mapping[str, str] | None = None,
                 body: Mapping[str, Any] | None = None):
        super().__init__(message)
        self.status = status
        self.headers = dict(headers) if headers else {}
        self.body = dict(body) if body else {}

    def payload(self) -> dict:
        """The JSON error body this rejection serializes to."""
        return {"ok": False, "error": str(self), **self.body}


def serialize_items(items: list) -> list[str]:
    """Per-item serialization: nodes as XML text, atomics lexically."""
    return [serialize(item) if is_node(item) else format_atomic(item)
            for item in items]


class ServiceStats:
    """Request telemetry over a :class:`MetricsRegistry`.

    Every mutation goes through the registry's single lock, so counter
    reads are exact (N threads × M requests always shows N·M).  The
    JSON shape of :meth:`snapshot` — what ``GET /stats`` serves — is
    unchanged from the pre-registry implementation; ``GET /metrics``
    renders the same families in Prometheus text format.
    """

    def __init__(self, registry: MetricsRegistry | None = None):
        self.registry = registry if registry is not None else MetricsRegistry()
        self._lock = threading.Lock()
        #: Monotonic start mark — wall-clock (``time.time``) jumps with NTP
        #: steps and would make uptime/drain arithmetic wrong.
        self.started_at = time.monotonic()
        self.peak_in_flight = 0
        self._requests_total = 0
        self._errors_total = 0
        self._max_seconds: dict[str, float] = {}
        self._requests = self.registry.counter(
            "repro_requests_total", "Queries handled, by engine.", ("engine",))
        self._errors = self.registry.counter(
            "repro_request_errors_total", "Failed queries, by engine.", ("engine",))
        self._latency = self.registry.histogram(
            "repro_request_seconds", "Query latency in seconds, by engine.",
            ("engine",))
        self._in_flight = self.registry.gauge(
            "repro_requests_in_flight", "Queries currently evaluating.")
        self._rounds = self.registry.histogram(
            "repro_fixpoint_rounds", "Recursion depth per IFP evaluation, by engine.",
            ("engine",), buckets=FIXPOINT_ROUND_BUCKETS)
        self._rejections = self.registry.counter(
            "repro_admission_rejections_total",
            "Requests rejected with 503 at admission (server saturated).")
        self._rejections.inc(0.0)  # render as 0 before the first rejection
        self._timeouts = self.registry.counter(
            "repro_query_timeouts_total",
            "Queries that exceeded their deadline, by engine.", ("engine",))
        self._cancellations = self.registry.counter(
            "repro_query_cancellations_total",
            "Queries cancelled in flight (disconnect, drain), by engine.",
            ("engine",))
        self._analyses = self.registry.counter(
            "repro_analyze_requests_total",
            "Static-analysis requests served (POST /analyze).")
        self._analyses.inc(0.0)
        self._static_errors = self.registry.counter(
            "repro_static_errors_total",
            "Static errors reported by the analyzer (lint and query paths).")
        self._static_errors.inc(0.0)
        self._journal_records = self.registry.counter(
            "repro_journal_records_total",
            "Corpus journal records applied (startup replay and live tail).")
        self._journal_records.inc(0.0)

    @property
    def in_flight(self) -> int:
        return int(self._in_flight.value)

    def enter(self) -> None:
        self._in_flight.inc()
        with self._lock:
            self.peak_in_flight = max(self.peak_in_flight, self.in_flight)

    def exit(self, engine: str | None, seconds: float, error: bool) -> None:
        self._in_flight.dec()
        with self._lock:
            self._requests_total += 1
            if error:
                self._errors_total += 1
        if engine is not None:
            self._requests.labels(engine=engine).inc()
            if error:
                self._errors.labels(engine=engine).inc()
            self._latency.labels(engine=engine).observe(seconds)
            with self._lock:
                if seconds > self._max_seconds.get(engine, 0.0):
                    self._max_seconds[engine] = seconds

    def observe_rounds(self, engine: str, rounds: int) -> None:
        """Record one IFP evaluation's recursion depth."""
        self._rounds.labels(engine=engine).observe(rounds)

    def rejected(self) -> None:
        """Record one admission rejection (503, server saturated)."""
        self._rejections.inc()

    def timed_out(self, engine: str) -> None:
        """Record one query deadline expiry (mapped to 408)."""
        self._timeouts.labels(engine=engine).inc()

    def cancelled(self, engine: str) -> None:
        """Record one in-flight cancellation (disconnect or drain)."""
        self._cancellations.labels(engine=engine).inc()

    def analyzed(self, error_count: int) -> None:
        """Record one ``POST /analyze`` request and its static errors."""
        self._analyses.inc()
        if error_count:
            self._static_errors.inc(float(error_count))

    def static_error(self) -> None:
        """Record one static error aborting a ``POST /query`` evaluation."""
        self._static_errors.inc()

    def journal_applied(self, count: int = 1) -> None:
        """Record *count* corpus-journal records applied to the session."""
        self._journal_records.inc(float(count))

    def drained(self) -> bool:
        return self.in_flight == 0

    def snapshot(self) -> dict:
        engines = {}
        for (name,), child in self._requests.children().items():
            count = int(child.value)
            latency = self._latency.labels(engine=name).snapshot()
            with self._lock:
                max_seconds = self._max_seconds.get(name, 0.0)
            engines[name] = {
                "count": count,
                "errors": int(self._errors.labels(engine=name).value),
                "total_seconds": latency["sum"],
                "max_seconds": max_seconds,
                "mean_seconds": latency["sum"] / count if count else 0.0,
            }
        with self._lock:
            requests, errors = self._requests_total, self._errors_total
            peak = self.peak_in_flight
        return {
            "uptime_seconds": time.monotonic() - self.started_at,
            "in_flight": self.in_flight,
            "peak_in_flight": peak,
            "requests": requests,
            "errors": errors,
            "rejections": int(self._rejections.value),
            "engines": engines,
        }


class QueryService:
    """The HTTP-agnostic request handlers over one session.

    Separated from the transport so the integration tests (and the batch
    endpoint) can call the handlers directly; the HTTP layer only decodes
    JSON and picks the handler.
    """

    def __init__(self, session: Session | None = None,
                 settings: EvalSettings | Mapping[str, Any] | None = None,
                 slow_query_ms: float | None = None,
                 max_concurrency: int | None = None,
                 max_timeout_s: float | None = None,
                 journal: CorpusJournal | None = None):
        self.session = session if session is not None else Session()
        if settings is not None:
            self.session.settings = coerce_settings(settings, self.session.settings)
        self.stats = ServiceStats()
        #: The durable corpus journal (prefork mode, or single-process
        #: durability): ``POST /documents`` appends here before applying,
        #: and a tailer replicates other workers' appends into this
        #: session (see :mod:`repro.service.journal`).
        self.journal = journal
        self._tailer: JournalTailer | None = None
        if journal is not None:
            self._tailer = JournalTailer(
                journal,
                apply=self.session.apply_journal_record,
                on_applied=self.stats.journal_applied,
                on_error=self._journal_apply_failed)
        #: Readiness gate: with a journal attached the worker is not ready
        #: until the startup replay finished (:meth:`replay_journal`).
        self.journal_replayed = journal is None
        #: Graceful drain has started: readiness goes false, liveness stays.
        self.draining = False
        #: Fleet status pushed down by the supervisor (prefork mode):
        #: ``workers_alive`` / ``workers_target`` / ``degraded``.  ``None``
        #: in single-process mode.
        self._cluster: dict[str, Any] | None = None
        self._cluster_lock = threading.Lock()
        #: Queries slower than this (milliseconds) log one JSON-lines
        #: WARNING record; ``None`` disables the slow-query log.
        self.slow_query_ms = slow_query_ms
        #: Bounded admission: at most this many queries evaluate at once;
        #: the rest are rejected immediately with ``503 + Retry-After``
        #: instead of queueing behind a saturated worker pool.  ``None``
        #: disables admission control.
        self.max_concurrency = max_concurrency
        self._admission = (threading.BoundedSemaphore(max_concurrency)
                           if max_concurrency else None)
        #: Server-wide ceiling on per-request ``timeout_s``: requests
        #: asking for more (or for no deadline at all) are clamped to it.
        self.max_timeout_s = max_timeout_s
        #: Cancel tokens of in-flight queries, so graceful drain (and
        #: anything else holding the service) can cancel them.
        self._inflight_lock = threading.Lock()
        self._inflight_tokens: dict[int, CancelToken] = {}
        self._inflight_serial = 0

    # -- corpus journal ------------------------------------------------------

    def _journal_apply_failed(self, payload: Mapping[str, Any],
                              error: Exception) -> None:
        LOGGER.warning("journal record failed to apply", extra={"fields": {
            "event": "journal_apply_error",
            "op": payload.get("op"),
            "uri": payload.get("uri"),
            "error": f"{type(error).__name__}: {error}",
        }})

    def replay_journal(self) -> int:
        """Apply the whole journal before accepting traffic.

        Returns the number of records applied and flips the readiness
        gate: a restarted worker replays everything it missed so its
        corpus snapshot is item-identical to the rest of the fleet.
        """
        applied = 0
        if self._tailer is not None:
            applied = self._tailer.replay()
        self.journal_replayed = True
        return applied

    def start_journal_tailer(self, interval: float = 0.1) -> None:
        """Poll the journal for records appended by other workers."""
        if self._tailer is not None:
            self._tailer.start(interval)

    def stop_journal_tailer(self) -> None:
        if self._tailer is not None:
            self._tailer.stop()

    def catch_up_journal(self) -> int:
        """Synchronously apply any journal records not yet seen."""
        if self._tailer is None:
            return 0
        return self._tailer.catch_up()

    def journal_stats(self) -> dict | None:
        return self._tailer.stats() if self._tailer is not None else None

    # -- fleet status & readiness --------------------------------------------

    def update_cluster(self, status: Mapping[str, Any]) -> None:
        """Absorb a supervisor status push (prefork worker heartbeat ack)."""
        with self._cluster_lock:
            self._cluster = dict(status)

    def cluster_status(self) -> dict[str, Any] | None:
        with self._cluster_lock:
            return dict(self._cluster) if self._cluster is not None else None

    def begin_drain(self) -> None:
        """Mark the service as draining: readiness false, liveness stays."""
        self.draining = True

    def ready(self) -> tuple[int, dict]:
        """The readiness verdict for ``GET /ready``: (status, body).

        Ready means: the corpus journal has been replayed (or there is no
        journal), graceful drain has not started, and — when a supervisor
        reports fleet status — at least one worker is alive.
        """
        cluster = self.cluster_status()
        workers_alive = int(cluster.get("workers_alive", 1)) if cluster else 1
        workers_target = int(cluster.get("workers_target", 1)) if cluster else 1
        ok = self.journal_replayed and not self.draining and workers_alive >= 1
        body = {
            "ready": ok,
            "journal_replayed": self.journal_replayed,
            "draining": self.draining,
            "workers_alive": workers_alive,
            "workers_target": workers_target,
            "degraded": bool(cluster.get("degraded", False)) if cluster else False,
        }
        return (200 if ok else 503), body

    # -- in-flight cancellation ----------------------------------------------

    def _track(self, token: CancelToken) -> int:
        with self._inflight_lock:
            self._inflight_serial += 1
            self._inflight_tokens[self._inflight_serial] = token
            return self._inflight_serial

    def _untrack(self, handle: int) -> None:
        with self._inflight_lock:
            self._inflight_tokens.pop(handle, None)

    def cancel_inflight(self, reason: str = "cancelled by server") -> int:
        """Cancel every in-flight query; returns how many were signalled."""
        with self._inflight_lock:
            tokens = list(self._inflight_tokens.values())
        for token in tokens:
            token.cancel(reason)
        return len(tokens)

    # -- handlers ------------------------------------------------------------

    def handle_query(self, payload: Mapping[str, Any],
                     resolver=None, cancel_token: CancelToken | None = None) -> dict:
        """Evaluate one query payload (see the module docstring schema).

        *resolver* lets ``/batch`` share one corpus snapshot across its
        queries; standalone requests capture their own.  *cancel_token*
        lets the transport cancel the evaluation mid-flight (client
        disconnect); the service always registers a token so graceful
        drain can cancel whatever is still running.
        """
        if faults.firing("worker-kill") is not None:
            # Chaos drill: die the way a segfaulting worker would — no
            # cleanup, no goodbye — so the supervisor's crash detection,
            # restart and journal replay are exercised for real.
            os.kill(os.getpid(), signal.SIGKILL)
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ServiceError('"query" must be a non-empty string')
        unknown = set(payload) - {"query", "engine", "variables", "context",
                                  "settings", "trace", "timeout_s"}
        if unknown:
            raise ServiceError(f"unknown request field(s): {sorted(unknown)}")

        trace_requested = payload.get("trace", False)
        if not isinstance(trace_requested, bool):
            raise ServiceError('"trace" must be a boolean')
        settings = self._settings_of(payload)
        if trace_requested:
            settings = settings.replace(trace=True)
        settings = self._govern(settings, payload.get("timeout_s"))
        variables = payload.get("variables")
        if variables is not None and not isinstance(variables, Mapping):
            raise ServiceError('"variables" must be an object')

        if resolver is None:
            resolver = self.session.snapshot()
        context_item = None
        context_uri = payload.get("context")
        if context_uri is not None:
            try:
                context_item = resolver.resolve(context_uri)
            except ReproError:
                raise ServiceError(f'"context" document {context_uri!r} '
                                   f"is not registered")

        engine = settings.engine.value
        if self._admission is not None and not self._admission.acquire(blocking=False):
            self.stats.rejected()
            raise ServiceError(
                f"server saturated ({self.max_concurrency} queries in flight); "
                f"retry later", status=503,
                headers={"Retry-After": "1"},
                body={"error_type": "Saturated", "retry_after": 1})
        token = cancel_token if cancel_token is not None else CancelToken()
        handle = self._track(token)
        started = time.perf_counter()
        error = True
        self.stats.enter()
        try:
            result = self.session.evaluate(
                query, documents=resolver, variables=variables,
                context_item=context_item, settings=settings,
                cancel_token=token)
            elapsed = time.perf_counter() - started
            error = False
        except QueryTimeout as exc:
            self.stats.timed_out(engine)
            raise ServiceError(
                str(exc), status=408,
                body={"error_type": "QueryTimeout",
                      "timeout_s": exc.timeout_s})
        except BudgetExceeded as exc:
            raise ServiceError(
                str(exc), status=429,
                body={"error_type": "BudgetExceeded", "budget": exc.budget,
                      "limit": exc.limit, "observed": exc.observed})
        except QueryCancelled as exc:
            self.stats.cancelled(engine)
            raise ServiceError(
                str(exc), status=503,
                headers={"Retry-After": "1"},
                body={"error_type": "QueryCancelled", "reason": exc.reason})
        except ReproError as exc:
            if isinstance(exc, XQueryStaticError):
                self.stats.static_error()
            raise ServiceError(f"{type(exc).__name__}: {exc}", status=422)
        finally:
            self.stats.exit(engine, time.perf_counter() - started, error)
            self._untrack(handle)
            if self._admission is not None:
                self._admission.release()
        for run in result.statistics.runs:
            self.stats.observe_rounds(engine, run.recursion_depth)
        elapsed_ms = round(elapsed * 1000.0, 3)
        if self.slow_query_ms is not None and elapsed_ms >= self.slow_query_ms:
            LOGGER.warning("slow query", extra={"fields": {
                "event": "slow_query",
                "engine": engine,
                "elapsed_ms": elapsed_ms,
                "threshold_ms": self.slow_query_ms,
                "count": len(result.items),
                "generation": self.session.generation,
                "query": query if len(query) <= 500 else query[:499] + "…",
            }})
        response = {
            "ok": True,
            "items": serialize_items(result.items),
            "count": len(result.items),
            "engine": engine,
            "elapsed_ms": elapsed_ms,
        }
        if result.profile is not None:
            response["profile"] = result.profile
        if trace_requested and result.trace is not None:
            response["trace"] = result.trace.to_dict()
        return response

    def handle_batch(self, payload: Mapping[str, Any],
                     cancel_token: CancelToken | None = None) -> dict:
        """Evaluate many queries against one shared corpus snapshot."""
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        queries = payload.get("queries")
        if not isinstance(queries, list) or not queries:
            raise ServiceError('"queries" must be a non-empty array')
        unknown = set(payload) - {"queries", "settings"}
        if unknown:
            raise ServiceError(f"unknown request field(s): {sorted(unknown)}")
        defaults = payload.get("settings")

        resolver = self.session.snapshot()  # one snapshot for the whole batch
        results = []
        for entry in queries:
            if defaults and isinstance(entry, Mapping) and "settings" not in entry:
                entry = {**entry, "settings": defaults}
            try:
                results.append(self.handle_query(entry, resolver=resolver,
                                                 cancel_token=cancel_token))
            except ServiceError as exc:
                results.append({**exc.payload(), "status": exc.status})
        return {"ok": True, "results": results, "count": len(results)}

    def handle_analyze(self, payload: Mapping[str, Any]) -> dict:
        """Run the static analyzer only — never evaluate (``POST /analyze``)."""
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        query = payload.get("query")
        if not isinstance(query, str) or not query.strip():
            raise ServiceError('"query" must be a non-empty string')
        unknown = set(payload) - {"query", "variables"}
        if unknown:
            raise ServiceError(f"unknown request field(s): {sorted(unknown)}")
        variables = payload.get("variables")
        if variables is not None and not isinstance(variables, (Mapping, list)):
            raise ServiceError('"variables" must be an object (or array) '
                               "of external variable names")
        bound = tuple(variables) if variables else ()
        from repro.analysis import analyze_query

        try:
            report = analyze_query(query, bound_variables=bound)
        except ReproError as exc:
            # only parse failures land here; static errors are reported
            # inside the analysis body below
            raise ServiceError(f"{type(exc).__name__}: {exc}", status=422)
        self.stats.analyzed(len(report.errors()))
        return {"ok": True, "analysis": report.to_dict()}

    def handle_register(self, payload: Mapping[str, Any]) -> dict:
        """Register/replace a document — the service's mutation path.

        With a journal attached the mutation is *journaled first*: the
        record is durably appended (fsync), then applied locally through
        the tailer so this worker — and, via their tailers, every other
        worker — converges on the same corpus.  The document is parsed
        *before* the append: a malformed payload must answer 422 without
        poisoning the journal for the whole fleet.
        """
        if not isinstance(payload, Mapping):
            raise ServiceError("request body must be a JSON object")
        uri = payload.get("uri")
        xml = payload.get("xml")
        if not isinstance(uri, str) or not uri:
            raise ServiceError('"uri" must be a non-empty string')
        if not isinstance(xml, str) or not xml.strip():
            raise ServiceError('"xml" must be a non-empty XML string')
        id_attributes = payload.get("id_attributes")
        if self.journal is None:
            try:
                generation = self.session.register_document(
                    uri, xml, id_attributes=id_attributes)
            except ReproError as exc:
                raise ServiceError(f"{type(exc).__name__}: {exc}", status=422)
            return {"ok": True, "uri": uri, "generation": generation}
        try:
            parse_xml(xml, id_attributes=tuple(
                id_attributes or self.session.id_attributes))
        except ReproError as exc:
            raise ServiceError(f"{type(exc).__name__}: {exc}", status=422)
        op = "replace" if uri in self.session.document_uris() else "register"
        offset = self.journal.append(make_record(op, uri, xml, id_attributes))
        self.catch_up_journal()
        return {"ok": True, "uri": uri, "generation": self.session.generation,
                "op": op, "journal_offset": offset}

    def health(self) -> dict:
        """Liveness: the process is up and answering.  Fleet context (when
        a supervisor reports it) rides along, but never flips the status —
        readiness lives at ``GET /ready``."""
        cluster = self.cluster_status()
        payload = {
            "status": "ok",
            "generation": self.session.generation,
            "documents": self.session.document_uris(),
            "in_flight": self.stats.snapshot()["in_flight"],
            "degraded": bool(cluster.get("degraded", False)) if cluster else False,
        }
        if cluster is not None:
            payload["workers_alive"] = cluster.get("workers_alive")
            payload["workers_target"] = cluster.get("workers_target")
        return payload

    def stats_report(self) -> dict:
        return {"service": self.stats.snapshot(), "session": self.session.stats()}

    def metrics_text(self) -> str:
        """The Prometheus text exposition served at ``GET /metrics``.

        Request counters/histograms live in the registry permanently;
        session-derived values (uptime, generation, cache hit ratios,
        SQLite pool counters) are gauges refreshed at scrape time.
        """
        registry = self.stats.registry
        session_stats = self.session.stats()
        registry.gauge("repro_uptime_seconds",
                       "Seconds since service start (monotonic clock).").set(
            time.monotonic() - self.stats.started_at)
        registry.gauge("repro_generation",
                       "Document-registry generation of the session.").set(
            session_stats["generation"])
        registry.gauge("repro_documents",
                       "Documents registered in the session.").set(
            session_stats["documents"])
        registry.gauge("repro_peak_requests_in_flight",
                       "High-water mark of concurrent queries.").set(
            self.stats.peak_in_flight)

        hits = registry.gauge("repro_cache_hits",
                              "Cumulative cache hits, by cache.", ("cache",))
        misses = registry.gauge("repro_cache_misses",
                                "Cumulative cache misses, by cache.", ("cache",))
        ratio = registry.gauge("repro_cache_hit_ratio",
                               "hits / (hits + misses), by cache.", ("cache",))
        size = registry.gauge("repro_cache_size",
                              "Live entries, by cache.", ("cache",))
        for name in ("module", "plan"):
            cache = session_stats[name]
            hits.labels(cache=name).set(cache["hits"])
            misses.labels(cache=name).set(cache["misses"])
            lookups = cache["hits"] + cache["misses"]
            ratio.labels(cache=name).set(cache["hits"] / lookups if lookups else 0.0)
            size.labels(cache=name).set(cache["size"])

        journal_stats = self.journal_stats()
        if journal_stats is not None:
            registry.gauge("repro_journal_offset_bytes",
                           "Byte offset this worker's tailer has applied to.").set(
                journal_stats["offset"])
            registry.gauge("repro_journal_corrupt_records",
                           "Corrupt journal records skipped by this worker.").set(
                journal_stats["corrupt_records"])
            registry.gauge("repro_journal_apply_errors",
                           "Journal records that failed to apply.").set(
                journal_stats["apply_errors"])

        pool = session_stats["sql_pool"]
        registry.gauge("repro_sql_pool_live_stores",
                       "Per-worker SQLite stores currently pooled.").set(
            pool["live_stores"])
        registry.gauge("repro_sql_pool_created_total",
                       "SQLite stores built since start (rebuilds included).").set(
            pool["created"])
        registry.gauge("repro_sql_pool_invalidated_total",
                       "Pool invalidations (corpus mutations).").set(
            pool["invalidated"])
        return registry.render()

    def _govern(self, settings: EvalSettings,
                requested: Any) -> EvalSettings:
        """Fold the request's ``timeout_s`` (clamped by ``max_timeout_s``)
        into the settings' resource limits."""
        if requested is not None:
            if isinstance(requested, bool) or not isinstance(requested, (int, float)):
                raise ServiceError('"timeout_s" must be a number')
            if requested <= 0:
                raise ServiceError('"timeout_s" must be positive')
            requested = float(requested)
        timeout = requested
        if timeout is None and settings.limits is not None:
            timeout = settings.limits.timeout_s
        if self.max_timeout_s is not None:
            timeout = (self.max_timeout_s if timeout is None
                       else min(timeout, self.max_timeout_s))
        if timeout is None:
            return settings
        base = settings.limits if settings.limits is not None else ResourceLimits()
        return settings.replace(limits=dataclasses.replace(base, timeout_s=timeout))

    def _settings_of(self, payload: Mapping[str, Any]) -> EvalSettings:
        raw = payload.get("settings")
        if raw is not None and not isinstance(raw, Mapping):
            raise ServiceError('"settings" must be an object of '
                               "EvalSettings fields")
        try:
            if raw is not None and isinstance(raw.get("limits"), Mapping):
                # JSON clients spell resource limits as a plain object.
                raw = {**raw, "limits": ResourceLimits(**raw["limits"])}
            settings = coerce_settings(raw, self.session.settings)
            engine = payload.get("engine")
            if engine is not None:
                settings = settings.replace(engine=engine)
        except (TypeError, ValueError) as exc:
            raise ServiceError(f"bad settings: {exc}")
        return settings


def _watch_disconnect(connection, token: CancelToken, stop: threading.Event,
                      interval: float = 0.05) -> None:
    """Cancel *token* when the client hangs up mid-evaluation.

    Polls the request socket: readable with a zero-byte peek means the
    peer closed, so the evaluation's result has no recipient and the
    worker should be reclaimed.  Readable with pending bytes is a
    pipelined request on the keep-alive connection — not a disconnect —
    so the watcher stands down (it cannot keep distinguishing a later
    hang-up without consuming those bytes).
    """
    while not stop.wait(interval):
        try:
            readable, _, _ = select.select([connection], [], [], 0)
            if not readable:
                continue
            data = connection.recv(1, socket.MSG_PEEK)
        except (OSError, ValueError):
            token.cancel("client disconnected")
            return
        if data == b"":
            token.cancel("client disconnected")
            return
        return  # pipelined bytes: leave them to the handler loop


class _Handler(BaseHTTPRequestHandler):
    """JSON-over-HTTP plumbing; all logic lives in :class:`QueryService`."""

    protocol_version = "HTTP/1.1"
    #: Headers and body flush as separate small sends; without TCP_NODELAY,
    #: Nagle + delayed ACK stalls every keep-alive response by ~40ms.
    disable_nagle_algorithm = True
    #: Maximum accepted request body (a corpus re-registration can be big).
    MAX_BODY = 64 * 1024 * 1024

    @property
    def service(self) -> QueryService:
        return self.server.service  # type: ignore[attr-defined]

    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        # stdlib plumbing messages (expect-100, socket errors): DEBUG only.
        LOGGER.debug("%s - %s", self.address_string(), format % args)

    def _log_request(self, status: int, started: float,
                     engine: str | None = None) -> None:
        """One structured record per request (INFO — enabled by --verbose)."""
        if not LOGGER.isEnabledFor(logging.INFO):
            return
        fields = {
            "event": "request",
            "method": self.command,
            "path": self.path,
            "status": status,
            "elapsed_ms": round((time.monotonic() - started) * 1000.0, 3),
            "generation": self.service.session.generation,
            "client": self.address_string(),
        }
        if engine is not None:
            fields["engine"] = engine
        LOGGER.info("%s %s -> %d", self.command, self.path, status,
                    extra={"fields": fields})

    def do_GET(self):
        started = time.monotonic()
        status = 200
        if self.path == "/health":
            self._respond(200, self.service.health())
        elif self.path == "/ready":
            status, body = self.service.ready()
            self._respond(status, body)
        elif self.path == "/stats":
            self._respond(200, self.service.stats_report())
        elif self.path == "/metrics":
            self._respond_text(200, self.service.metrics_text())
        else:
            status = 404
            self._respond(404, {"ok": False, "error": f"unknown path {self.path}"})
        self._log_request(status, started)

    def do_POST(self):
        started = time.monotonic()
        routes = {
            "/query": self.service.handle_query,
            "/batch": self.service.handle_batch,
            "/analyze": self.service.handle_analyze,
            "/documents": self.service.handle_register,
        }
        handler = routes.get(self.path)
        if handler is None:
            self._respond(404, {"ok": False, "error": f"unknown path {self.path}"})
            self._log_request(404, started)
            return
        status = 500
        engine = None
        try:
            length = int(self.headers.get("Content-Length", 0))
            if length > self.MAX_BODY:
                raise ServiceError("request body too large", status=413)
            body = self.rfile.read(length) if length else b""
            try:
                payload = json.loads(body or b"{}")
            except json.JSONDecodeError as exc:
                raise ServiceError(f"invalid JSON body: {exc}")
            if self.path in ("/query", "/batch"):
                # Watch the socket while evaluating: a client that hangs
                # up mid-query gets its evaluation cancelled instead of
                # holding a worker until the deadline.
                token = CancelToken()
                stop = threading.Event()
                watcher = threading.Thread(
                    target=_watch_disconnect,
                    args=(self.connection, token, stop),
                    name="repro-serve-disconnect", daemon=True)
                watcher.start()
                try:
                    response = handler(payload, cancel_token=token)
                finally:
                    stop.set()
            else:
                response = handler(payload)
            status = 200
            if isinstance(response, Mapping):
                engine = response.get("engine")
            self._respond(200, response)
        except ServiceError as exc:
            status = exc.status
            self._respond(exc.status, exc.payload(), headers=exc.headers)
        except Exception as exc:  # a bug, not a bad request — say so
            status = 500
            self._respond(500, {"ok": False,
                                "error": f"internal error: {type(exc).__name__}: {exc}"})
        finally:
            self._log_request(status, started, engine)

    def _respond(self, status: int, payload: dict,
                 headers: Mapping[str, str] | None = None) -> None:
        body = json.dumps(payload).encode()
        self._send(status, "application/json", body, headers=headers)

    def _respond_text(self, status: int, text: str) -> None:
        # The Prometheus exposition content type (text format 0.0.4).
        self._send(status, "text/plain; version=0.0.4; charset=utf-8",
                   text.encode())

    def _send(self, status: int, content_type: str, body: bytes,
              headers: Mapping[str, str] | None = None) -> None:
        self.send_response(status)
        self.send_header("Content-Type", content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class QueryServer(ThreadingHTTPServer):
    """ThreadingHTTPServer wired to a :class:`QueryService`.

    Worker threads are daemonic so a hung client cannot block process
    exit; :meth:`graceful_shutdown` gives in-flight requests a bounded
    drain window first.
    """

    daemon_threads = True
    allow_reuse_address = True

    #: How long (seconds) drain waits for workers to unwind *after*
    #: cancelling the still-running queries through their tokens.
    DRAIN_CANCEL_GRACE_S = 2.0

    def __init__(self, address, service: QueryService, verbose: bool = False,
                 drain_timeout: float = 10.0, bind_and_activate: bool = True):
        super().__init__(address, _Handler, bind_and_activate=bind_and_activate)
        self.service = service
        self.verbose = verbose
        self.drain_timeout = drain_timeout

    @classmethod
    def from_socket(cls, listen_socket: socket.socket, service: QueryService,
                    verbose: bool = False,
                    drain_timeout: float = 10.0) -> "QueryServer":
        """Serve on an already-bound, already-listening socket.

        The prefork path: the supervisor binds the address once and every
        worker adopts the shared socket (inherited across ``exec``), so
        the kernel load-balances accepts over the fleet.  A short accept
        timeout makes stolen wakeups (another worker accepted first)
        harmless instead of blocking the serve loop.
        """
        server = cls(listen_socket.getsockname()[:2], service, verbose=verbose,
                     drain_timeout=drain_timeout, bind_and_activate=False)
        server.socket.close()
        listen_socket.settimeout(0.5)
        server.socket = listen_socket
        server.server_address = listen_socket.getsockname()[:2]
        host, port = server.server_address
        server.server_name = host
        server.server_port = port
        return server

    def graceful_shutdown(self, timeout: float | None = None) -> bool:
        """Stop accepting, drain in-flight requests, close sockets.

        Waits up to *timeout* (default: the server's ``drain_timeout``)
        for in-flight queries to finish naturally; whatever still runs
        then is cancelled through its :class:`CancelToken` and given a
        short bounded grace to unwind through the typed error.  Returns
        ``True`` when the drain completed (naturally or via
        cancellation).
        """
        if timeout is None:
            timeout = self.drain_timeout
        self.service.begin_drain()  # readiness goes false before the drain
        self.shutdown()            # stops the accept loop (thread-safe)
        deadline = time.monotonic() + timeout
        drained = self.service.stats.drained()
        while not drained and time.monotonic() < deadline:
            time.sleep(0.02)
            drained = self.service.stats.drained()
        if not drained:
            cancelled = self.service.cancel_inflight("server draining")
            grace = time.monotonic() + self.DRAIN_CANCEL_GRACE_S
            while not drained and time.monotonic() < grace:
                time.sleep(0.02)
                drained = self.service.stats.drained()
            if not drained:
                LOGGER.warning("drain timed out", extra={"fields": {
                    "event": "drain_timeout", "cancelled": cancelled,
                    "in_flight": self.service.stats.in_flight}})
        self.server_close()
        return drained


def create_server(service: QueryService | None = None,
                  host: str = "127.0.0.1", port: int = 0,
                  verbose: bool = False,
                  drain_timeout: float = 10.0) -> QueryServer:
    """A ready-to-run server (``port=0`` picks an ephemeral port)."""
    return QueryServer((host, port), service or QueryService(), verbose=verbose,
                       drain_timeout=drain_timeout)


def serve(server: QueryServer) -> threading.Thread:
    """Run *server*'s accept loop on a daemon thread; returns the thread."""
    thread = threading.Thread(target=server.serve_forever,
                              name="repro-serve-accept", daemon=True)
    thread.start()
    return thread


def add_service_arguments(parser: argparse.ArgumentParser) -> None:
    """The flags every serving process understands — shared between the
    single-process daemon, the supervisor (which forwards them) and the
    worker entrypoint (:mod:`repro.service.worker`)."""
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=8720)
    parser.add_argument("--doc", action="append", default=[], metavar="URI=PATH",
                        help="register a document at startup (repeatable)")
    parser.add_argument("--id-attribute", action="append", default=["id", "xml:id"],
                        help="attribute names to treat as IDs (repeatable)")
    parser.add_argument("--engine", choices=["interpreter", "algebra", "sql"],
                        default="interpreter",
                        help="default engine for requests that name none")
    parser.add_argument("--sql-store", choices=["memory", "wal"], default="wal",
                        help="per-worker SQLite stores: in-memory or "
                             "file-backed WAL databases (default: wal)")
    parser.add_argument("--sql-store-dir", default=None,
                        help="directory for WAL store files "
                             "(default: a private tempdir)")
    parser.add_argument("--journal", default=None, metavar="PATH",
                        help="durable corpus journal: POST /documents appends "
                             "here (fsync'd, CRC-framed) and is replayed on "
                             "restart; required for --workers > 1 "
                             "(default: none in single-process mode)")
    parser.add_argument("--verbose", action="store_true",
                        help="log one structured record per request to stderr")
    parser.add_argument("--log-json", action="store_true",
                        help="emit log records as JSON lines instead of text")
    parser.add_argument("--slow-query-ms", type=float, default=None, metavar="MS",
                        help="log a WARNING record for queries slower than MS "
                             "milliseconds (default: disabled)")
    parser.add_argument("--max-concurrency", type=int, default=None, metavar="N",
                        help="admit at most N concurrent queries; beyond that "
                             "requests are rejected immediately with "
                             "503 + Retry-After (default: unlimited)")
    parser.add_argument("--max-timeout", type=float, default=None, metavar="SECONDS",
                        help="server-wide ceiling on per-request timeout_s; "
                             "requests asking for more (or for no deadline) "
                             "are clamped to it (default: no ceiling)")
    parser.add_argument("--drain-timeout", type=float, default=10.0, metavar="SECONDS",
                        help="how long graceful shutdown waits for in-flight "
                             "queries before cancelling them (default: 10)")


def add_supervision_arguments(parser: argparse.ArgumentParser) -> None:
    """Prefork/supervision flags (see :mod:`repro.service.supervisor`)."""
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="number of worker processes; N > 1 runs the "
                             "prefork supervisor (default: 1, in-process)")
    parser.add_argument("--control-port", type=int, default=None, metavar="PORT",
                        help="supervisor control endpoint (/ready, aggregated "
                             "/metrics); default: the service port + 1, or "
                             "ephemeral when --port 0")
    parser.add_argument("--heartbeat-interval", type=float, default=0.5,
                        metavar="SECONDS",
                        help="worker heartbeat period (default: 0.5)")
    parser.add_argument("--heartbeat-timeout", type=float, default=5.0,
                        metavar="SECONDS",
                        help="a worker silent this long is declared hung and "
                             "killed (default: 5)")
    parser.add_argument("--restart-backoff", type=float, default=0.2,
                        metavar="SECONDS",
                        help="base delay before restarting a crashed worker; "
                             "doubles per consecutive failure (default: 0.2)")
    parser.add_argument("--restart-backoff-max", type=float, default=10.0,
                        metavar="SECONDS",
                        help="cap on the exponential restart backoff "
                             "(default: 10)")
    parser.add_argument("--breaker-threshold", type=int, default=5, metavar="N",
                        help="worker crashes within --breaker-window that trip "
                             "the crash-loop breaker (default: 5)")
    parser.add_argument("--breaker-window", type=float, default=30.0,
                        metavar="SECONDS",
                        help="sliding window for the crash-loop breaker "
                             "(default: 30)")
    parser.add_argument("--breaker-cooldown", type=float, default=30.0,
                        metavar="SECONDS",
                        help="after tripping, wait this long before allowing "
                             "restarts again, half-open (default: 30)")
    parser.add_argument("--stable-after", type=float, default=5.0,
                        metavar="SECONDS",
                        help="a worker alive this long counts as stable: its "
                             "failure streak resets (default: 5)")


def build_session(arguments: argparse.Namespace) -> Session:
    """The serving session of one process, per the parsed CLI flags."""
    session = Session(settings=EvalSettings(engine=arguments.engine),
                      id_attributes=tuple(arguments.id_attribute),
                      sql_store=arguments.sql_store,
                      sql_store_dir=arguments.sql_store_dir)
    for spec in arguments.doc:
        if "=" not in spec:
            raise ValueError("--doc expects URI=PATH")
        uri, path = spec.split("=", 1)
        session.register_document(
            uri, parse_xml_file(path, id_attributes=tuple(arguments.id_attribute)))
    return session


def build_service(arguments: argparse.Namespace,
                  session: Session | None = None) -> QueryService:
    """A :class:`QueryService` (journal attached if configured)."""
    if session is None:
        session = build_session(arguments)
    journal = CorpusJournal(arguments.journal) if arguments.journal else None
    return QueryService(session=session,
                        slow_query_ms=arguments.slow_query_ms,
                        max_concurrency=arguments.max_concurrency,
                        max_timeout_s=arguments.max_timeout,
                        journal=journal)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-serve",
        description="Serve XQuery evaluation over HTTP "
                    "(POST /query, POST /batch, GET /health, GET /ready, "
                    "GET /stats; --workers N runs a supervised prefork fleet)",
    )
    add_service_arguments(parser)
    add_supervision_arguments(parser)
    arguments = parser.parse_args(argv)
    configure_logging(verbose=arguments.verbose, log_json=arguments.log_json)
    if arguments.max_concurrency is not None and arguments.max_concurrency < 1:
        parser.error("--max-concurrency must be at least 1")
    if arguments.workers < 1:
        parser.error("--workers must be at least 1")
    if arguments.workers > 1:
        # The prefork path: bind once, fork N workers, supervise.  The
        # import is deferred so the single-process daemon stays free of
        # the supervisor's subprocess machinery.
        from repro.service.supervisor import run_supervisor

        if not arguments.journal:
            parser.error("--workers > 1 requires --journal PATH "
                         "(cross-worker corpus consistency)")
        return run_supervisor(arguments)

    fault_plan = faults.plan_from_env()
    if fault_plan is not None:
        # Chaos drills: REPRO_FAULTS="sqlite-execute:error=oops,probability=0.1"
        faults.activate(fault_plan)
        print("repro-serve: fault injection armed from REPRO_FAULTS",
              file=sys.stderr)

    try:
        session = build_session(arguments)
    except ValueError as error:
        parser.error(str(error))
    service = build_service(arguments, session)
    if service.journal is not None:
        replayed = service.replay_journal()
        service.start_journal_tailer()
        if replayed:
            print(f"repro-serve: replayed {replayed} journal record(s) from "
                  f"{arguments.journal}", file=sys.stderr)
    server = create_server(service, host=arguments.host, port=arguments.port,
                           verbose=arguments.verbose,
                           drain_timeout=arguments.drain_timeout)
    host, port = server.server_address[:2]
    print(f"repro-serve: listening on http://{host}:{port} "
          f"(docs: {session.document_uris() or 'none'}, "
          f"default engine: {arguments.engine}, "
          f"sql stores: {arguments.sql_store})", file=sys.stderr)

    stop_signal = {"received": None}

    def request_shutdown(signum, frame):
        stop_signal["received"] = signum
        # shutdown() must not run on the serve_forever thread.
        threading.Thread(target=server.shutdown, daemon=True).start()

    signal.signal(signal.SIGINT, request_shutdown)
    signal.signal(signal.SIGTERM, request_shutdown)
    try:
        server.serve_forever()
    finally:
        # serve_forever already returned, so shutdown() inside
        # graceful_shutdown is an immediate no-op; what remains is the
        # bounded drain, the cancel-stragglers pass and the close.
        server.graceful_shutdown(arguments.drain_timeout)
        service.stop_journal_tailer()
        session.close()
        final = service.stats.snapshot()
        print(f"repro-serve: stopped "
              f"(signal {stop_signal['received']}, "
              f"{final['requests']} requests, {final['errors']} errors, "
              f"drained: {final['in_flight'] == 0})", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
