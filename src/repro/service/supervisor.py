"""Prefork supervisor: bind once, fork N workers, keep them alive.

``repro-serve --workers N --journal PATH`` runs this module instead of
the in-process server.  The supervisor:

* binds and listens on the service socket exactly once, then spawns
  ``N`` worker subprocesses (:mod:`repro.service.worker`) that inherit
  the socket fd and accept from it concurrently — the kernel spreads
  connections over the fleet, no userspace proxy involved;
* holds one ``socketpair`` per worker for JSON-line heartbeats up and
  fleet-status pushes down;
* detects crashes via SIGCHLD (self-pipe into the select loop) and
  hangs via heartbeat timeout (a silent worker is SIGKILLed and treated
  as crashed);
* restarts failed workers with exponential backoff
  (:class:`BackoffSchedule`) and refuses to flap forever: a
  :class:`CrashLoopBreaker` trips after ``threshold`` crashes inside a
  sliding ``window`` and blocks restarts for ``cooldown`` seconds,
  during which the fleet reports ``degraded: true`` and readiness
  carries ``workers_alive < workers_target``;
* serves a control endpoint (``--control-port``, default service port
  + 1) with ``/health``, ``/ready``, ``/stats`` and an aggregated
  ``/metrics`` that scrapes every worker's private port and merges the
  expositions under ``worker="<slot>"`` labels, adding its own
  ``repro_worker_restarts_total`` / ``repro_workers_alive`` series.

Corpus consistency across the fleet is the journal's job, not the
supervisor's: ``POST /documents`` lands on *one* worker, which appends
to the shared journal; every other worker tails it, and a restarted
worker replays it before accepting traffic (see
:mod:`repro.service.journal` and DESIGN.md §12).
"""

from __future__ import annotations

import argparse
import errno
import json
import os
import select
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from collections import deque
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import repro
from repro.observability import MetricsRegistry, merge_expositions

#: Exit summary fields logged per reaped worker.
_SIGNAL_NAMES = {int(s): s.name for s in signal.Signals}


class BackoffSchedule:
    """Exponential restart backoff: ``base * 2**(failures-1)``, capped.

    ``delay(0)`` is 0.0 — the first spawn (or a restart after a stable
    run reset the streak) is immediate.
    """

    def __init__(self, base: float = 0.2, cap: float = 10.0):
        if base < 0 or cap < 0:
            raise ValueError("backoff base and cap must be non-negative")
        self.base = base
        self.cap = cap

    def delay(self, failures: int) -> float:
        if failures <= 0:
            return 0.0
        return min(self.cap, self.base * (2.0 ** (failures - 1)))


class CrashLoopBreaker:
    """A circuit breaker over worker crash events.

    Trips when ``threshold`` crashes land within a sliding ``window``;
    while tripped, :meth:`allow_restart` returns ``False`` until
    ``cooldown`` elapses (half-open).  A crash while tripped re-opens
    the breaker — the cooldown starts over.  :meth:`note_stable`
    (a restarted worker survived long enough) fully resets it.

    The clock is injectable so unit tests drive time by hand.
    """

    def __init__(self, threshold: int = 5, window: float = 30.0,
                 cooldown: float = 30.0, clock=time.monotonic):
        if threshold < 1:
            raise ValueError("breaker threshold must be at least 1")
        self.threshold = threshold
        self.window = window
        self.cooldown = cooldown
        self._clock = clock
        self._crashes: deque[float] = deque()
        self._tripped_at: float | None = None

    @property
    def tripped(self) -> bool:
        return self._tripped_at is not None

    def record_crash(self) -> bool:
        """Record one crash; returns ``True`` when this one trips (or
        re-opens) the breaker."""
        now = self._clock()
        self._crashes.append(now)
        cutoff = now - self.window
        while self._crashes and self._crashes[0] < cutoff:
            self._crashes.popleft()
        if self._tripped_at is not None or len(self._crashes) >= self.threshold:
            self._tripped_at = now
            return True
        return False

    def allow_restart(self) -> bool:
        if self._tripped_at is None:
            return True
        return self._clock() - self._tripped_at >= self.cooldown

    def note_stable(self) -> None:
        """A restarted worker proved itself; close the breaker."""
        self._crashes.clear()
        self._tripped_at = None

    def snapshot(self) -> dict:
        return {"tripped": self.tripped,
                "recent_crashes": len(self._crashes),
                "threshold": self.threshold,
                "window_s": self.window,
                "cooldown_s": self.cooldown}


class WorkerHandle:
    """Supervisor-side state for one worker slot."""

    def __init__(self, slot: int, process: subprocess.Popen,
                 control: socket.socket, started_at: float):
        self.slot = slot
        self.process = process
        self.control = control
        self.started_at = started_at
        self.last_heartbeat = started_at
        self.buffer = b""
        self.ready = False
        self.direct_port: int | None = None
        self.in_flight = 0
        self.stable = False
        self.hung = False

    @property
    def pid(self) -> int:
        return self.process.pid

    def alive(self) -> bool:
        return self.process.poll() is None


def _forwarded_flags(arguments: argparse.Namespace) -> list[str]:
    """The service flags a worker must inherit from the supervisor CLI."""
    flags: list[str] = []
    for doc in arguments.doc:
        flags += ["--doc", doc]
    for attribute in arguments.id_attribute:
        flags += ["--id-attribute", attribute]
    flags += ["--engine", arguments.engine,
              "--sql-store", arguments.sql_store,
              "--drain-timeout", str(arguments.drain_timeout)]
    if arguments.sql_store_dir:
        flags += ["--sql-store-dir", arguments.sql_store_dir]
    if arguments.journal:
        flags += ["--journal", arguments.journal]
    if arguments.verbose:
        flags.append("--verbose")
    if arguments.log_json:
        flags.append("--log-json")
    if arguments.slow_query_ms is not None:
        flags += ["--slow-query-ms", str(arguments.slow_query_ms)]
    if arguments.max_concurrency is not None:
        flags += ["--max-concurrency", str(arguments.max_concurrency)]
    if arguments.max_timeout is not None:
        flags += ["--max-timeout", str(arguments.max_timeout)]
    return flags


class Supervisor:
    def __init__(self, arguments: argparse.Namespace):
        self.arguments = arguments
        self.target = arguments.workers
        self.backoff = BackoffSchedule(arguments.restart_backoff,
                                       arguments.restart_backoff_max)
        self.breaker = CrashLoopBreaker(arguments.breaker_threshold,
                                        arguments.breaker_window,
                                        arguments.breaker_cooldown)
        self.stable_after = arguments.stable_after
        self.heartbeat_interval = arguments.heartbeat_interval
        self.heartbeat_timeout = arguments.heartbeat_timeout

        self.registry = MetricsRegistry()
        self._restarts = self.registry.counter(
            "repro_worker_restarts_total",
            "Worker processes restarted after a crash or hang.")
        self._restarts.inc(0.0)
        self._alive_gauge = self.registry.gauge(
            "repro_workers_alive", "Worker processes currently running.")
        self._target_gauge = self.registry.gauge(
            "repro_workers_target", "Configured worker count (--workers).")
        self._target_gauge.set(float(self.target))
        self._degraded_gauge = self.registry.gauge(
            "repro_fleet_degraded",
            "1 when the crash-loop breaker is tripped, else 0.")
        self._degraded_gauge.set(0.0)

        #: Guards the tables below — the control HTTP server reads them
        #: from handler threads while the select loop mutates them.
        self._lock = threading.Lock()
        self.workers: dict[int, WorkerHandle] = {}
        self.failures: dict[int, int] = {slot: 0 for slot in range(self.target)}
        self.restart_due: dict[int, float] = {}
        self.restarts_by_slot: dict[int, int] = {
            slot: 0 for slot in range(self.target)}
        self.stopping = False
        self.started_at = time.monotonic()

        self.listen_socket: socket.socket | None = None
        self.control_server: ThreadingHTTPServer | None = None
        self._wake_r, self._wake_w = os.pipe()
        os.set_blocking(self._wake_r, False)
        os.set_blocking(self._wake_w, False)
        self._last_status_push: tuple | None = None

    # -- fleet state ---------------------------------------------------------

    def workers_alive(self) -> int:
        return sum(1 for handle in self.workers.values() if handle.alive())

    def workers_ready(self) -> int:
        return sum(1 for handle in self.workers.values()
                   if handle.alive() and handle.ready)

    def degraded(self) -> bool:
        return self.breaker.tripped

    def status_snapshot(self) -> dict:
        with self._lock:
            workers = []
            now = time.monotonic()
            for slot in sorted(self.workers):
                handle = self.workers[slot]
                workers.append({
                    "slot": slot,
                    "pid": handle.pid,
                    "alive": handle.alive(),
                    "ready": handle.ready,
                    "direct_port": handle.direct_port,
                    "in_flight": handle.in_flight,
                    "uptime_s": round(now - handle.started_at, 3),
                    "heartbeat_age_s": round(now - handle.last_heartbeat, 3),
                    "failures": self.failures.get(slot, 0),
                    "restarts": self.restarts_by_slot.get(slot, 0),
                })
            return {
                "role": "supervisor",
                "pid": os.getpid(),
                "workers_target": self.target,
                "workers_alive": self.workers_alive(),
                "workers_ready": self.workers_ready(),
                "degraded": self.degraded(),
                "stopping": self.stopping,
                "breaker": self.breaker.snapshot(),
                "restarts_total": sum(self.restarts_by_slot.values()),
                "uptime_s": round(now - self.started_at, 3),
                "workers": workers,
            }

    def ready_response(self) -> tuple[int, dict]:
        snapshot = self.status_snapshot()
        ok = (snapshot["workers_ready"] >= 1 and not snapshot["stopping"])
        body = {"ready": ok,
                "workers_alive": snapshot["workers_alive"],
                "workers_ready": snapshot["workers_ready"],
                "workers_target": snapshot["workers_target"],
                "degraded": snapshot["degraded"],
                "stopping": snapshot["stopping"]}
        return (200 if ok else 503), body

    def metrics_exposition(self) -> str:
        """Own series plus every worker's ``/metrics``, relabeled."""
        with self._lock:
            targets = [(handle.slot, handle.direct_port)
                       for handle in self.workers.values()
                       if handle.alive() and handle.direct_port]
        per_worker: dict[str, str] = {}
        for slot, port in targets:
            try:
                with urllib.request.urlopen(
                        f"http://127.0.0.1:{port}/metrics",
                        timeout=2.0) as response:
                    per_worker[str(slot)] = response.read().decode("utf-8")
            except OSError:
                continue  # mid-restart; the next scrape catches it
        own = self.registry.render()
        merged = merge_expositions(per_worker, label="worker")
        return own + merged

    # -- process management --------------------------------------------------

    def _spawn(self, slot: int, restart: bool = False) -> None:
        parent, child = socket.socketpair()
        listen_fd = self.listen_socket.fileno()
        command = [sys.executable, "-m", "repro.service.worker",
                   "--listen-fd", str(listen_fd),
                   "--control-fd", str(child.fileno()),
                   "--slot", str(slot),
                   "--heartbeat-interval", str(self.heartbeat_interval)]
        command += _forwarded_flags(self.arguments)
        environment = dict(os.environ)
        package_root = os.path.dirname(
            os.path.dirname(os.path.abspath(repro.__file__)))
        environment["PYTHONPATH"] = package_root + (
            os.pathsep + environment["PYTHONPATH"]
            if environment.get("PYTHONPATH") else "")
        process = subprocess.Popen(
            command, pass_fds=(listen_fd, child.fileno()), env=environment)
        child.close()
        parent.setblocking(False)
        with self._lock:
            self.workers[slot] = WorkerHandle(
                slot, process, parent, time.monotonic())
            if restart:
                self.restarts_by_slot[slot] = (
                    self.restarts_by_slot.get(slot, 0) + 1)
        if restart:
            self._restarts.inc()
        print(f"repro-serve: {'restarted' if restart else 'started'} "
              f"worker slot {slot} (pid {process.pid})", file=sys.stderr)

    def _worker_exited(self, handle: WorkerHandle) -> None:
        returncode = handle.process.returncode
        try:
            handle.control.close()
        except OSError:
            pass
        if self.stopping:
            with self._lock:
                self.workers.pop(handle.slot, None)
            return
        cause = "hang" if handle.hung else "crash"
        if returncode is not None and returncode < 0:
            detail = _SIGNAL_NAMES.get(-returncode, f"signal {-returncode}")
        else:
            detail = f"exit {returncode}"
        with self._lock:
            self.workers.pop(handle.slot, None)
            self.failures[handle.slot] = self.failures.get(handle.slot, 0) + 1
            failures = self.failures[handle.slot]
        just_tripped = self.breaker.record_crash()
        delay = self.backoff.delay(failures)
        with self._lock:
            self.restart_due[handle.slot] = time.monotonic() + delay
        print(f"repro-serve: worker slot {handle.slot} (pid {handle.pid}) "
              f"{cause} ({detail}); restart in {delay:.2f}s "
              f"(failure streak {failures})", file=sys.stderr)
        if just_tripped:
            print(f"repro-serve: crash-loop breaker TRIPPED "
                  f"({self.breaker.threshold} crashes inside "
                  f"{self.breaker.window:.0f}s); restarts paused for "
                  f"{self.breaker.cooldown:.0f}s — fleet degraded",
                  file=sys.stderr)

    def _reap(self) -> None:
        for handle in list(self.workers.values()):
            if handle.process.poll() is not None:
                self._worker_exited(handle)

    def _check_restarts(self) -> None:
        now = time.monotonic()
        degraded_before = self.degraded()
        for slot, due in sorted(self.restart_due.items()):
            if now < due:
                continue
            if not self.breaker.allow_restart():
                continue  # breaker open; retry next loop tick
            with self._lock:
                self.restart_due.pop(slot, None)
            self._spawn(slot, restart=True)
        if degraded_before and not self.degraded():
            print("repro-serve: crash-loop breaker reset; fleet nominal",
                  file=sys.stderr)

    def _check_hangs(self) -> None:
        now = time.monotonic()
        for handle in list(self.workers.values()):
            if not handle.alive() or handle.hung:
                continue
            if now - handle.last_heartbeat > self.heartbeat_timeout:
                handle.hung = True
                print(f"repro-serve: worker slot {handle.slot} "
                      f"(pid {handle.pid}) missed heartbeats for "
                      f"{now - handle.last_heartbeat:.1f}s; killing",
                      file=sys.stderr)
                try:
                    handle.process.kill()
                except OSError:
                    pass

    def _note_stability(self) -> None:
        now = time.monotonic()
        for handle in self.workers.values():
            if handle.stable or not handle.alive():
                continue
            if now - handle.started_at >= self.stable_after:
                handle.stable = True
                with self._lock:
                    self.failures[handle.slot] = 0
                self.breaker.note_stable()

    def _read_heartbeats(self, readable: list) -> None:
        for handle in list(self.workers.values()):
            if handle.control not in readable:
                continue
            try:
                chunk = handle.control.recv(65536)
            except OSError as error:
                if error.errno in (errno.EAGAIN, errno.EWOULDBLOCK):
                    continue
                chunk = b""
            if not chunk:
                continue  # EOF: exit shows up via poll() shortly
            handle.buffer += chunk
            while b"\n" in handle.buffer:
                line, _, handle.buffer = handle.buffer.partition(b"\n")
                if not line.strip():
                    continue
                try:
                    message = json.loads(line)
                except ValueError:
                    continue
                if message.get("type") != "heartbeat":
                    continue
                handle.last_heartbeat = time.monotonic()
                handle.ready = bool(message.get("ready"))
                handle.direct_port = message.get("direct_port")
                handle.in_flight = int(message.get("in_flight") or 0)

    def _push_status(self) -> None:
        alive = self.workers_alive()
        self._alive_gauge.set(float(alive))
        self._degraded_gauge.set(1.0 if self.degraded() else 0.0)
        status = (alive, self.target, self.degraded())
        if status == self._last_status_push:
            return
        self._last_status_push = status
        line = json.dumps({"type": "status",
                           "workers_alive": alive,
                           "workers_target": self.target,
                           "degraded": self.degraded()}).encode("utf-8") + b"\n"
        for handle in list(self.workers.values()):
            try:
                handle.control.sendall(line)
            except OSError:
                continue

    # -- main loop -----------------------------------------------------------

    def _wake(self, *_ignored) -> None:
        try:
            os.write(self._wake_w, b"x")
        except OSError:
            pass

    def _request_stop(self, signum, frame) -> None:
        self.stopping = True
        self._wake()

    def _bind(self) -> None:
        listener = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
        listener.setsockopt(socket.SOL_SOCKET, socket.SO_REUSEADDR, 1)
        listener.bind((self.arguments.host, self.arguments.port))
        listener.listen(128)
        listener.set_inheritable(True)
        self.listen_socket = listener

    def _start_control_server(self) -> None:
        control_port = self.arguments.control_port
        if control_port is None:
            control_port = (0 if self.arguments.port == 0
                            else self.arguments.port + 1)
        supervisor = self

        class _ControlHandler(BaseHTTPRequestHandler):
            def _respond(self, status: int, body, content_type="application/json"):
                data = (body if isinstance(body, bytes)
                        else json.dumps(body, indent=2).encode("utf-8"))
                self.send_response(status)
                self.send_header("Content-Type", content_type)
                self.send_header("Content-Length", str(len(data)))
                self.end_headers()
                self.wfile.write(data)

            def do_GET(self):
                snapshot = supervisor.status_snapshot()
                if self.path == "/health":
                    self._respond(200, {
                        "ok": True, "role": "supervisor",
                        "workers_alive": snapshot["workers_alive"],
                        "workers_target": snapshot["workers_target"],
                        "degraded": snapshot["degraded"]})
                elif self.path == "/ready":
                    status, body = supervisor.ready_response()
                    self._respond(status, body)
                elif self.path == "/stats":
                    self._respond(200, snapshot)
                elif self.path == "/metrics":
                    text = supervisor.metrics_exposition()
                    self._respond(200, text.encode("utf-8"),
                                  content_type="text/plain; version=0.0.4; "
                                               "charset=utf-8")
                else:
                    self._respond(404, {"error": "not found"})

            def log_message(self, *args):
                pass

        server = ThreadingHTTPServer(
            (self.arguments.host, control_port), _ControlHandler)
        server.daemon_threads = True
        self.control_server = server
        threading.Thread(target=server.serve_forever,
                         name="supervisor-control", daemon=True).start()

    def run(self) -> int:
        self._bind()
        self._start_control_server()
        signal.signal(signal.SIGCHLD, self._wake)
        signal.signal(signal.SIGTERM, self._request_stop)
        signal.signal(signal.SIGINT, self._request_stop)

        for slot in range(self.target):
            self._spawn(slot)

        host, port = self.listen_socket.getsockname()[:2]
        control_host, control_port = (
            self.control_server.server_address[:2])
        print(f"repro-serve: listening on http://{host}:{port} "
              f"(workers: {self.target}, "
              f"control: http://{control_host}:{control_port}, "
              f"journal: {self.arguments.journal})", file=sys.stderr)

        try:
            while not self.stopping:
                self._reap()
                self._check_hangs()
                self._check_restarts()
                self._note_stability()
                self._push_status()
                watched = [self._wake_r] + [
                    handle.control for handle in self.workers.values()
                    if handle.alive()]
                try:
                    readable, _, _ = select.select(
                        watched, [], [], self.heartbeat_interval)
                except OSError:
                    continue  # a control fd closed under us; rebuild next tick
                if self._wake_r in readable:
                    try:
                        while os.read(self._wake_r, 4096):
                            pass
                    except BlockingIOError:
                        pass
                self._read_heartbeats(readable)
        finally:
            self._shutdown()
        return 0

    def _shutdown(self) -> None:
        self.stopping = True
        print("repro-serve: supervisor stopping; terminating workers",
              file=sys.stderr)
        for handle in list(self.workers.values()):
            if handle.alive():
                try:
                    handle.process.terminate()
                except OSError:
                    pass
        deadline = time.monotonic() + self.arguments.drain_timeout + 2.0
        for handle in list(self.workers.values()):
            remaining = deadline - time.monotonic()
            try:
                handle.process.wait(timeout=max(0.1, remaining))
            except subprocess.TimeoutExpired:
                handle.process.kill()
                handle.process.wait(timeout=5.0)
            try:
                handle.control.close()
            except OSError:
                pass
        if self.control_server is not None:
            self.control_server.shutdown()
            self.control_server.server_close()
        if self.listen_socket is not None:
            self.listen_socket.close()
        restarts = sum(self.restarts_by_slot.values())
        print(f"repro-serve: supervisor stopped "
              f"({self.target} workers, {restarts} restarts, "
              f"degraded: {self.degraded()})", file=sys.stderr)


def run_supervisor(arguments: argparse.Namespace) -> int:
    """Entry point used by ``repro-serve --workers N``."""
    return Supervisor(arguments).run()


__all__ = ["BackoffSchedule", "CrashLoopBreaker", "Supervisor",
           "WorkerHandle", "run_supervisor"]
