"""Benchmark library: the paper's four workloads and the Table 2 harness.

* :mod:`repro.bench.queries`  — the workload definitions: document builders
  and query texts (IFP form and source-level ``fix``/``delta`` UDF form).
* :mod:`repro.bench.harness`  — runs a workload under a chosen engine and
  algorithm, measuring wall-clock time, nodes fed back and recursion depth.
* :mod:`repro.bench.table2`   — regenerates the paper's Table 2 (also
  installed as the ``repro-table2`` console script).
* :mod:`repro.bench.reporting` — plain-text/CSV rendering of results.
"""

from repro.bench.queries import WORKLOADS, Workload, get_workload
from repro.bench.harness import BenchmarkHarness, RunResult

__all__ = ["WORKLOADS", "Workload", "get_workload", "BenchmarkHarness", "RunResult"]
