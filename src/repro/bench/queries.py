"""The four benchmark workloads of Section 5 / Table 2.

Each workload knows how to build its document(s) at the paper's size labels
and how to phrase its query in two equivalent formulations:

* the **IFP form** using ``with $x seeded by … recurse …`` (evaluated by the
  engine's native fixed point operator — the MonetDB/XQuery µ/µ∆ role), and
* the **UDF form** using the recursive user-defined functions ``fix``/
  ``delta`` of Figures 2 and 4 (the source-level rewriting any XQuery
  processor can apply — the Saxon role).

Two small corrections relative to the paper's listings are applied and
documented in EXPERIMENTS.md: the termination test of ``fix`` uses
``empty($res except $x)`` (the printed operand order never terminates on
acyclic data), and the initial call of ``delta`` passes ``rec($seed)`` for
both parameters (the printed ``delta(rec($seed), ())`` would drop the first
derivation from the result).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Callable

from repro.xdm.node import DocumentNode
from repro.datagen.curriculum import CurriculumConfig, generate_curriculum
from repro.datagen.hospital import HospitalConfig, generate_hospital
from repro.datagen.plays import PlayConfig, generate_play
from repro.datagen.xmark import XMarkConfig, generate_auction_site


@dataclass(frozen=True)
class WorkloadSize:
    """One row of Table 2: a size label plus its document builder."""

    label: str
    build_document: Callable[[], DocumentNode]
    #: Default number of seeds the harness iterates (None = all).  The paper
    #: ran full documents on compiled engines; the pure-Python default keeps
    #: run times reasonable while preserving the Naive/Delta ratios.
    default_seed_limit: int | None = None
    #: The Table 2 row this size reproduces (None for extra sizes).
    paper_row: str | None = None


@dataclass(frozen=True)
class Workload:
    """A benchmark workload: documents plus query formulations."""

    name: str
    description: str
    document_uri: str
    sizes: dict[str, WorkloadSize]
    prolog: str
    recursion_body: str
    seed_expression: str
    seeds_expression: str
    result_template: str
    recursion_variable: str = "x"

    # -- query texts -----------------------------------------------------------

    def closure_expression(self, algorithm: str) -> str:
        """The per-seed IFP expression."""
        using = "" if algorithm == "auto" else f" using {algorithm}"
        return (f"(with ${self.recursion_variable} seeded by {self.seed_expression} "
                f"recurse {self.recursion_body}{using})")

    def ifp_query(self, algorithm: str = "auto", seed_limit: int | None = None) -> str:
        """The workload query in IFP form."""
        return "\n".join(
            part for part in (
                self.prolog.strip(),
                self._main(self.closure_expression(algorithm), seed_limit),
            ) if part
        )

    def udf_query(self, variant: str = "fix", seed_limit: int | None = None) -> str:
        """The workload query in source-level ``fix``/``delta`` UDF form."""
        if variant not in ("fix", "delta"):
            raise ValueError(f"unknown UDF variant {variant!r}")
        call = ("fix (rec ($s))" if variant == "fix"
                else "delta (rec ($s), rec ($s))")
        declarations = f"""
declare function rec ($x) as node()*
{{ {self.recursion_body}
}};
declare function fix ($x) as node()*
{{ let $res := rec ($x)
  return if (empty ($res except $x))
         then $x
         else fix ($res union $x)
}};
declare function delta ($x, $res) as node()*
{{ let $delta := rec ($x) except $res
  return if (empty ($delta))
         then $res
         else delta ($delta, $delta union $res)
}};
"""
        return "\n".join(
            part for part in (
                self.prolog.strip(),
                declarations.strip(),
                self._main(f"({call})", seed_limit),
            ) if part
        )

    def _main(self, closure: str, seed_limit: int | None) -> str:
        seeds = self.seeds_expression
        if seed_limit is not None:
            seeds = f"subsequence({seeds}, 1, {seed_limit})"
        body = self.result_template.replace("{closure}", closure)
        return f"for $s in {seeds}\nreturn {body}"

    # -- sizes --------------------------------------------------------------------

    def size(self, label: str) -> WorkloadSize:
        try:
            return self.sizes[label]
        except KeyError:
            raise KeyError(
                f"workload '{self.name}' has no size '{label}' "
                f"(available: {', '.join(sorted(self.sizes))})"
            ) from None


# ---------------------------------------------------------------------------
# workload definitions
# ---------------------------------------------------------------------------


BIDDER_NETWORK = Workload(
    name="bidder-network",
    description="XMark bidder network (Figure 10): recursively connect sellers and bidders",
    document_uri="auction.xml",
    sizes={
        "tiny": WorkloadSize("tiny", lambda: generate_auction_site(XMarkConfig.tiny()), None),
        "small": WorkloadSize("small", lambda: generate_auction_site(XMarkConfig.small()),
                              40, "Bidder network (small)"),
        "medium": WorkloadSize("medium", lambda: generate_auction_site(XMarkConfig.medium()),
                               30, "Bidder network (medium)"),
        "large": WorkloadSize("large", lambda: generate_auction_site(XMarkConfig.large()),
                              20, "Bidder network (large)"),
        "huge": WorkloadSize("huge", lambda: generate_auction_site(XMarkConfig.huge()),
                             12, "Bidder network (huge)"),
    },
    prolog="""
declare variable $doc := doc("auction.xml");
declare function bidder ($in as node()*) as node()*
{ for $id in $in/@id
  let $b := $doc//open_auction[seller/@person = $id]/bidder/personref
  return $doc//people/person[@id = $b/@person]
};
""",
    recursion_body="bidder ($x)",
    seed_expression="$s",
    seeds_expression="$doc//people/person",
    result_template="<person>{ $s/@id }{ data (({closure})/@id) }</person>",
)


DIALOGS = Workload(
    name="dialogs",
    description="Romeo and Juliet: longest uninterrupted alternating dialog "
                "(horizontal recursion along following-sibling)",
    document_uri="play.xml",
    sizes={
        "tiny": WorkloadSize("tiny", lambda: generate_play(PlayConfig.tiny()), None),
        "default": WorkloadSize("default", lambda: generate_play(PlayConfig.romeo_and_juliet()),
                                400, "Romeo and Juliet"),
    },
    prolog="""
declare variable $doc := doc("play.xml");
""",
    recursion_body=(
        "$x/following-sibling::SPEECH[1]"
        "[not(SPEAKER = preceding-sibling::SPEECH[1]/SPEAKER)]"
    ),
    seed_expression="$s",
    seeds_expression="$doc//SPEECH",
    result_template="<dialog>{ count({closure}) + 1 }</dialog>",
)


CURRICULUM = Workload(
    name="curriculum",
    description="Curriculum consistency check: courses among their own prerequisites "
                "(transitive closure over fn:id links)",
    document_uri="curriculum.xml",
    sizes={
        "tiny": WorkloadSize("tiny", lambda: generate_curriculum(CurriculumConfig.tiny()), None),
        "medium": WorkloadSize("medium", lambda: generate_curriculum(CurriculumConfig.medium()),
                               100, "Curriculum (medium)"),
        "large": WorkloadSize("large", lambda: generate_curriculum(CurriculumConfig.large()),
                              80, "Curriculum (large)"),
    },
    prolog="""
declare variable $doc := doc("curriculum.xml");
""",
    recursion_body="$x/id (./prerequisites/pre_code)",
    seed_expression="$s",
    # Seeds are taken from the back of the catalogue (the advanced courses)
    # because their prerequisite closures are the deep ones; the consistency
    # check itself is order-insensitive.
    seeds_expression="reverse($doc/curriculum/course)",
    result_template="if (exists($s intersect {closure})) then $s else ()",
)


HOSPITAL = Workload(
    name="hospital",
    description="Hospital hereditary disease: count diagnosed ancestors per patient "
                "(vertical recursion into parent subtrees, depth <= 5)",
    document_uri="hospital.xml",
    sizes={
        "tiny": WorkloadSize("tiny", lambda: generate_hospital(HospitalConfig.tiny()), None),
        "medium": WorkloadSize("medium", lambda: generate_hospital(HospitalConfig.medium()),
                               400, "Hospital (medium)"),
        "paper": WorkloadSize("paper", lambda: generate_hospital(HospitalConfig.paper()),
                              400, "Hospital (medium)"),
    },
    prolog="""
declare variable $doc := doc("hospital.xml");
""",
    recursion_body="$x/parent",
    seed_expression="$s",
    seeds_expression="$doc/hospital/patient",
    result_template=(
        "<patient>{ $s/@id }"
        "{ count(({closure})[@diagnosed = \"yes\"]) }</patient>"
    ),
)


#: All workloads by name.
WORKLOADS: dict[str, Workload] = {
    workload.name: workload
    for workload in (BIDDER_NETWORK, DIALOGS, CURRICULUM, HOSPITAL)
}


def get_workload(name: str) -> Workload:
    """Look up a workload by name."""
    try:
        return WORKLOADS[name]
    except KeyError:
        raise KeyError(
            f"unknown workload '{name}' (available: {', '.join(sorted(WORKLOADS))})"
        ) from None
