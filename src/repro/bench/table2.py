"""Regenerate the paper's Table 2 (``python -m repro.bench.table2``).

Runs the four workloads under the native IFP engine (µ/µ∆ role) and the
source-level ``fix``/``delta`` user-defined functions (Saxon role), under
both the Naive and the Delta algorithm, and prints evaluation times, the
total number of nodes fed back into the recursion body and the recursion
depth — the quantities Table 2 reports.

Presets
-------
``--preset quick``
    Tiny/small documents and modest seed limits; finishes in well under a
    minute and is what CI and the quickstart run.
``--preset paper``
    The size labels corresponding to the paper's rows (small…huge bidder
    networks, the full play, medium/large curricula, the hospital corpus)
    with the default seed limits.  Expect several minutes on a laptop: the
    substrate is a pure-Python interpreter, not a compiled engine, so
    absolute times are not comparable to the paper's — the Naive/Delta
    ratios and node counts are.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Iterable

from pathlib import Path

from repro.bench.harness import BenchmarkHarness, RunResult
from repro.bench.reporting import (
    render_speedups,
    render_table2,
    results_to_csv,
    results_to_json,
)

#: (workload, size) combinations per preset.
PRESETS: dict[str, list[tuple[str, str]]] = {
    "quick": [
        ("bidder-network", "tiny"),
        ("bidder-network", "small"),
        ("dialogs", "tiny"),
        ("curriculum", "tiny"),
        ("hospital", "tiny"),
    ],
    "default": [
        ("bidder-network", "small"),
        ("bidder-network", "medium"),
        ("dialogs", "default"),
        ("curriculum", "medium"),
        ("hospital", "medium"),
    ],
    "paper": [
        ("bidder-network", "small"),
        ("bidder-network", "medium"),
        ("bidder-network", "large"),
        ("bidder-network", "huge"),
        ("dialogs", "default"),
        ("curriculum", "medium"),
        ("curriculum", "large"),
        ("hospital", "medium"),
    ],
}


def run_preset(preset: str, engines: tuple[str, ...] = ("ifp", "udf"),
               seed_limit: int | None = None,
               workloads: Iterable[str] | None = None,
               repeats: int = 1, warmup: int = 0) -> list[RunResult]:
    """Run all rows of a preset and return the raw results."""
    harness = BenchmarkHarness()
    selected = PRESETS[preset]
    if workloads:
        wanted = set(workloads)
        selected = [row for row in selected if row[0] in wanted]
    results: list[RunResult] = []
    for workload, size in selected:
        results.extend(
            harness.compare(workload, size, engines=engines, seed_limit=seed_limit,
                            repeats=repeats, warmup=warmup)
        )
    return results


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro-table2",
        description="Regenerate Table 2 of 'An Inflationary Fixed Point Operator in XQuery'",
    )
    parser.add_argument("--preset", choices=sorted(PRESETS), default="quick",
                        help="which document sizes to run (default: quick)")
    parser.add_argument("--workloads", nargs="*", default=None,
                        help="restrict to the given workloads "
                             "(bidder-network, dialogs, curriculum, hospital)")
    parser.add_argument("--engines", nargs="*", default=["ifp", "udf"],
                        choices=["ifp", "udf", "algebra", "sql"],
                        help="engines to compare (default: ifp udf)")
    parser.add_argument("--seed-limit", type=int, default=None,
                        help="override the per-size default number of seeds")
    parser.add_argument("--repeat", type=int, default=1, metavar="N", dest="repeats",
                        help="measure each combination N times and report the best run")
    parser.add_argument("--warmup", type=int, default=0, metavar="N",
                        help="unmeasured warmup runs before measuring (amortises "
                             "lazy index builds and module caches)")
    parser.add_argument("--csv", action="store_true", help="also print raw results as CSV")
    parser.add_argument("--report", action="store_true",
                        help="also print Naive/Delta speed-up factors")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the machine-readable BENCH report to PATH")
    arguments = parser.parse_args(argv)

    results = run_preset(
        arguments.preset,
        engines=tuple(arguments.engines),
        seed_limit=arguments.seed_limit,
        workloads=arguments.workloads,
        repeats=arguments.repeats,
        warmup=arguments.warmup,
    )
    print(render_table2(results))
    if arguments.report:
        print()
        print(render_speedups(results))
    if arguments.csv:
        print()
        print(results_to_csv(results), end="")
    if arguments.json:
        import json

        path = Path(arguments.json)
        path.parent.mkdir(parents=True, exist_ok=True)
        payload = results_to_json(results, f"table2_{arguments.preset}",
                                  extra={"engines": list(arguments.engines)})
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")
        print(f"\nwrote {path}", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())
