"""Measurement harness for the Table 2 experiments.

A :class:`BenchmarkHarness` builds (and caches) the workload documents, runs
a workload query under a chosen engine/algorithm combination, and reports
wall-clock time plus the iteration statistics the paper's Table 2 lists
(total number of nodes fed back into the recursion body, recursion depth).

Engines
-------
``ifp``
    The native fixed point operator of the engine (``with … recurse``
    evaluated by :mod:`repro.fixpoint`) — the MonetDB/XQuery µ/µ∆ role.
``udf``
    The source-level recursive user-defined functions ``fix``/``delta`` of
    Figures 2 and 4 — the Saxon role.  Iteration statistics are not
    observable from outside the functions, so only times are reported.
``algebra``
    The Relational XQuery backend: the query's fixpoint is compiled to µ/µ∆
    and evaluated by the interpreted algebra engine.  Practical for the
    smaller documents; included to mirror the paper's algebraic account.
``sql``
    The SQLite backend: the workload document is shredded into pre/post
    tables once (cached per workload size, mirroring how the paper's RDBMS
    substrate loads documents ahead of querying) and each fixpoint runs as
    a recursive CTE or through the temp-table driver loop
    (:mod:`repro.sqlbackend`).  CTE runs report no per-iteration counts —
    the iteration happens inside SQLite.
"""

from __future__ import annotations

import hashlib
import time
import tracemalloc
from dataclasses import dataclass, field

from repro.errors import ReproError
from repro.fixpoint.stats import StatisticsCollector
from repro.observability import TraceContext, maybe_span, phase_summary
from repro.xdm.items import is_node, string_value_of_item
from repro.xdm.node import DocumentNode
from repro.xquery.context import DocumentResolver, DynamicContext, EvaluationOptions, StaticContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.optimizer import optimize_module
from repro.xquery.parser import parse_query
from repro.bench.queries import Workload, get_workload


@dataclass
class RunResult:
    """Outcome of one benchmark run."""

    workload: str
    size: str
    engine: str
    algorithm: str
    seconds: float
    item_count: int
    result_digest: str
    nodes_fed_back: int | None = None
    recursion_depth: int | None = None
    ifp_evaluations: int | None = None
    seed_limit: int | None = None
    paper_row: str | None = None
    #: Table storage backend (algebra engine only).
    backend: str | None = None
    #: How many measured repetitions ``seconds`` is the best of, and how
    #: many unmeasured warmup runs preceded them.
    repeats: int = 1
    warmup: int = 0
    #: Peak traced allocation (KiB) of one tracemalloc-instrumented run
    #: (measured separately from the timed runs — tracing skews time).
    peak_mem_kb: float | None = None
    #: Per-phase wall time of one span-traced run (name → {seconds,
    #: count}; see :func:`repro.observability.tracing.phase_summary`) —
    #: measured separately from the timed runs, like ``peak_mem_kb``.
    phases: dict | None = None

    def as_dict(self) -> dict:
        return {
            "workload": self.workload,
            "size": self.size,
            "engine": self.engine,
            "algorithm": self.algorithm,
            "backend": self.backend,
            "seconds": round(self.seconds, 4),
            "items": self.item_count,
            "nodes_fed_back": self.nodes_fed_back,
            "recursion_depth": self.recursion_depth,
            "ifp_evaluations": self.ifp_evaluations,
            "seed_limit": self.seed_limit,
            "paper_row": self.paper_row,
            "repeats": self.repeats,
            "warmup": self.warmup,
            "peak_mem_kb": self.peak_mem_kb,
            "phases": self.phases,
        }


@dataclass
class _PreparedWorkload:
    workload: Workload
    size_label: str
    document: DocumentNode
    resolver: DocumentResolver
    modules: dict = field(default_factory=dict)
    #: Lazily created SQLite store with the document shredded (sql engine).
    sql_store: object = None


class BenchmarkHarness:
    """Builds workload documents once and runs measured query evaluations."""

    def __init__(self, optimize_queries: bool = True):
        self.optimize_queries = optimize_queries
        self._prepared: dict[tuple[str, str], _PreparedWorkload] = {}

    # -- preparation ---------------------------------------------------------

    def prepare(self, workload_name: str, size_label: str) -> _PreparedWorkload:
        """Build (or fetch the cached) document for a workload size."""
        key = (workload_name, size_label)
        if key not in self._prepared:
            workload = get_workload(workload_name)
            size = workload.size(size_label)
            document = size.build_document()
            resolver = DocumentResolver()
            resolver.register(workload.document_uri, document)
            self._prepared[key] = _PreparedWorkload(workload, size_label, document, resolver)
        return self._prepared[key]

    # -- running -------------------------------------------------------------------

    def run(self, workload_name: str, size_label: str, engine: str = "ifp",
            algorithm: str = "delta", seed_limit: int | None = None,
            backend: str | None = None, repeats: int = 1,
            warmup: int = 0, measure_memory: bool = True,
            measure_phases: bool = True) -> RunResult:
        """Run one (workload, size, engine, algorithm) combination.

        ``backend`` selects the algebra engine's table storage (``"row"`` or
        ``"columnar"``; see :mod:`repro.algebra.storage`) and is ignored by
        the other engines.  ``warmup`` unmeasured runs precede ``repeats``
        measured ones; the reported time is the best (minimum) measured run,
        so one-time costs — lazy index builds, module caches — are charged
        to warmup, matching the steady-state serving pattern.  Unless
        ``measure_memory`` is off, one extra run executes under tracemalloc
        *after* the timed ones (tracing roughly doubles allocation costs, so
        it must never share a run with a timing) and reports the peak traced
        allocation as ``peak_mem_kb``.  Likewise ``measure_phases`` runs one
        extra span-traced evaluation and attaches its
        :func:`~repro.observability.tracing.phase_summary` as ``phases`` —
        again separate from the timed runs, so tracing never skews times.
        """
        prepared = self.prepare(workload_name, size_label)
        workload = prepared.workload
        size = workload.size(size_label)
        limit = seed_limit if seed_limit is not None else size.default_seed_limit
        if repeats < 1:
            raise ReproError("repeats must be at least 1")

        def once(trace: TraceContext | None = None) -> RunResult:
            if engine == "ifp":
                return self._run_ifp(prepared, algorithm, limit, size.paper_row,
                                     trace=trace)
            if engine == "udf":
                return self._run_udf(prepared, algorithm, limit, size.paper_row,
                                     trace=trace)
            if engine == "algebra":
                return self._run_algebra(prepared, algorithm, limit, size.paper_row,
                                         backend=backend, trace=trace)
            if engine == "sql":
                return self._run_sql(prepared, algorithm, limit, size.paper_row,
                                     trace=trace)
            raise ReproError(f"unknown engine '{engine}' (expected ifp, udf, algebra or sql)")

        for _ in range(warmup):
            once()
        best = min((once() for _ in range(repeats)), key=lambda r: r.seconds)
        best.repeats = repeats
        best.warmup = warmup
        if measure_memory:
            best.peak_mem_kb = _measure_peak_memory(once)
        if measure_phases:
            trace = TraceContext("bench", engine=engine, algorithm=algorithm)
            with trace.activate():
                once(trace=trace)
            best.phases = phase_summary(trace.finish())
        return best

    def compare(self, workload_name: str, size_label: str,
                engines: tuple[str, ...] = ("ifp", "udf"),
                algorithms: tuple[str, ...] = ("naive", "delta"),
                seed_limit: int | None = None,
                backend: str | None = None, repeats: int = 1,
                warmup: int = 0) -> list[RunResult]:
        """Run the full Naive-vs-Delta comparison for one workload size."""
        return [
            self.run(workload_name, size_label, engine=engine, algorithm=algorithm,
                     seed_limit=seed_limit, backend=backend, repeats=repeats,
                     warmup=warmup)
            for engine in engines
            for algorithm in algorithms
        ]

    # -- engines ------------------------------------------------------------------------

    def _run_ifp(self, prepared: _PreparedWorkload, algorithm: str,
                 limit: int | None, paper_row: str | None,
                 trace: TraceContext | None = None) -> RunResult:
        query = prepared.workload.ifp_query(algorithm=algorithm, seed_limit=limit)
        module = self._module(prepared, ("ifp", algorithm, limit), query)
        statistics = StatisticsCollector()
        context = DynamicContext(
            static=StaticContext(options=EvaluationOptions(collect_statistics=True,
                                                           trace=trace)),
            documents=prepared.resolver,
            statistics=statistics,
        )
        evaluator = Evaluator()
        started = time.perf_counter()
        with maybe_span(trace, "execute"):
            result = evaluator.evaluate_module(module, context)
        elapsed = time.perf_counter() - started
        return RunResult(
            workload=prepared.workload.name,
            size=prepared.size_label,
            engine="ifp",
            algorithm=algorithm,
            seconds=elapsed,
            item_count=len(result),
            result_digest=result_digest(result),
            nodes_fed_back=statistics.total_nodes_fed_back,
            recursion_depth=statistics.max_recursion_depth,
            ifp_evaluations=statistics.ifp_evaluations,
            seed_limit=limit,
            paper_row=paper_row,
        )

    def _run_udf(self, prepared: _PreparedWorkload, algorithm: str,
                 limit: int | None, paper_row: str | None,
                 trace: TraceContext | None = None) -> RunResult:
        variant = "delta" if algorithm == "delta" else "fix"
        query = prepared.workload.udf_query(variant=variant, seed_limit=limit)
        module = self._module(prepared, ("udf", variant, limit), query)
        context = DynamicContext(
            static=StaticContext(options=EvaluationOptions(trace=trace)),
            documents=prepared.resolver)
        evaluator = Evaluator()
        started = time.perf_counter()
        with maybe_span(trace, "execute"):
            result = evaluator.evaluate_module(module, context)
        elapsed = time.perf_counter() - started
        return RunResult(
            workload=prepared.workload.name,
            size=prepared.size_label,
            engine="udf",
            algorithm=algorithm,
            seconds=elapsed,
            item_count=len(result),
            result_digest=result_digest(result),
            seed_limit=limit,
            paper_row=paper_row,
        )

    def _run_algebra(self, prepared: _PreparedWorkload, algorithm: str,
                     limit: int | None, paper_row: str | None,
                     backend: str | None = None,
                     trace: TraceContext | None = None) -> RunResult:
        from repro.algebra.compiler import AlgebraCompiler
        from repro.algebra.evaluator import AlgebraEvaluator
        from repro.xquery.parser import parse_expression

        workload = prepared.workload
        # The algebra backend evaluates the fixpoint per seed (µ/µ∆ at the
        # top level of a plan); seeds are enumerated with the interpreter.
        seeds_query = workload.seeds_expression
        if limit is not None:
            seeds_query = f"subsequence({seeds_query}, 1, {limit})"
        prolog_module = parse_query(workload.ifp_query(algorithm="naive", seed_limit=1))
        functions = prolog_module.function_map()
        evaluator = Evaluator()
        context = DynamicContext(documents=prepared.resolver)
        for function in prolog_module.functions:
            context.static.functions[(function.name, function.arity)] = function
        for declaration in prolog_module.variables:
            if declaration.value is not None:
                context = context.bind(declaration.name, evaluator.evaluate(declaration.value, context))
        seeds = evaluator.evaluate(parse_expression(seeds_query), context)

        variant = "delta" if algorithm == "delta" else "naive"
        compiler = AlgebraCompiler(documents=prepared.resolver, document=prepared.document,
                                   functions=functions, backend=backend)
        algebra_engine = AlgebraEvaluator(backend=backend, trace=trace)
        total_items = 0
        digest_parts: list[str] = []
        started = time.perf_counter()
        execute_span = trace.begin("execute") if trace is not None else None
        for seed in seeds:
            from repro.algebra.operators import DocumentRoot

            base_context = compiler.initial_context(
                variables={"s": _constant_sequence_plan(compiler, [seed])}
            )
            base_context = base_context.bind(
                "doc", DocumentRoot(base_context.loop, prepared.document)
            )
            seed_expr = _seed_with_expression(workload, variant)
            plan = compiler.compile(seed_expr, base_context)
            table = algebra_engine.evaluate_plan(plan)
            total_items += len(table)
            digest_parts.extend(
                sorted(string_value_of_item(item) for item in table.column_values("item"))
            )
        if execute_span is not None:
            trace.end(execute_span)
        elapsed = time.perf_counter() - started
        statistics = algebra_engine.statistics
        return RunResult(
            workload=workload.name,
            size=prepared.size_label,
            engine="algebra",
            algorithm=algorithm,
            seconds=elapsed,
            item_count=total_items,
            result_digest=_digest_strings(digest_parts),
            nodes_fed_back=statistics.total_rows_fed_back,
            recursion_depth=statistics.max_recursion_depth,
            ifp_evaluations=len(statistics.fixpoint_runs),
            seed_limit=limit,
            paper_row=paper_row,
            backend=algebra_engine.backend,
        )

    def _run_sql(self, prepared: _PreparedWorkload, algorithm: str,
                 limit: int | None, paper_row: str | None,
                 trace: TraceContext | None = None) -> RunResult:
        from repro.sqlbackend.executor import SQLEvaluator
        from repro.sqlbackend.shredder import SqlDocumentStore

        query = prepared.workload.ifp_query(algorithm=algorithm, seed_limit=limit)
        module = self._module(prepared, ("sql", algorithm, limit), query)
        if prepared.sql_store is None:
            store = SqlDocumentStore()
            store.shred(prepared.document, uri=prepared.workload.document_uri)
            prepared.sql_store = store
        statistics = StatisticsCollector()
        context = DynamicContext(
            static=StaticContext(options=EvaluationOptions(collect_statistics=True,
                                                           trace=trace)),
            documents=prepared.resolver,
            statistics=statistics,
        )
        evaluator = SQLEvaluator(store=prepared.sql_store)
        started = time.perf_counter()
        with maybe_span(trace, "execute"):
            result = evaluator.evaluate_module(module, context)
        elapsed = time.perf_counter() - started
        return RunResult(
            workload=prepared.workload.name,
            size=prepared.size_label,
            engine="sql",
            algorithm=algorithm,
            seconds=elapsed,
            item_count=len(result),
            result_digest=result_digest(result),
            nodes_fed_back=statistics.total_nodes_fed_back,
            recursion_depth=statistics.max_recursion_depth,
            ifp_evaluations=statistics.ifp_evaluations,
            seed_limit=limit,
            paper_row=paper_row,
        )

    # -- helpers --------------------------------------------------------------------------

    def _module(self, prepared: _PreparedWorkload, key: tuple, query: str):
        if key not in prepared.modules:
            module = parse_query(query)
            if self.optimize_queries:
                module = optimize_module(module)
            prepared.modules[key] = module
        return prepared.modules[key]


def _measure_peak_memory(run) -> float | None:
    """Peak traced allocation of one *run* call, in KiB.

    Skipped (returns ``None``) when tracemalloc is already tracing — e.g.
    when the whole benchmark process runs under ``python -X tracemalloc`` —
    rather than resetting someone else's trace.
    """
    if tracemalloc.is_tracing():
        return None
    tracemalloc.start()
    try:
        run()
        _current, peak = tracemalloc.get_traced_memory()
    finally:
        tracemalloc.stop()
    return round(peak / 1024.0, 1)


def _seed_with_expression(workload: Workload, algorithm: str):
    from repro.xquery.parser import parse_expression

    return parse_expression(workload.closure_expression(algorithm))


def _constant_sequence_plan(compiler, items):
    from repro.algebra.operators import LiteralTable
    from repro.algebra.table import Table

    rows = [(1, position, item) for position, item in enumerate(items, start=1)]
    return LiteralTable(Table(("iter", "pos", "item"), rows))


def result_digest(result: list) -> str:
    """A stable digest of a query result for Naive-vs-Delta equality checks.

    Constructed nodes differ in identity between runs, so the digest hashes
    the sorted string values of the result items instead.
    """
    return _digest_strings(sorted(
        string_value_of_item(item) if is_node(item) else string_value_of_item(item)
        for item in result
    ))


def _digest_strings(parts: list[str]) -> str:
    digest = hashlib.sha256()
    for part in parts:
        digest.update(part.encode())
        digest.update(b"\x00")
    return digest.hexdigest()[:16]
