"""Rendering of benchmark results: text tables, CSV and BENCH_*.json.

Besides the human-oriented Table 2 renderings, this module defines the
machine-readable benchmark report format CI archives as artifacts:
``BENCH_<label>.json`` files produced by :func:`write_bench_json`.  Each
report carries one record per run (workload, size, engine, algorithm,
storage backend, wall-clock seconds, nodes fed back, recursion depth), so a
series of reports across commits forms a performance trajectory.
"""

from __future__ import annotations

import csv
import io
import json
import platform
from pathlib import Path
from collections.abc import Iterable, Sequence

from repro.bench.harness import RunResult

#: Version of the BENCH_*.json schema (bump on incompatible changes).
BENCH_SCHEMA_VERSION = 1


def format_milliseconds(seconds: float | None) -> str:
    if seconds is None:
        return "-"
    milliseconds = seconds * 1000.0
    if milliseconds >= 60_000:
        minutes = int(milliseconds // 60_000)
        rest = (milliseconds - minutes * 60_000) / 1000.0
        return f"{minutes} m {rest:04.1f} s"
    return f"{milliseconds:,.0f} ms"


def format_count(value: int | None) -> str:
    return f"{value:,}" if value is not None else "-"


def results_to_csv(results: Iterable[RunResult]) -> str:
    """Serialize raw results to CSV (one row per run).

    Structured fields that have no flat-column representation (the
    ``phases`` breakdown) stay in the JSON report only
    (``extrasaction="ignore"``).
    """
    buffer = io.StringIO()
    writer = csv.DictWriter(buffer, fieldnames=[
        "workload", "size", "engine", "algorithm", "backend", "seconds", "items",
        "nodes_fed_back", "recursion_depth", "ifp_evaluations", "seed_limit", "paper_row",
        "repeats", "warmup", "peak_mem_kb",
    ], extrasaction="ignore")
    writer.writeheader()
    for result in results:
        writer.writerow(result.as_dict())
    return buffer.getvalue()


def results_to_json(results: Iterable[RunResult], label: str,
                    extra: dict | None = None) -> dict:
    """Build the machine-readable benchmark report (the BENCH_*.json payload)."""
    return {
        "schema": "repro-bench",
        "schema_version": BENCH_SCHEMA_VERSION,
        "label": label,
        "python": platform.python_version(),
        "results": [result.as_dict() for result in results],
        **(extra or {}),
    }


def write_bench_json(results: Iterable[RunResult], label: str,
                     directory: "str | Path" = ".",
                     extra: dict | None = None) -> Path:
    """Write ``BENCH_<label>.json`` into *directory* and return its path."""
    path = Path(directory) / f"BENCH_{label}.json"
    path.parent.mkdir(parents=True, exist_ok=True)
    payload = results_to_json(results, label, extra=extra)
    path.write_text(json.dumps(payload, indent=2, sort_keys=False) + "\n",
                    encoding="utf-8")
    return path


def render_table2(results: Sequence[RunResult]) -> str:
    """Render results in the layout of the paper's Table 2.

    One output row per (workload, size); the columns pair Naive/Delta times
    for the native-IFP engine (MonetDB/XQuery role) and the source-level UDF
    engine (Saxon role), followed by the nodes-fed-back counts and the
    recursion depth observed by the native engine.
    """
    by_row: dict[tuple[str, str], dict[tuple[str, str], RunResult]] = {}
    labels: dict[tuple[str, str], str] = {}
    for result in results:
        key = (result.workload, result.size)
        by_row.setdefault(key, {})[(result.engine, result.algorithm)] = result
        labels[key] = result.paper_row or f"{result.workload} ({result.size})"

    header = (
        f"{'Query':<28} {'IFP Naive':>12} {'IFP Delta':>12} "
        f"{'UDF Naive':>12} {'UDF Delta':>12} "
        f"{'Fed (Naive)':>12} {'Fed (Delta)':>12} {'Depth':>6}"
    )
    separator = "-" * len(header)
    lines = [header, separator]
    for key, cells in by_row.items():
        ifp_naive = cells.get(("ifp", "naive"))
        ifp_delta = cells.get(("ifp", "delta"))
        udf_naive = cells.get(("udf", "naive"))
        udf_delta = cells.get(("udf", "delta"))
        depth = None
        for candidate in (ifp_naive, ifp_delta):
            if candidate is not None and candidate.recursion_depth is not None:
                depth = max(depth or 0, candidate.recursion_depth)
        lines.append(
            f"{labels[key]:<28} "
            f"{format_milliseconds(ifp_naive.seconds if ifp_naive else None):>12} "
            f"{format_milliseconds(ifp_delta.seconds if ifp_delta else None):>12} "
            f"{format_milliseconds(udf_naive.seconds if udf_naive else None):>12} "
            f"{format_milliseconds(udf_delta.seconds if udf_delta else None):>12} "
            f"{format_count(ifp_naive.nodes_fed_back if ifp_naive else None):>12} "
            f"{format_count(ifp_delta.nodes_fed_back if ifp_delta else None):>12} "
            f"{depth if depth is not None else '-':>6}"
        )
    return "\n".join(lines)


def render_speedups(results: Sequence[RunResult]) -> str:
    """Summarize Naive/Delta speed-up factors per engine and workload size."""
    by_row: dict[tuple[str, str, str], dict[str, RunResult]] = {}
    for result in results:
        key = (result.workload, result.size, result.engine)
        by_row.setdefault(key, {})[result.algorithm] = result
    lines = [f"{'Workload':<20} {'Size':<9} {'Engine':<8} {'Naive/Delta time':>17} {'Naive/Delta fed':>16}"]
    lines.append("-" * len(lines[0]))
    for (workload, size, engine), cells in sorted(by_row.items()):
        naive, delta = cells.get("naive"), cells.get("delta")
        if naive is None or delta is None:
            continue
        time_factor = naive.seconds / delta.seconds if delta.seconds else float("inf")
        if naive.nodes_fed_back and delta.nodes_fed_back:
            fed_factor = f"{naive.nodes_fed_back / delta.nodes_fed_back:6.2f}x"
        else:
            fed_factor = "-"
        lines.append(
            f"{workload:<20} {size:<9} {engine:<8} {time_factor:16.2f}x {fed_factor:>16}"
        )
    return "\n".join(lines)
