"""The SQL execution backend: XDM shredded into SQLite, µ as ``WITH RECURSIVE``.

This package gives the reproduction its third execution path next to the
tree-walking interpreter and the in-memory relational algebra engine — the
paper's actual substrate contrast (XQuery IFP vs. SQL:1999 recursion on an
RDBMS):

* :mod:`repro.sqlbackend.schema` — the pre/post/level/kind/name/value
  relational encoding plus the ID-attribute table and its indexes;
* :mod:`repro.sqlbackend.shredder` — document-order shredding of XDM trees
  into SQLite and the pre↔node mapping;
* :mod:`repro.sqlbackend.emitter` — recursion bodies to parameterized
  ``WITH RECURSIVE`` CTEs (linear step chains only);
* :mod:`repro.sqlbackend.executor` — CTE execution and the iterative
  Naive/Delta driver loop over temp tables; :class:`SQLEvaluator` wires it
  into the XQuery evaluator (``engine="sql"``);
* :mod:`repro.sqlbackend.decode` — relational results back to XDM items.
"""

from repro.sqlbackend.decode import ResultTable, decode_result_table
from repro.sqlbackend.emitter import FixpointSql, emit_fixpoint_sql
from repro.sqlbackend.executor import (
    SQLEvaluator,
    SqlFixpointExecutor,
    fixpoint_statements,
)
from repro.sqlbackend.shredder import SqlDocumentStore

__all__ = [
    "FixpointSql",
    "ResultTable",
    "SQLEvaluator",
    "SqlDocumentStore",
    "SqlFixpointExecutor",
    "decode_result_table",
    "emit_fixpoint_sql",
    "fixpoint_statements",
]
