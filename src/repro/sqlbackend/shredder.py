"""Shredding XDM trees into the SQLite pre/post store.

A :class:`SqlDocumentStore` owns one SQLite connection (in-memory by
default) plus the bidirectional mapping between live XDM nodes and their
``pre`` ranks.  Shredding walks a tree once in document order, assigning
``pre`` at node entry and ``post`` at node exit from one shared counter
(see :mod:`repro.sqlbackend.schema` for the resulting invariants), and bulk
inserts the ``node``/``attr``/``id_attr`` rows.

The store shreds *any* rooted tree, not only parsed documents: the fixpoint
executor encodes seed and body-result nodes on demand, so constructed
subtrees (e.g. the Example 2.4 seed ``(<a/>, <b><c><d/></c></b>)``) are
shredded lazily the first time they participate in a recursion.
"""

from __future__ import annotations

import itertools
import sqlite3
from collections.abc import Iterable

from repro import faults
from repro.errors import SqlBackendError
from repro.sqlbackend.schema import create_schema
from repro.xdm.node import DocumentNode, ElementNode, Node, TextNode


class SqlDocumentStore:
    """A SQLite database of shredded XDM trees plus the pre↔node mapping.

    Parameters
    ----------
    path:
        SQLite database path; the default ``":memory:"`` keeps the store
        in-process, a file path persists the shredded relations.
    wal:
        Put a file-backed store into write-ahead-log mode (readers never
        block the single shredding writer; ``synchronous=NORMAL`` keeps
        commits cheap).  Ignored for ``":memory:"`` databases, which have
        no journal.  The service's per-worker store pool
        (:mod:`repro.sqlbackend.pool`) turns this on.
    """

    #: Minimum tree size (in nodes) for a post-shred ANALYZE.
    ANALYZE_THRESHOLD = 64

    def __init__(self, path: str = ":memory:", wal: bool = False):
        self.path = path
        self.connection = sqlite3.connect(path)
        self.connection.execute("PRAGMA foreign_keys = OFF")
        if wal and path != ":memory:":
            self.connection.execute("PRAGMA journal_mode = WAL")
            self.connection.execute("PRAGMA synchronous = NORMAL")
        create_schema(self.connection)
        self._counter = itertools.count(1)
        self._pre_of: dict[int, int] = {}
        self._node_of: dict[int, Node] = {}
        self._doc_of_root: dict[int, int] = {}
        self._version = 0

    @property
    def version(self) -> int:
        """Bumped on every successful shred.

        Data-dependent verdicts derived from the store's content (the
        executor's EXISTS guard probes) stay valid exactly while this
        number is unchanged, so they key their caches on it.
        """
        return self._version

    # -- shredding -----------------------------------------------------------

    def shred(self, root: Node, uri: str | None = None,
              governor=None) -> int:
        """Shred the tree rooted at *root*; return its ``doc_id``.

        Shredding the same root twice is a no-op returning the original
        ``doc_id``.  When a *governor* is given, the walk checkpoints it
        (amortized) so a deadline or cancellation interrupts a large
        shred mid-walk; the failure path below rolls the store back to
        its pre-shred state.
        """
        existing = self._doc_of_root.get(id(root))
        if existing is not None:
            return existing
        if root.parent is not None:
            raise SqlBackendError("shred() expects the root of a tree "
                                  f"(got a node with a parent: {root!r})")
        cursor = self.connection.execute("INSERT INTO doc (uri) VALUES (?)", (uri,))
        doc_id = cursor.lastrowid

        # The node↔pre mappings are staged locally and merged into the
        # store's dicts only after the bulk insert commits: a failure
        # mid-load (I/O error, injected fault) must leave the store exactly
        # as it was, never with mappings that denote uninserted rows.
        local_pre: dict[int, int] = {}
        local_node: dict[int, Node] = {}

        # node_rows entries are mutable: post (index 1) and the string value
        # (index 7) of container nodes are only known at subtree exit.  Text
        # chunks accumulate in one flat list; a container's string value is
        # the concatenation of the chunks appended while it was open, so the
        # whole walk stays O(nodes + total text) instead of the O(n · depth)
        # a per-node ``string_value()`` call would cost.
        node_rows: list[list] = []
        attr_rows: list[tuple] = []
        chunks: list[str] = []
        row_index: dict[int, int] = {}      # pre -> index into node_rows
        chunk_start: dict[int, int] = {}    # pre -> len(chunks) at entry
        stack: list[tuple[str, Node, int | None, int]] = [("enter", root, None, 0)]
        try:
            self._shred_walk(root, doc_id, local_pre, local_node, node_rows,
                             attr_rows, chunks, row_index, chunk_start, stack,
                             governor=governor)

            id_rows: list[tuple] = []
            if isinstance(root, DocumentNode):
                for value in root.id_values():
                    element = root.lookup_id(value)
                    if element is not None:
                        id_rows.append((doc_id, value, local_pre[id(element)]))

            with self.connection:
                self.connection.executemany(
                    "INSERT INTO node (pre, post, doc_id, parent, level, kind, name, value) "
                    "VALUES (?, ?, ?, ?, ?, ?, ?, ?)", node_rows)
                self.connection.executemany(
                    "INSERT INTO attr (pre, doc_id, owner, name, value, is_id) "
                    "VALUES (?, ?, ?, ?, ?, ?)", attr_rows)
                self.connection.executemany(
                    "INSERT INTO id_attr (doc_id, value, pre) VALUES (?, ?, ?)", id_rows)
        except BaseException:
            # Abort the implicit transaction holding the doc row (walk-time
            # failures happen before the `with self.connection` block, whose
            # own rollback only covers the bulk inserts).
            self.connection.rollback()
            raise
        self._pre_of.update(local_pre)
        self._node_of.update(local_node)
        self._doc_of_root[id(root)] = doc_id
        self._version += 1
        # Refresh planner statistics: without them SQLite may drive child
        # steps through the name index (scanning every element of that name
        # per recursive round) instead of the (parent, name) index.  Trees
        # below the threshold skip the refresh — driver-loop bodies that
        # construct small subtrees shred them every round, and a full-store
        # ANALYZE per round would dwarf the actual work.
        if len(node_rows) >= self.ANALYZE_THRESHOLD:
            self.connection.execute("ANALYZE")
        return doc_id

    def _shred_walk(self, root: Node, doc_id: int,
                    local_pre: dict[int, int], local_node: dict[int, Node],
                    node_rows: list[list], attr_rows: list[tuple],
                    chunks: list[str], row_index: dict[int, int],
                    chunk_start: dict[int, int], stack: list,
                    governor=None) -> None:
        while stack:
            action, node, parent_pre, level = stack.pop()
            if action == "exit":
                pre = local_pre[id(node)]
                row = node_rows[row_index[pre]]
                row[1] = next(self._counter)
                if row[7] is None:
                    row[7] = "".join(chunks[chunk_start[pre]:])
                continue
            if governor is not None and governor.tick():
                governor.check_now()
            faults.trigger("shredder-load")
            pre = next(self._counter)
            local_pre[id(node)] = pre
            local_node[pre] = node
            if node.children:
                value = None                       # filled at exit
                chunk_start[pre] = len(chunks)
            else:
                value = node.string_value()        # leaf: no subtree walk
                if isinstance(node, TextNode):
                    chunks.append(value)
                elif isinstance(node, (DocumentNode, ElementNode)):
                    value = ""                     # empty container
            row_index[pre] = len(node_rows)
            # post (index 1) is patched at exit; 0 is a placeholder.
            node_rows.append([pre, 0, doc_id, parent_pre, level,
                              node.node_kind.value, node.name, value])
            if isinstance(node, ElementNode):
                for attribute in node.attributes:
                    attr_pre = next(self._counter)
                    local_pre[id(attribute)] = attr_pre
                    local_node[attr_pre] = attribute
                    attr_rows.append((attr_pre, doc_id, pre, attribute.name,
                                      attribute.value, int(attribute.is_id)))
            stack.append(("exit", node, parent_pre, level))
            for child in reversed(node.children):
                stack.append(("enter", child, pre, level + 1))

    # -- encode / decode -----------------------------------------------------

    def doc_id_of(self, root: Node) -> int | None:
        """The ``doc_id`` of a shredded tree's root (``None`` if unseen)."""
        return self._doc_of_root.get(id(root))

    def encode(self, nodes: Iterable[Node],
               governor=None) -> list[int]:
        """Map nodes to ``pre`` ranks, shredding unseen trees on demand.

        *governor* (a :class:`~repro.limits.Governor`) makes an on-demand
        shred of a large unseen tree interruptible — without it a cold
        shred would run to completion before the deadline could fire.
        """
        pres: list[int] = []
        for node in nodes:
            key = id(node)
            pre = self._pre_of.get(key)
            if pre is None:
                self.shred(node.root(), governor=governor)
                pre = self._pre_of.get(key)
                if pre is None:  # pragma: no cover - defensive
                    raise SqlBackendError(f"node {node!r} is unreachable from its root")
            pres.append(pre)
        return pres

    def decode(self, pres: Iterable[int]) -> list[Node]:
        """Map ``pre`` ranks back to the live XDM nodes (input order)."""
        nodes: list[Node] = []
        for pre in pres:
            node = self._node_of.get(pre)
            if node is None:
                raise SqlBackendError(f"pre rank {pre} does not denote a shredded node")
            nodes.append(node)
        return nodes

    def node_count(self) -> int:
        """Number of tree rows in the ``node`` table (attributes excluded)."""
        return self.connection.execute("SELECT count(*) FROM node").fetchone()[0]

    def close(self) -> None:
        self.connection.close()


__all__ = ["SqlDocumentStore"]
