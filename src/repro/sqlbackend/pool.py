"""Per-worker-thread SQLite store pool for the serving path.

The SQL engine historically built a fresh in-memory
:class:`~repro.sqlbackend.shredder.SqlDocumentStore` per evaluation — every
request re-shredded every document it touched.  Under a long-running
service that is the dominant cost: the shred of a stable corpus should be
paid once per worker and then reused across requests.

:class:`SqlStorePool` hands each *thread* its own store (SQLite connections
are bound to their creating thread by default, and a private store per
worker needs no statement-level locking at all).  A thread keeps its store
— and therefore its shredded relations, indexes and ANALYZE statistics —
across requests until one of two generations moves:

* the **pool generation**, bumped by :meth:`invalidate` when the owning
  session re-registers documents (snapshot semantics: requests already
  holding a store finish on it; the next acquisition rebuilds); or
* the **global mutation generation** of :mod:`repro.xdm.index`, bumped by
  every structural/value mutation hook — if *any* live tree changed, a
  pooled shred of it would be stale, so the store is dropped and the next
  request re-shreds lazily.  Constructor-free query traffic (the serving
  common case) never moves this counter, so stores stay warm.

In ``"wal"`` mode stores are file-backed databases in write-ahead-log mode
under a pool-owned temporary directory; ``"memory"`` (the default, used by
the in-process default session) keeps them in ``:memory:``.
"""

from __future__ import annotations

import itertools
import os
import shutil
import tempfile
import threading

from repro.sqlbackend.shredder import SqlDocumentStore
from repro.xdm import index as _index_module


class SqlStorePool:
    """Thread-local :class:`SqlDocumentStore` instances with invalidation.

    Parameters
    ----------
    mode:
        ``"memory"`` (private in-memory store per worker) or ``"wal"``
        (file-backed store per worker, WAL journal, under *directory*).
    directory:
        Directory for ``"wal"`` store files; a private temporary directory
        (removed by :meth:`close`) is created when omitted.
    """

    def __init__(self, mode: str = "memory", directory: str | None = None):
        if mode not in ("memory", "wal"):
            raise ValueError(f"unknown store pool mode: {mode!r}")
        self.mode = mode
        self._directory = directory
        self._own_directory: str | None = None
        self._local = threading.local()
        self._lock = threading.Lock()
        #: All live stores, for close()/stats() (thread-local access only
        #: ever touches the calling thread's own store).
        self._stores: dict[int, SqlDocumentStore] = {}
        self._sequence = itertools.count(1)
        self._generation = 0
        self._created = 0
        self._invalidated = 0
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def invalidate(self) -> None:
        """Make every pooled store stale (documents changed).

        In-flight evaluations keep the store object they already acquired
        and finish on that snapshot; the next :meth:`store` call on each
        worker builds a fresh one.
        """
        with self._lock:
            self._generation += 1

    def close(self) -> None:
        """Close every pooled store and remove the pool's scratch files."""
        with self._lock:
            self._closed = True
            stores = list(self._stores.values())
            self._stores.clear()
            own_directory, self._own_directory = self._own_directory, None
        for store in stores:
            try:
                store.close()
            except Exception:
                pass  # a worker thread may still hold the connection
        if own_directory is not None:
            shutil.rmtree(own_directory, ignore_errors=True)

    # -- acquisition ---------------------------------------------------------

    def store(self) -> SqlDocumentStore:
        """This thread's store, rebuilt if any generation moved."""
        if self._closed:
            raise RuntimeError("store pool is closed")
        mutation_generation = _index_module.mutation_generation()
        entry = getattr(self._local, "entry", None)
        if (entry is not None
                and entry[1] == self._generation
                and entry[2] == mutation_generation):
            return entry[0]
        return self._rebuild(entry, mutation_generation)

    def _rebuild(self, entry, mutation_generation: int) -> SqlDocumentStore:
        with self._lock:
            pool_generation = self._generation
            sequence = next(self._sequence)
            if entry is not None:
                self._stores.pop(id(entry[0]), None)
                self._invalidated += 1
            if self.mode == "wal":
                directory = self._directory
                if directory is None:
                    if self._own_directory is None:
                        self._own_directory = tempfile.mkdtemp(prefix="repro-sqlpool-")
                    directory = self._own_directory
        if entry is not None:
            old_store = entry[0]
            old_path = getattr(old_store, "path", ":memory:")
            old_store.close()
            if old_path != ":memory:":
                for suffix in ("", "-wal", "-shm"):
                    try:
                        os.unlink(old_path + suffix)
                    except OSError:
                        pass
        if self.mode == "wal":
            path = os.path.join(
                directory, f"store-{threading.get_ident()}-{sequence}.db")
            store = SqlDocumentStore(path, wal=True)
        else:
            store = SqlDocumentStore()
        with self._lock:
            self._stores[id(store)] = store
            self._created += 1
        self._local.entry = (store, pool_generation, mutation_generation)
        return store

    # -- introspection -------------------------------------------------------

    def stats(self) -> dict:
        with self._lock:
            return {
                "mode": self.mode,
                "live_stores": len(self._stores),
                "created": self._created,
                "invalidated": self._invalidated,
                "generation": self._generation,
            }

    def journal_mode(self) -> str | None:
        """The journal mode of this thread's store (for tests/stats)."""
        row = self.store().connection.execute("PRAGMA journal_mode").fetchone()
        return row[0] if row else None


__all__ = ["SqlStorePool"]
