"""Relational schema of the shredded XDM store (DESIGN.md §5.1).

The encoding is the classic *pre/post plane* of the Pathfinder / MonetDB
"Relational XQuery" substrate — the very representation DESIGN.md §2 notes
this reproduction previously simplified away.  Every tree node receives a
``pre`` rank (entry tick of a document-order walk) and a ``post`` rank
(exit tick of the same walk, drawn from the same counter), so within one
document

* document order  == ascending ``pre``,
* ``d`` is a descendant of ``v``  ⟺  ``d.pre > v.pre AND d.post < v.post``,

which turns the XPath axes into range/equality joins over integers.  ``pre``
values are globally unique across all documents shredded into one store
(one shared counter), so a bare ``pre`` identifies a node during fixpoint
iteration; ``doc_id`` scopes the per-document operations (descendant
ranges, ``fn:id``).

Tables
------
``doc``
    One row per shredded tree (parsed document or constructed subtree).
``node``
    Tree nodes (document, element, text, comment, PI).  ``value`` holds the
    XDM string value; for elements it is *materialised* at shred time (the
    concatenated descendant text) so value joins — ``fn:id`` in particular —
    need no recursive reassembly.
``attr``
    Attribute nodes, keyed by their own ``pre`` (same counter) but kept out
    of the ``node`` table so they never pollute the pre/post descendant
    ranges.
``id_attr``
    The ID-attribute index: DTD/option-declared ID values to the ``pre`` of
    the carrying element — the relational counterpart of
    ``DocumentNode._id_map`` and the join target of ``fn:id``.

Indexes cover the access paths of the emitted step joins: ``pre`` (primary
key), ``(doc_id, post)`` for descendant/ancestor ranges, ``(parent, name)``
for child steps with name tests (the composite is what keeps the recursive
CTE walking frontier→child instead of scanning all elements of a name and
filtering upwards), ``name`` for name-only scans, ``(owner, name)`` on
attributes and ``(doc_id, value)`` on the ID table.  The shredder runs
``ANALYZE`` after each bulk load so the planner has real cardinalities when
it chooses among them.
"""

from __future__ import annotations

import sqlite3

#: Bump on incompatible schema changes.
SCHEMA_VERSION = 1

SCHEMA_STATEMENTS: tuple[str, ...] = (
    """
    CREATE TABLE IF NOT EXISTS doc (
        doc_id INTEGER PRIMARY KEY,
        uri    TEXT
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS node (
        pre    INTEGER PRIMARY KEY,
        post   INTEGER NOT NULL,
        doc_id INTEGER NOT NULL REFERENCES doc(doc_id),
        parent INTEGER,
        level  INTEGER NOT NULL,
        kind   TEXT NOT NULL,
        name   TEXT,
        value  TEXT NOT NULL
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS attr (
        pre    INTEGER PRIMARY KEY,
        doc_id INTEGER NOT NULL REFERENCES doc(doc_id),
        owner  INTEGER NOT NULL REFERENCES node(pre),
        name   TEXT NOT NULL,
        value  TEXT NOT NULL,
        is_id  INTEGER NOT NULL DEFAULT 0
    )
    """,
    """
    CREATE TABLE IF NOT EXISTS id_attr (
        doc_id INTEGER NOT NULL REFERENCES doc(doc_id),
        value  TEXT NOT NULL,
        pre    INTEGER NOT NULL REFERENCES node(pre),
        PRIMARY KEY (doc_id, value)
    )
    """,
    "CREATE INDEX IF NOT EXISTS idx_node_post ON node(doc_id, post)",
    "CREATE INDEX IF NOT EXISTS idx_node_parent_name ON node(parent, name)",
    "CREATE INDEX IF NOT EXISTS idx_node_name ON node(name)",
    "CREATE INDEX IF NOT EXISTS idx_attr_owner ON attr(owner, name)",
    "CREATE INDEX IF NOT EXISTS idx_id_attr_value ON id_attr(doc_id, value)",
)


def create_schema(connection: sqlite3.Connection) -> None:
    """Create the shredding tables and their indexes (idempotent)."""
    for statement in SCHEMA_STATEMENTS:
        connection.execute(statement)
    connection.commit()
