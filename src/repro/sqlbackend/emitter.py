"""Emission of ``WITH RECURSIVE`` SQL from XQuery recursion bodies.

The paper's central contrast is the XQuery IFP against SQL:1999's
``WITH RECURSIVE`` evaluated on an RDBMS.  This module closes that loop:
when a ``with $x seeded by … recurse e`` body is a *linear step chain* —
a path of axis steps and ``fn:id`` hops applied to the recursion variable —
the whole fixpoint becomes one recursive CTE over the shredded pre/post
tables:

.. code-block:: sql

    WITH RECURSIVE
      seed(pre) AS (
        VALUES (?), (?)
      ),
      fixpoint(pre) AS (
        SELECT i.pre FROM seed AS s JOIN node AS c0 ON c0.pre = s.pre ...
        UNION
        SELECT i.pre FROM fixpoint AS s JOIN node AS c0 ON c0.pre = s.pre ...
      )
    SELECT pre FROM fixpoint

The anchor member applies the step chain to the seed (``res_0 =
e_rec(e_seed)`` of Definition 2.1), the recursive member re-applies it to
newly discovered rows, and SQLite's deduplicating ``UNION`` *is* the
inflationary accumulation — it also guarantees termination on cyclic data,
where ``UNION ALL`` would loop forever.  Because a pure step chain is
distributive in the recursion variable (they are exactly the STEP rules of
the Figure 5 analysis), handing the iteration to the RDBMS's semi-naive
CTE evaluator is always sound here.

Steps may carry *recognized predicate shapes* (the pushdown fragment of
:mod:`repro.xquery.pushdown`): ``[@a = "v"]``, ``[name = $v]`` and the
existence tests ``[@a]`` / ``[name]`` become ``EXISTS`` probes against the
shredded ``attr``/``node`` tables — riding the ``(owner, name)`` attribute
index and the ``(parent, name)`` child index — *inside* the recursive
members, so the filter runs in SQLite every round instead of being
re-evaluated in Python after decoding.  Variable right-hand sides are
inlined from the caller's bindings when every bound value is a string.

Anything beyond such a chain — positional or unrecognized predicates,
conditionals, aggregates, user-defined functions, sequence/union bodies —
makes :func:`emit_fixpoint_sql` return ``None`` and the executor falls
back to the iterative driver loop (:mod:`repro.sqlbackend.executor`).

Known simplification: the ``fn:id`` join matches a *single* ID token per
argument node — the string value with surrounding whitespace trimmed —
whereas XQuery tokenizes multi-token IDREFS lists on internal whitespace.
Single-token references (the curriculum encoding, padded or not) behave
identically; bodies reading multi-token IDREFS content should be evaluated
through the driver loop (force ``using naive``) or the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.sqlgen.with_recursive import format_with_recursive
from repro.xquery import ast
from repro.xquery.pushdown import (
    ValueShape,
    recognize_predicate,
    string_values_or_none,
)

#: Axis name → join condition template; ``{b}`` is the new alias, ``{a}``
#: the context alias (a row of the ``node`` table).
_AXIS_CONDITIONS: dict[str, str] = {
    "child": "{b}.parent = {a}.pre",
    "descendant": "{b}.doc_id = {a}.doc_id AND {b}.pre > {a}.pre AND {b}.post < {a}.post",
    "descendant-or-self":
        "{b}.doc_id = {a}.doc_id AND {b}.pre >= {a}.pre AND {b}.post <= {a}.post",
    "self": "{b}.pre = {a}.pre",
    "parent": "{b}.pre = {a}.parent",
    "ancestor": "{b}.doc_id = {a}.doc_id AND {b}.pre < {a}.pre AND {b}.post > {a}.post",
    "ancestor-or-self":
        "{b}.doc_id = {a}.doc_id AND {b}.pre <= {a}.pre AND {b}.post >= {a}.post",
    "following-sibling": "{b}.parent = {a}.parent AND {b}.pre > {a}.pre",
    "preceding-sibling": "{b}.parent = {a}.parent AND {b}.pre < {a}.pre",
}

#: Kind-test name → ``node.kind`` value (no extra filter for ``node()``).
_KIND_FILTERS: dict[str, str | None] = {
    "node": None,
    "text": "text",
    "comment": "comment",
    "processing-instruction": "processing-instruction",
    "element": "element",
    "document-node": "document",
}


class _NotEmittable(Exception):
    """Internal: the body is not a linear step chain."""


@dataclass(frozen=True)
class FixpointSql:
    """A recursion body emitted as a parameterized recursive CTE.

    The seed enters as a ``VALUES`` CTE of ``pre`` ranks
    (:meth:`statement`) or, for seed sets near SQLite's host-parameter
    limit, as a ``SELECT`` from a pre-loaded table
    (:meth:`statement_from_table`).
    """

    #: The step chain as one SQL member, with ``{source}`` standing for the
    #: relation the chain reads its context rows from.
    member_template: str
    #: ``SELECT EXISTS(…)`` probes that detect data the chain would handle
    #: incorrectly (multi-token IDREFS content); any probe returning 1 means
    #: the executor must fall back to the driver loop.
    guards: tuple[str, ...] = ()

    def member(self, source: str) -> str:
        return self.member_template.format(source=source)

    def _statement(self, seed_body: str) -> str:
        return format_with_recursive(
            "fixpoint", ("pre",),
            self.member("seed"), self.member("fixpoint"),
            union="UNION",
            final_select="SELECT pre FROM fixpoint ORDER BY pre",
            preamble=(("seed(pre)", seed_body),),
        )

    def statement(self, seed_count: int) -> str:
        """The executable statement for *seed_count* seed parameters."""
        return self._statement("VALUES " + ", ".join(["(?)"] * max(seed_count, 1)))

    def statement_from_table(self, table: str) -> str:
        """The statement reading seed ``pre`` ranks from *table*."""
        return self._statement(f"SELECT pre FROM {table}")

    def display(self) -> str:
        """The statement with a symbolic seed list (for ``--emit-sql``)."""
        return self._statement("VALUES (?) /* one row per seed node */")


def emit_fixpoint_sql(body: ast.Expr, variable: str,
                      variables: dict | None = None,
                      push_predicates: bool = True,
                      anchor_doc_id=None) -> FixpointSql | None:
    """Emit the recursive-CTE step member for *body*, or ``None``.

    *body* must be a linear step chain over *variable*: axis steps with
    name/kind tests, optionally ending in (or passing through) an ``fn:id``
    call whose argument is itself a step chain from the context item — or a
    top-level ``id(chain-from-$var)`` call (the Q1 shape the strengthened
    static analysis proves distributive).  Step predicates are pushed as
    ``EXISTS`` probes when they are recognized value/existence shapes
    (*push_predicates*); *variables* supplies bindings used to inline
    variable right-hand sides.

    *anchor_doc_id* scopes top-level ``id(...)`` lookups: ``fn:id`` anchors
    at the evaluation's context node, whose document is unknown to the SQL
    text, so the executor passes its ``doc_id`` — as an ``int`` or a
    zero-argument callable resolved only if the body actually needs it.
    Without one, top-level ``id(...)`` bodies are not emittable (the driver
    loop gives them the interpreter's semantics).
    """
    try:
        return _Emitter(variable, variables, push_predicates,
                        anchor_doc_id=anchor_doc_id).emit(body)
    except _NotEmittable:
        return None


class _Emitter:
    def __init__(self, variable: str, variables: dict | None = None,
                 push_predicates: bool = True, anchor_doc_id=None):
        self.variable = variable
        self.variables = variables or {}
        self.push_predicates = push_predicates
        self.anchor_doc_id = anchor_doc_id
        self.joins: list[str] = []
        self.guards: list[str] = []
        self._tests: dict[str, ast.NodeTest] = {}
        self._aliases = 0

    def _resolve_anchor(self) -> int:
        """The ``doc_id`` anchoring top-level ``id(...)`` lookups."""
        if callable(self.anchor_doc_id):
            self.anchor_doc_id = self.anchor_doc_id()
        if not isinstance(self.anchor_doc_id, int):
            raise _NotEmittable
        return self.anchor_doc_id

    # -- infrastructure ------------------------------------------------------

    def _fresh(self) -> str:
        alias = f"c{self._aliases}"
        self._aliases += 1
        return alias

    def _join(self, table: str, alias: str, condition: str) -> None:
        # CROSS JOIN is SQLite's manual join-order override: the member must
        # stay frontier-driven (read s first, then walk the chain), and the
        # planner's cost model demonstrably inverts the order once pushed
        # EXISTS probes enter the picture — scanning all name-test matches
        # per round instead of the frontier.  Semantically identical to
        # JOIN … ON in SQLite.
        self.joins.append(f"CROSS JOIN {table} AS {alias} ON {condition}")

    # -- entry point ---------------------------------------------------------

    def emit(self, body: ast.Expr) -> FixpointSql:
        # Anchor the chain: a node-table row for the current frontier pre.
        base = self._fresh()
        self._join("node", base, f"{base}.pre = s.pre")
        result = self._chain(body, base)
        lines = [f"SELECT {result}.pre", "  FROM {source} AS s"]
        lines.extend(f"  {join}" for join in self.joins)
        return FixpointSql(member_template="\n".join(lines),
                           guards=tuple(self.guards))

    # -- translation ---------------------------------------------------------

    def _chain(self, expr: ast.Expr, context_alias: str,
               in_id_argument: bool = False) -> str:
        """Translate *expr* into joins; return the alias of its result.

        At the top level the chain must start from the recursion variable
        (``.`` in the body denotes the *outer* context item, which the
        emitter cannot see — such bodies fall back to the driver loop,
        where the interpreter gives them their real semantics).  Inside an
        ``fn:id`` argument the roles flip: the chain is relative to the
        context item rebound by the enclosing path step, while the
        recursion variable would denote the whole frontier sequence.
        """
        if isinstance(expr, ast.VarRef):
            if in_id_argument or expr.name != self.variable:
                raise _NotEmittable
            return context_alias
        if isinstance(expr, ast.ContextItem):
            if not in_id_argument:
                raise _NotEmittable
            return context_alias
        if isinstance(expr, ast.PathExpr):
            left = self._chain(expr.left, context_alias, in_id_argument)
            return self._apply_step(expr.right, left)
        if (isinstance(expr, ast.FunctionCall) and not in_id_argument
                and expr.name in ("id", "fn:id") and len(expr.args) == 1):
            # Top-level ``id(chain-from-$var)``: the argument walks from the
            # recursion variable, the lookup anchors at the context node's
            # document (supplied by the executor as anchor_doc_id).
            return self._id_join(expr.args[0], context_alias,
                                 from_variable=True)
        if isinstance(expr, ast.AxisStep):
            # A bare step is relative to the context item (inside id()).
            if not in_id_argument:
                raise _NotEmittable
            return self._apply_step(expr, context_alias)
        raise _NotEmittable

    def _apply_step(self, step: ast.Expr, context_alias: str) -> str:
        if isinstance(step, ast.AxisStep):
            return self._axis_join(step, context_alias)
        if isinstance(step, ast.FunctionCall) and step.name in ("id", "fn:id") \
                and len(step.args) == 1:
            return self._id_join(step.args[0], context_alias)
        raise _NotEmittable

    def _axis_join(self, step: ast.AxisStep, context_alias: str) -> str:
        condition = _AXIS_CONDITIONS.get(step.axis)
        if condition is None:
            raise _NotEmittable  # attribute/following/preceding: driver loop
        alias = self._fresh()
        clauses = [condition.format(a=context_alias, b=alias)]
        clauses.extend(self._node_test_clauses(step.node_test, alias))
        for predicate in step.predicates:
            clauses.append(self._predicate_clause(predicate, alias))
        self._join("node", alias, " AND ".join(clauses))
        self._tests[alias] = step.node_test
        return alias

    def _predicate_clause(self, predicate: ast.Expr, alias: str) -> str:
        """A recognized value/existence predicate as an ``EXISTS`` probe.

        Positional shapes cannot be expressed per-context-node inside a
        recursive member (no window functions there), so they — like every
        unrecognized shape — hand the fixpoint to the driver loop.
        """
        if not self.push_predicates:
            raise _NotEmittable
        shape = recognize_predicate(predicate)
        if not isinstance(shape, ValueShape):
            raise _NotEmittable
        values = self._shape_values(shape)
        if shape.target == "attr":
            clauses = [f"p.owner = {alias}.pre", f"p.name = {_quote(shape.name)}"]
            table = "attr"
        else:
            clauses = [f"p.parent = {alias}.pre", "p.kind = 'element'",
                       f"p.name = {_quote(shape.name)}"]
            table = "node"
        if values is not None:
            if not values:
                return "0"  # empty comparison sequence matches nothing
            if len(values) == 1:
                clauses.append(f"p.value = {_quote(values[0])}")
            else:
                quoted = ", ".join(_quote(value) for value in values)
                clauses.append(f"p.value IN ({quoted})")
        return (f"EXISTS (SELECT 1 FROM {table} AS p "
                f"WHERE {' AND '.join(clauses)})")

    def _shape_values(self, shape: ValueShape):
        """Constant strings of the shape's right-hand side (``None`` for
        existence tests); non-string operands are not emittable."""
        if shape.rhs is None:
            return None
        if isinstance(shape.rhs, ast.Literal):
            values = string_values_or_none([shape.rhs.value])
        elif isinstance(shape.rhs, ast.VarRef):
            if shape.rhs.name not in self.variables:
                raise _NotEmittable
            values = string_values_or_none(self.variables[shape.rhs.name])
        else:  # pragma: no cover - recognizer only emits the above
            values = None
        if values is None:
            raise _NotEmittable
        return values

    def _node_test_clauses(self, test: ast.NodeTest, alias: str) -> list[str]:
        if test.kind == "name":
            clauses = [f"{alias}.kind = 'element'"]
            if test.name != "*":
                clauses.append(f"{alias}.name = {_quote(test.name)}")
            return clauses
        if test.kind in _KIND_FILTERS:
            kind = _KIND_FILTERS[test.kind]
            clauses = [] if kind is None else [f"{alias}.kind = {_quote(kind)}"]
            if test.name is not None and test.kind in ("element", "processing-instruction"):
                clauses.append(f"{alias}.name = {_quote(test.name)}")
            return clauses
        raise _NotEmittable

    def _id_join(self, argument: ast.Expr, context_alias: str,
                 from_variable: bool = False) -> str:
        """``fn:id(arg)``: join the ID table on the argument's string value.

        In step position (``…/id(./chain)``) the argument walks from the
        context item and the lookup is scoped to the context node's
        document.  In top-level position (``id(chain-from-$var)``,
        *from_variable*) the argument walks from the recursion variable and
        the lookup is scoped to the anchor document the executor supplies —
        ``fn:id`` anchors at the evaluation's context node, which the SQL
        cannot otherwise see.  Either way the string values come straight
        from the materialised ``value`` column.
        """
        value_alias = self._chain(argument, context_alias,
                                  in_id_argument=not from_variable)
        if value_alias == context_alias:
            raise _NotEmittable  # id(.) / id($x) — outside the fragment
        doc_scope = (str(self._resolve_anchor()) if from_variable
                     else f"{context_alias}.doc_id")
        self.guards.append(self._multi_token_guard(value_alias))
        alias = self._fresh()
        # TRIM matches the interpreter's whitespace handling for a single ID
        # token; the probe expression sits on the outer row, so the lookup
        # still drives the (doc_id, value) index.
        self._join(
            "id_attr", alias,
            f"{alias}.doc_id = {doc_scope} "
            f"AND {alias}.value = TRIM({value_alias}.value, ' ' || char(9, 10, 13))",
        )
        # id_attr.pre is an element pre; downstream steps need node columns.
        element = self._fresh()
        self._join("node", element, f"{element}.pre = {alias}.pre")
        return element

    def _multi_token_guard(self, value_alias: str) -> str:
        """An ``EXISTS`` probe for multi-token IDREFS content.

        The TRIM-normalized equality join resolves exactly one ID token per
        argument node; if any candidate value still contains internal
        whitespace after trimming, the executor must hand the fixpoint to
        the driver loop, where the interpreter's tokenizing ``fn:id`` runs.
        The probe over-approximates (it scans every node matching the
        argument step's node test, regardless of document or reachability),
        trading a one-time indexed scan for never returning a silently
        wrong CTE result.
        """
        test = self._tests.get(value_alias)
        clauses = (self._node_test_clauses(test, "n") if test is not None
                   else ["n.kind = 'element'"])
        clauses.append(
            "TRIM(n.value, ' ' || char(9, 10, 13)) "
            "GLOB ('*[' || char(9, 10, 13) || ' ]*')"
        )
        return f"SELECT EXISTS(SELECT 1 FROM node AS n WHERE {' AND '.join(clauses)})"


def _quote(text: str) -> str:
    escaped = text.replace("'", "''")
    return f"'{escaped}'"


__all__ = ["FixpointSql", "emit_fixpoint_sql"]
