"""Fixpoint execution on SQLite: recursive CTEs plus the driver loop.

:class:`SqlFixpointExecutor` evaluates one ``with … recurse`` form against
a :class:`~repro.sqlbackend.shredder.SqlDocumentStore` along one of two
paths:

**Recursive CTE** (the paper's SQL:1999 side).  When the chosen algorithm
is Delta — i.e. the distributivity check passed or ``using delta`` forced
it — and the body is a linear step chain the emitter can translate, the
whole fixpoint executes as a *single* ``WITH RECURSIVE`` statement inside
SQLite; its semi-naive queue evaluation plays the µ∆ role and the
deduplicating ``UNION`` is the inflationary accumulation.  Iteration
counts are not observable from outside the RDBMS, so such runs report an
empty iteration trace under the algorithm label ``"cte"``.

**Iterative driver loop** (the fallback).  Non-distributive or
non-chain-shaped bodies iterate from Python, mirroring Figure 3's
Naive/Delta algorithms, but with the accumulated result and the per-round
delta kept in SQLite temp tables (``INSERT OR IGNORE`` / ``EXCEPT`` give
the set semantics): each round decodes the feed ``pre`` ranks to XDM
nodes, evaluates the body through the interpreter, encodes the produced
nodes — shredding unseen trees on demand — and derives the new frontier
relationally.  Per-iteration statistics match the in-memory engine's.

:class:`SQLEvaluator` is the interpreter with ``with … recurse`` rerouted
through this executor — the ``engine="sql"`` entry point of
:func:`repro.api.evaluate`.
"""

from __future__ import annotations

import itertools
import sqlite3
from collections.abc import Callable

from repro import faults
from repro.errors import FixpointError, SqlBackendError
from repro.fixpoint.engine import FixpointResult
from repro.limits import active_governor, sqlite_guard
from repro.observability import active_trace, maybe_span
from repro.xdm.items import is_node
from repro.xdm.node import AttributeNode
from repro.fixpoint.stats import FixpointStatistics
from repro.sqlbackend.decode import decode_pres
from repro.sqlbackend.emitter import FixpointSql, emit_fixpoint_sql
from repro.sqlbackend.shredder import SqlDocumentStore
from repro.xdm.sequence import ensure_node_sequence
from repro.xquery import ast
from repro.xquery.context import DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.pushdown import PROFILE


def _abbreviate(statement: str, limit: int = 200) -> str:
    """Statement text condensed for span attributes (whitespace folded)."""
    text = " ".join(statement.split())
    return text if len(text) <= limit else text[: limit - 1] + "…"


class SqlFixpointExecutor:
    """Runs ``with … recurse`` fixpoints against a SQLite store."""

    #: Most recent statements kept in :attr:`executed_statements`.  A
    #: long-lived executor on a pooled store (the query service reuses
    #: shredded stores across requests) would otherwise accumulate the
    #: transcript without bound.
    MAX_RECORDED_STATEMENTS = 128

    def __init__(self, store: SqlDocumentStore | None = None):
        self.store = store or SqlDocumentStore()
        #: ``WITH RECURSIVE`` statements executed so far (for tests/--stats);
        #: only the last :attr:`MAX_RECORDED_STATEMENTS` are retained.
        self.executed_statements: list[str] = []
        self._run_ids = itertools.count(1)
        #: Guard-probe verdicts keyed on (guard SQL, store version): the
        #: multi-token IDREFS probes are data-dependent EXISTS scans, so a
        #: hot executor (service pool, repeated fixpoints in one query)
        #: re-proves them only after the store actually changes.
        self._guard_verdicts: dict[tuple[tuple[str, ...], int], bool] = {}

    def _record_statement(self, statement: str) -> None:
        self.executed_statements.append(statement)
        if len(self.executed_statements) > self.MAX_RECORDED_STATEMENTS:
            del self.executed_statements[:-self.MAX_RECORDED_STATEMENTS]

    def run(self, expr: ast.WithExpr, seed: list,
            body: Callable[[list], list], algorithm: str,
            max_iterations: int = 100_000,
            variables: dict | None = None,
            push_predicates: bool = True,
            trace=None, governor=None,
            anchor_document=None) -> FixpointResult:
        """Evaluate the fixpoint of *expr* seeded by *seed*.

        ``algorithm`` is the decision of the usual Naive/Delta procedure
        (``using`` clause, engine options, distributivity analysis):
        ``"delta"`` selects the recursive CTE whenever the body is
        emittable, ``"naive"`` always iterates the driver loop.
        ``variables`` are the caller's in-scope bindings — the emitter
        inlines them into pushed predicate probes; ``push_predicates``
        mirrors the engine's ``use_pushdown`` option.  ``trace`` (a
        :class:`~repro.observability.tracing.TraceContext`) wraps the run
        in a ``fixpoint`` span whose ``path`` attribute records whether the
        CTE or the driver loop executed it.  ``governor`` (a
        :class:`~repro.limits.Governor`) makes the run interruptible: the
        driver loop checks at round boundaries, and both paths install a
        SQLite progress handler (:func:`repro.limits.sqlite_guard`) so a
        single monster ``WITH RECURSIVE`` honours deadlines too.
        ``anchor_document`` is the context node's document (or ``None``):
        top-level ``id(...)`` bodies scope their ID lookups to it, so
        without one they fall back to the driver loop.
        """
        seed_nodes = ensure_node_sequence(list(seed), "inflationary fixed point seed")
        # encode() may shred a large unseen document on demand; the
        # governor makes that walk interruptible too.
        seed_pres = self.store.encode(seed_nodes, governor=governor)
        emitted = None
        if algorithm == "delta" and not any(
                isinstance(node, AttributeNode) for node in seed_nodes):
            # Attribute seeds cannot enter the CTE: their pre ranks live in
            # the attr table, which the emitted chain never reads — the
            # driver loop gives them the interpreter's semantics instead.
            emitted = emit_fixpoint_sql(
                expr.body, expr.var, variables=variables,
                push_predicates=push_predicates,
                anchor_doc_id=self._anchor_resolver(anchor_document,
                                                    governor=governor))
        use_cte = emitted is not None and not self._guards_trip(emitted)
        if PROFILE.enabled:
            PROFILE.record("sql:fixpoint", use_cte)
        span = (trace.begin("fixpoint", algorithm=algorithm,
                            path="cte" if use_cte else "driver",
                            seed=len(seed_nodes))
                if trace is not None else None)
        try:
            # sqlite_guard sits innermost so it can translate an interrupted
            # statement into the governor's typed error before the generic
            # sqlite3.Error → SqlBackendError mapping sees it.
            try:
                faults.trigger("sqlite-execute")
                with sqlite_guard(self.store.connection, governor):
                    if use_cte:
                        result = self._run_cte(emitted, seed_pres, trace=trace)
                    else:
                        result = self._run_driver_loop(
                            seed_nodes, seed_pres, body, algorithm,
                            max_iterations, trace=trace, governor=governor)
            except sqlite3.Error as error:
                raise SqlBackendError(
                    f"SQLite error during fixpoint execution: {error}"
                ) from error
        finally:
            if span is not None:
                trace.end(span)
        if span is not None:
            span.set(result_size=len(result.value),
                     rounds=result.statistics.recursion_depth)
        return result

    def _anchor_resolver(self, anchor_document, governor=None):
        """A lazy ``doc_id`` supplier for top-level ``id(...)`` emission.

        Resolved only when the body actually contains a top-level ``id``
        call: shredding the anchor document just in case would be wasted
        work for every other body shape.
        """
        def resolve():
            if anchor_document is None:
                return None
            self.store.encode([anchor_document], governor=governor)
            return self.store.doc_id_of(anchor_document)

        return resolve

    def _guards_trip(self, emitted: FixpointSql) -> bool:
        """True when the store holds data the emitted chain would mishandle
        (multi-token IDREFS content) — the driver loop takes over then.

        Verdicts are cached per store version: the probes only depend on
        shredded content, so they hold until the next shred.
        """
        guards = tuple(emitted.guards)
        if not guards:
            return False
        key = (guards, self.store.version)
        verdict = self._guard_verdicts.get(key)
        if verdict is None:
            connection = self.store.connection
            verdict = any(connection.execute(guard).fetchone()[0]
                          for guard in guards)
            if len(self._guard_verdicts) > 256:
                self._guard_verdicts.clear()
            self._guard_verdicts[key] = verdict
        return verdict

    # -- the recursive CTE path ---------------------------------------------

    #: Seed sets beyond this bind through a temp table instead of ``?``
    #: placeholders (SQLite's host-parameter limit is 999 before 3.32).
    MAX_SEED_PARAMETERS = 500

    def _run_cte(self, emitted: FixpointSql, seed_pres: list[int],
                 trace=None) -> FixpointResult:
        connection = self.store.connection
        if len(seed_pres) > self.MAX_SEED_PARAMETERS:
            seed_table = f"fix_seed_{next(self._run_ids)}"
            connection.execute(f"CREATE TEMP TABLE {seed_table} (pre INTEGER)")
            try:
                connection.executemany(
                    f"INSERT INTO {seed_table} (pre) VALUES (?)",
                    [(pre,) for pre in seed_pres])
                statement = emitted.statement_from_table(seed_table)
                self._record_statement(statement)
                with maybe_span(trace, "sql", statement=_abbreviate(statement)) as span:
                    rows = connection.execute(statement).fetchall()
                    if span is not None:
                        span.set(rows=len(rows))
            finally:
                connection.execute(f"DROP TABLE IF EXISTS {seed_table}")
        else:
            statement = emitted.statement(len(seed_pres))
            self._record_statement(statement)
            parameters = seed_pres or [-1]  # VALUES needs a row; -1 matches nothing
            with maybe_span(trace, "sql", statement=_abbreviate(statement)) as span:
                rows = connection.execute(statement, parameters).fetchall()
                if span is not None:
                    span.set(rows=len(rows))
        with maybe_span(trace, "decode", rows=len(rows)):
            nodes = decode_pres(self.store, (row[0] for row in rows))
        statistics = FixpointStatistics(algorithm="cte")
        return FixpointResult(value=nodes, statistics=statistics)

    # -- the iterative driver loop ------------------------------------------

    def _run_driver_loop(self, seed_nodes: list, seed_pres: list[int],
                         body: Callable[[list], list],
                         algorithm: str, max_iterations: int,
                         trace=None, governor=None) -> FixpointResult:
        connection = self.store.connection
        run_id = next(self._run_ids)
        result_table = f"fix_result_{run_id}"
        produced_table = f"fix_produced_{run_id}"
        connection.execute(f"CREATE TEMP TABLE {result_table} (pre INTEGER PRIMARY KEY)")
        connection.execute(f"CREATE TEMP TABLE {produced_table} (pre INTEGER)")
        statistics = FixpointStatistics(algorithm=algorithm)
        try:
            apply_body = self._body_application(body, produced_table,
                                                governor=governor)

            # Round 0: res_0 = e_rec(e_seed) (Definition 2.1).  The seed is
            # fed in its original sequence order — the interpreter does the
            # same, and order-sensitive bodies can observe the difference.
            span = trace.begin("round", iteration=0) if trace is not None else None
            produced_count = apply_body(seed_nodes)
            delta_pres = self._new_pres(produced_table, result_table)
            self._accumulate(produced_table, result_table)
            result_size = self._count(result_table)
            if span is not None:
                span.set(fed=len(seed_pres), produced=produced_count,
                         new=len(delta_pres), result_size=result_size)
                trace.end(span)
            statistics.record(0, len(seed_pres), produced_count,
                              len(delta_pres), result_size)

            iteration = 0
            while True:
                if algorithm == "delta" and not delta_pres:
                    break
                iteration += 1
                if iteration > max_iterations:
                    raise FixpointError(
                        f"inflationary fixed point did not converge within "
                        f"{max_iterations} iterations"
                    )
                if governor is not None:
                    governor.check_round(iteration, frontier=len(delta_pres),
                                         result_size=result_size)
                faults.trigger("slow-span")
                if algorithm == "delta":
                    feed_pres = delta_pres
                else:
                    feed_pres = [row[0] for row in connection.execute(
                        f"SELECT pre FROM {result_table} ORDER BY pre")]
                span = trace.begin("round", iteration=iteration) if trace is not None else None
                produced_count = apply_body(decode_pres(self.store, feed_pres))
                delta_pres = self._new_pres(produced_table, result_table)
                self._accumulate(produced_table, result_table)
                result_size = self._count(result_table)
                if span is not None:
                    span.set(fed=len(feed_pres), produced=produced_count,
                             new=len(delta_pres), result_size=result_size)
                    trace.end(span)
                statistics.record(iteration, len(feed_pres), produced_count,
                                  len(delta_pres), result_size)
                if algorithm == "naive" and not delta_pres:
                    break
            final_pres = [row[0] for row in connection.execute(
                f"SELECT pre FROM {result_table}")]
            with maybe_span(trace, "decode", rows=len(final_pres)):
                value = decode_pres(self.store, final_pres)
            return FixpointResult(value=value, statistics=statistics)
        finally:
            connection.execute(f"DROP TABLE IF EXISTS {result_table}")
            connection.execute(f"DROP TABLE IF EXISTS {produced_table}")

    def _body_application(self, body: Callable[[list], list],
                          produced_table: str, governor=None):
        """Build the round worker: body over nodes, produced rows into SQL."""

        def apply_body(feed_nodes: list) -> int:
            produced = body(list(feed_nodes))
            produced_nodes = ensure_node_sequence(
                produced, "inflationary fixed point body result")
            produced_pres = self.store.encode(produced_nodes,
                                              governor=governor)
            connection = self.store.connection
            connection.execute(f"DELETE FROM {produced_table}")
            connection.executemany(
                f"INSERT INTO {produced_table} (pre) VALUES (?)",
                [(pre,) for pre in produced_pres])
            return len(produced_nodes)

        return apply_body

    def _new_pres(self, produced_table: str, result_table: str) -> list[int]:
        rows = self.store.connection.execute(
            f"SELECT DISTINCT pre FROM {produced_table} "
            f"EXCEPT SELECT pre FROM {result_table}").fetchall()
        return sorted(row[0] for row in rows)

    def _accumulate(self, produced_table: str, result_table: str) -> None:
        self.store.connection.execute(
            f"INSERT OR IGNORE INTO {result_table} (pre) "
            f"SELECT pre FROM {produced_table}")

    def _count(self, table: str) -> int:
        return self.store.connection.execute(
            f"SELECT count(*) FROM {table}").fetchone()[0]


class SQLEvaluator(Evaluator):
    """The interpreter with ``with … recurse`` executed on SQLite.

    Everything outside the IFP form behaves exactly like
    :class:`~repro.xquery.evaluator.Evaluator` (which is what makes the
    ``sql`` engine item-identical to the interpreter by construction);
    every fixpoint is encoded into the store and evaluated as a recursive
    CTE or through the temp-table driver loop.
    """

    def __init__(self, store: SqlDocumentStore | None = None):
        super().__init__()
        self.executor = SqlFixpointExecutor(store)

    @property
    def store(self) -> SqlDocumentStore:
        return self.executor.store

    def _eval_with(self, expr: ast.WithExpr, context: DynamicContext) -> list:
        seed = self.evaluate(expr.seed, context)

        def body(nodes: list) -> list:
            return self.evaluate(expr.body, context.bind(expr.var, nodes))

        algorithm = self._choose_ifp_algorithm(expr, context)
        anchor_document = None
        if context.focus.defined and is_node(context.focus.item):
            anchor_document = context.focus.item.document()
        result = self.executor.run(
            expr, seed, body, algorithm,
            max_iterations=context.options.max_ifp_iterations,
            variables=context.variables,
            push_predicates=context.options.use_pushdown,
            trace=active_trace(context.options.trace),
            governor=active_governor(context.options.limits),
            anchor_document=anchor_document,
        )
        if context.statistics is not None and hasattr(context.statistics, "record_ifp"):
            context.statistics.record_ifp(result.statistics)
        return list(result.value)


def fixpoint_statements(module_or_expr, optimize: bool = True,
                        ifp_algorithm: str = "auto",
                        push_predicates: bool = True) -> list[tuple[ast.WithExpr, FixpointSql | None]]:
    """All ``with … recurse`` forms of a query plus their emitted SQL.

    Returns ``(expr, emitted)`` pairs where ``emitted`` is ``None`` for
    fixpoints the sql engine would run through the driver loop — bodies
    that are not a linear step chain, and fixpoints forced to Naive (a
    ``using naive`` clause, or *ifp_algorithm* = ``"naive"`` mirroring the
    engine-level option).  Used by the CLI's ``--emit-sql``.  Variable
    right-hand sides of pushed predicates are unknown here, so such bodies
    display as driver-loop fallbacks even though the engine may still
    inline the runtime bindings.
    """
    from repro.xquery.optimizer import optimize_module

    expressions: list[ast.Expr] = []
    if isinstance(module_or_expr, ast.Module):
        module = optimize_module(module_or_expr) if optimize else module_or_expr
        for declaration in module.variables:
            if declaration.value is not None:
                expressions.append(declaration.value)
        for function in module.functions:
            expressions.append(function.body)
        expressions.append(module.body)
    else:
        expressions.append(module_or_expr)

    pairs: list[tuple[ast.WithExpr, FixpointSql | None]] = []
    for expression in expressions:
        for sub in expression.iter_subexpressions():
            if isinstance(sub, ast.WithExpr):
                effective = (sub.algorithm if sub.algorithm in ("naive", "delta")
                             else ifp_algorithm)
                emitted = (emit_fixpoint_sql(sub.body, sub.var,
                                             push_predicates=push_predicates)
                           if effective != "naive" else None)
                pairs.append((sub, emitted))
    return pairs


__all__ = ["SqlFixpointExecutor", "SQLEvaluator", "fixpoint_statements"]
