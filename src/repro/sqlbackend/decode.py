"""Decoding relational results back into XDM item sequences.

Two decoders live here:

* :func:`decode_result_table` — the shared "last mile" of both relational
  execution paths (`algebra` and `sql`): extract the item sequence from an
  ``iter|pos|item`` result table.  It is duck-typed over the table-storage
  protocol (row tables, columnar tables, and the SQL backend's
  :class:`ResultTable` all qualify), so :mod:`repro.api` uses one helper
  for every engine instead of inlining the ``item``-column fallback logic.
* :func:`decode_pres` — map a sequence of ``pre`` ranks from the SQLite
  store back to live XDM nodes, in document order (ascending ``order_key``,
  i.e. exactly the order ``fs:ddo`` — and therefore the interpreter's
  fixpoint — produces).
"""

from __future__ import annotations

from dataclasses import dataclass
from collections.abc import Iterable

from repro.xdm.node import Node


@dataclass
class ResultTable:
    """A minimal ``iter|pos|item`` result table (SQL backend output)."""

    columns: tuple[str, ...]
    rows: list[tuple]

    def column_index(self, name: str) -> int:
        return self.columns.index(name)

    def __len__(self) -> int:
        return len(self.rows)


def decode_result_table(table) -> list:
    """Extract the item sequence from an ``iter|pos|item`` result table.

    Plans normally deliver the interface schema ``iter|pos|item``; plans
    that end in a projection with renamed columns deliver their payload in
    the last column, hence the fallback.
    """
    columns = tuple(table.columns)
    if "item" in columns:
        item_index = (table.column_index("item") if hasattr(table, "column_index")
                      else columns.index("item"))
    else:
        item_index = len(columns) - 1
    return [row[item_index] for row in table.rows]


def decode_pres(store, pres: Iterable[int]) -> list[Node]:
    """Decode ``pre`` ranks from *store* into nodes in document order."""
    nodes = store.decode(pres)
    nodes.sort(key=lambda node: node.order_key)
    return nodes


__all__ = ["ResultTable", "decode_result_table", "decode_pres"]
