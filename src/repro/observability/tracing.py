"""Per-query trace spans: what an evaluation spent its time on.

A :class:`TraceContext` is created per traced query (``evaluate(...,
trace=True)``) and threaded through the engines via
:class:`~repro.xquery.context.EvaluationOptions`.  It builds one **span
tree**: the root ``query`` span with phase children (``parse``,
``compile``, ``execute``, ``decode``), engine-specific descendants —
``fixpoint`` spans with one ``round`` child per iteration carrying the
frontier/delta/accumulator sizes of Figure 3's algorithms, ``sql`` spans
with statement timings, ``index-build`` spans for lazy structural-index
construction — and ``kernel:*`` summary spans absorbing the PR 4
batch-vs-fallback profile counters.

Design constraints:

* **Zero-cost when off.**  Every instrumentation site guards on ``trace
  is not None`` (or the falsy default that
  :meth:`~repro.settings.EvalSettings.to_options` leaves in the options),
  so the disabled path adds one attribute read and a branch —
  ``benchmarks/check_trace_overhead.py`` holds this under 2 % on the
  smoke workload.
* **Single-threaded trees.**  One query evaluates on one thread, so the
  context keeps a plain current-span stack; nested sites (a fixpoint
  round evaluating a body that builds an index) attach to the innermost
  open span without any parameter threading.
* **No engine imports.**  The module depends only on the stdlib, so every
  layer — ``xdm``, ``fixpoint``, ``sqlbackend``, ``service`` — can import
  it without cycles.

Spans serialize to plain dicts (:meth:`Span.to_dict`): ``{"name",
"elapsed_ms", "attributes", "children"}`` — the schema the service's
``"trace": true`` responses and the tests validate.
"""

from __future__ import annotations

import threading
import time
from contextlib import contextmanager, nullcontext
from collections.abc import Iterator
from typing import Any

_CLOCK = time.perf_counter


class Span:
    """One timed phase of an evaluation, with attributes and children."""

    __slots__ = ("name", "attributes", "children", "started_at", "ended_at")

    def __init__(self, name: str, attributes: dict | None = None):
        self.name = name
        self.attributes: dict[str, Any] = dict(attributes) if attributes else {}
        self.children: list[Span] = []
        self.started_at = _CLOCK()
        self.ended_at: float | None = None

    def set(self, **attributes: Any) -> "Span":
        """Attach (or overwrite) attributes; returns self for chaining."""
        self.attributes.update(attributes)
        return self

    def finish(self) -> None:
        if self.ended_at is None:
            self.ended_at = _CLOCK()

    @property
    def seconds(self) -> float:
        """Wall time of the span (up to now while still open)."""
        end = self.ended_at if self.ended_at is not None else _CLOCK()
        return end - self.started_at

    # -- introspection -------------------------------------------------------

    def iter_spans(self) -> Iterator["Span"]:
        """Pre-order walk over this span and all descendants."""
        stack = [self]
        while stack:
            span = stack.pop()
            yield span
            stack.extend(reversed(span.children))

    def find(self, name: str) -> "Span" | None:
        """First descendant (or self) with the given name, pre-order."""
        for span in self.iter_spans():
            if span.name == name:
                return span
        return None

    def find_all(self, name: str) -> list["Span"]:
        return [span for span in self.iter_spans() if span.name == name]

    def to_dict(self) -> dict:
        """The JSON-ready span schema (service responses, tests)."""
        return {
            "name": self.name,
            "elapsed_ms": round(self.seconds * 1000.0, 3),
            "attributes": dict(self.attributes),
            "children": [child.to_dict() for child in self.children],
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Span({self.name!r}, {self.seconds * 1000.0:.3f} ms, {self.attributes})"


class TraceContext:
    """The per-query span tree builder.

    ``begin``/``end`` maintain a current-span stack so deeply nested
    instrumentation sites need no explicit parent; ``span`` is the
    context-manager spelling.  ``end`` pops *through* the given span, so
    children left open by an exception unwind cannot corrupt the stack.
    """

    __slots__ = ("root", "_stack")

    def __init__(self, name: str = "query", **attributes: Any):
        self.root = Span(name, attributes)
        self._stack: list[Span] = [self.root]

    # -- span construction ---------------------------------------------------

    def begin(self, name: str, **attributes: Any) -> Span:
        """Open a child of the current span and make it current."""
        span = Span(name, attributes)
        self._stack[-1].children.append(span)
        self._stack.append(span)
        return span

    def end(self, span: Span) -> None:
        """Finish *span*, popping it (and any unwound children) off."""
        span.finish()
        while len(self._stack) > 1:
            popped = self._stack.pop()
            popped.finish()
            if popped is span:
                return
        # span was not on the stack (already ended): nothing else to do

    @contextmanager
    def span(self, name: str, **attributes: Any):
        span = self.begin(name, **attributes)
        try:
            yield span
        finally:
            self.end(span)

    @property
    def current(self) -> Span:
        return self._stack[-1]

    def finish(self) -> Span:
        """Close every open span (the root last); returns the root."""
        while len(self._stack) > 1:
            self._stack.pop().finish()
        self.root.finish()
        return self.root

    def to_dict(self) -> dict:
        return self.root.to_dict()

    # -- thread-local activation --------------------------------------------

    @contextmanager
    def activate(self):
        """Install this context as the thread's current trace.

        Instrumentation sites without a parameter path to the options —
        the lazy structural-index builds of :mod:`repro.xdm.index` —
        consult :func:`current_trace` instead; they only pay the
        thread-local read on cache misses.
        """
        previous = getattr(_ACTIVE, "trace", None)
        _ACTIVE.trace = self
        try:
            yield self
        finally:
            _ACTIVE.trace = previous


_ACTIVE = threading.local()


def current_trace() -> TraceContext | None:
    """The trace activated on this thread (``None`` outside traced runs)."""
    return getattr(_ACTIVE, "trace", None)


def active_trace(value: Any) -> TraceContext | None:
    """Normalize an options-carried trace value to a context or ``None``.

    :meth:`EvalSettings.to_options` copies the *boolean* ``trace`` field
    into the options (keeping the two dataclasses field-for-field in
    sync); the session then swaps the live :class:`TraceContext` in.
    Engine sites call this so a stray boolean can never be used as a
    context.
    """
    return value if isinstance(value, TraceContext) else None


def maybe_span(trace: TraceContext | None, name: str, **attributes: Any):
    """``trace.span(...)`` or a null context yielding ``None``."""
    if trace is None:
        return nullcontext(None)
    return trace.span(name, **attributes)


# ---------------------------------------------------------------------------
# rendering & summarization
# ---------------------------------------------------------------------------


def _format_attributes(span: Span) -> str:
    if not span.attributes:
        return ""
    parts = ", ".join(f"{key}={value}" for key, value in span.attributes.items())
    return f" ({parts})"


def format_span_tree(span: Span | dict, indent: str = "") -> str:
    """Pretty-print a span tree (the CLI's ``--trace`` output).

    Accepts a :class:`Span` or its :meth:`Span.to_dict` form, so traces
    that crossed a JSON boundary (the service) render identically.
    """
    if isinstance(span, Span):
        span = span.to_dict()
    attrs = span.get("attributes") or {}
    rendered = " (" + ", ".join(f"{k}={v}" for k, v in attrs.items()) + ")" if attrs else ""
    lines = [f"{indent}{span['name']}{rendered}  {span['elapsed_ms']:.3f} ms"]
    children = span.get("children") or []
    for position, child in enumerate(children):
        last = position == len(children) - 1
        branch, extend = ("└─ ", "   ") if last else ("├─ ", "│  ")
        child_text = format_span_tree(child, "")
        child_lines = child_text.split("\n")
        lines.append(f"{indent}{branch}{child_lines[0]}")
        lines.extend(f"{indent}{extend}{line}" for line in child_lines[1:])
    return "\n".join(lines)


def phase_summary(span: Span | dict) -> dict[str, dict]:
    """Aggregate a span tree by span name: total seconds and count.

    The benchmark harness attaches this as the ``phases`` breakdown of a
    ``RunResult`` — e.g. ``{"execute": {"seconds": ..., "count": 1},
    "fixpoint": {...}, "round": {"seconds": ..., "count": 7}}``.  Nested
    spans contribute to their own name *and* remain inside their parents'
    totals (phases overlap by construction: a ``round`` runs inside its
    ``fixpoint`` which runs inside ``execute``).
    """
    if isinstance(span, Span):
        span = span.to_dict()
    summary: dict[str, dict] = {}

    def visit(node: dict, top: bool) -> None:
        if not top:  # the root span is the whole run, not a phase
            entry = summary.setdefault(node["name"], {"seconds": 0.0, "count": 0})
            entry["seconds"] = round(entry["seconds"] + node["elapsed_ms"] / 1000.0, 6)
            entry["count"] += 1
        for child in node.get("children") or []:
            visit(child, False)

    visit(span, True)
    return summary


__all__ = [
    "Span",
    "TraceContext",
    "active_trace",
    "current_trace",
    "format_span_tree",
    "maybe_span",
    "phase_summary",
]
