"""Unified observability: trace spans and a metrics registry.

Two complementary views of the same workload, built for the paper's
evaluation model where a query's cost hides inside fixpoint rounds:

* :mod:`repro.observability.tracing` — per-query **span trees**
  (``evaluate(..., trace=True)``): parse → compile → execute → decode,
  with per-fixpoint-round children carrying frontier/delta/accumulator
  sizes for all three engines, per-kernel batch-vs-fallback counters and
  SQL statement timings.
* :mod:`repro.observability.metrics` — a thread-safe **metrics registry**
  (counters, gauges, fixed-bucket histograms) rendered in Prometheus text
  exposition format by the service's ``GET /metrics``.

Neither module imports anything from the engine packages, so every layer
can depend on it without cycles.
"""

from repro.observability.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    DEFAULT_LATENCY_BUCKETS,
    FIXPOINT_ROUND_BUCKETS,
    inject_label,
    merge_expositions,
)
from repro.observability.tracing import (
    Span,
    TraceContext,
    active_trace,
    current_trace,
    format_span_tree,
    maybe_span,
    phase_summary,
)

__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FIXPOINT_ROUND_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "TraceContext",
    "active_trace",
    "current_trace",
    "format_span_tree",
    "inject_label",
    "maybe_span",
    "merge_expositions",
    "phase_summary",
]
