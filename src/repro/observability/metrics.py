"""A thread-safe metrics registry with Prometheus text exposition.

The service (and anything else with long-lived counters) records into a
:class:`MetricsRegistry`: **counters** (monotonic totals), **gauges**
(set/inc/dec point-in-time values) and **histograms** with fixed bucket
boundaries (latency seconds by default, fixpoint round counts via
:data:`FIXPOINT_ROUND_BUCKETS`).  Metrics are grouped into *families*
sharing a name/help/label-name set; children are addressed by label
values (``registry.counter("repro_requests_total", "...",
("engine",)).labels(engine="sql").inc()``).

All mutation runs under one registry lock, so increments are **exact** —
N threads × M increments always reads N·M (the concurrency tests hammer
this).  Reads (:meth:`MetricsRegistry.render`) take the same lock and see
a consistent cut.

:meth:`MetricsRegistry.render` emits the Prometheus text exposition
format (version 0.0.4): ``# HELP`` / ``# TYPE`` headers per family, one
sample line per child, histograms as cumulative ``_bucket{le=...}``
series plus ``_sum``/``_count``.  No client library is required on
either side — the format is plain text by design.
"""

from __future__ import annotations

import math
import threading
from collections import OrderedDict
from collections.abc import Iterable, Mapping, Sequence

#: Latency histogram boundaries in seconds (Prometheus client defaults,
#: trimmed to the sub-10s range a query service lives in).
DEFAULT_LATENCY_BUCKETS = (
    0.001, 0.0025, 0.005, 0.01, 0.025, 0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Fixpoint-round histogram boundaries: recursion depths of Table 2's
#: workloads cluster low, with a long tail bounded by max_ifp_iterations.
FIXPOINT_ROUND_BUCKETS = (1.0, 2.0, 3.0, 5.0, 8.0, 13.0, 21.0, 50.0, 100.0, 1000.0)


def _escape_label_value(value: str) -> str:
    return value.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def _format_value(value: float) -> str:
    if value == math.inf:
        return "+Inf"
    if value == -math.inf:
        return "-Inf"
    if isinstance(value, float) and value.is_integer():
        return str(int(value))
    return repr(value)


def _render_labels(names: Sequence[str], values: Sequence[str],
                   extra: tuple[tuple[str, str], ...] = ()) -> str:
    pairs = [(name, value) for name, value in zip(names, values)]
    pairs.extend(extra)
    if not pairs:
        return ""
    inner = ",".join(f'{name}="{_escape_label_value(str(value))}"' for name, value in pairs)
    return "{" + inner + "}"


class Counter:
    """A monotonically increasing total."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError("counters cannot decrease")
        with self._lock:
            self._value += amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Gauge:
    """A value that can go up and down (in-flight requests, cache sizes)."""

    __slots__ = ("_lock", "_value")

    def __init__(self, lock: threading.RLock):
        self._lock = lock
        self._value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self._value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value += amount

    def dec(self, amount: float = 1.0) -> None:
        with self._lock:
            self._value -= amount

    @property
    def value(self) -> float:
        with self._lock:
            return self._value


class Histogram:
    """Cumulative fixed-bucket histogram (Prometheus semantics)."""

    __slots__ = ("_lock", "buckets", "counts", "sum", "count")

    def __init__(self, lock: threading.RLock, buckets: Sequence[float]):
        self._lock = lock
        self.buckets = tuple(buckets)
        self.counts = [0] * (len(self.buckets) + 1)  # +1 for the +Inf bucket
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        with self._lock:
            self.sum += value
            self.count += 1
            for position, bound in enumerate(self.buckets):
                if value <= bound:
                    self.counts[position] += 1
                    return
            self.counts[-1] += 1

    def snapshot(self) -> dict:
        with self._lock:
            cumulative, running = [], 0
            for bucket_count in self.counts:
                running += bucket_count
                cumulative.append(running)
            return {"buckets": dict(zip(self.buckets, cumulative)),
                    "sum": self.sum, "count": self.count}


_METRIC_TYPES = {"counter": Counter, "gauge": Gauge, "histogram": Histogram}


class MetricFamily:
    """All children of one metric name, keyed by label values."""

    __slots__ = ("name", "help", "type", "label_names", "buckets", "_lock", "_children")

    def __init__(self, name: str, help_text: str, metric_type: str,
                 label_names: Sequence[str], lock: threading.RLock,
                 buckets: Sequence[float] | None = None):
        self.name = name
        self.help = help_text
        self.type = metric_type
        self.label_names = tuple(label_names)
        self.buckets = tuple(buckets) if buckets is not None else None
        self._lock = lock
        self._children: "OrderedDict[tuple[str, ...], object]" = OrderedDict()

    def labels(self, **label_values: str):
        """The child for the given label values (created on first use)."""
        if set(label_values) != set(self.label_names):
            raise ValueError(
                f"metric {self.name} takes labels {self.label_names}, "
                f"got {tuple(sorted(label_values))}")
        key = tuple(str(label_values[name]) for name in self.label_names)
        with self._lock:
            child = self._children.get(key)
            if child is None:
                if self.type == "histogram":
                    child = Histogram(self._lock, self.buckets)
                else:
                    child = _METRIC_TYPES[self.type](self._lock)
                self._children[key] = child
            return child

    # Unlabeled families act as their own single child.

    def _solo(self):
        return self.labels()

    def inc(self, amount: float = 1.0) -> None:
        self._solo().inc(amount)

    def dec(self, amount: float = 1.0) -> None:
        self._solo().dec(amount)

    def set(self, value: float) -> None:
        self._solo().set(value)

    def observe(self, value: float) -> None:
        self._solo().observe(value)

    @property
    def value(self) -> float:
        return self._solo().value

    def children(self) -> "OrderedDict[tuple[str, ...], object]":
        with self._lock:
            return OrderedDict(self._children)


class MetricsRegistry:
    """Families by name, one lock for every mutation and read."""

    def __init__(self):
        self._lock = threading.RLock()
        self._families: "OrderedDict[str, MetricFamily]" = OrderedDict()

    def _family(self, name: str, help_text: str, metric_type: str,
                label_names: Sequence[str],
                buckets: Sequence[float] | None = None) -> MetricFamily:
        with self._lock:
            family = self._families.get(name)
            if family is None:
                family = MetricFamily(name, help_text, metric_type, label_names,
                                      self._lock, buckets)
                self._families[name] = family
                return family
            if family.type != metric_type or family.label_names != tuple(label_names):
                raise ValueError(
                    f"metric {name} is already registered as a {family.type} "
                    f"with labels {family.label_names}")
            return family

    def counter(self, name: str, help_text: str,
                label_names: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "counter", label_names)

    def gauge(self, name: str, help_text: str,
              label_names: Sequence[str] = ()) -> MetricFamily:
        return self._family(name, help_text, "gauge", label_names)

    def histogram(self, name: str, help_text: str,
                  label_names: Sequence[str] = (),
                  buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS) -> MetricFamily:
        return self._family(name, help_text, "histogram", label_names, buckets)

    # -- reading -------------------------------------------------------------

    def families(self) -> Iterable[MetricFamily]:
        with self._lock:
            return list(self._families.values())

    def value(self, name: str, **label_values: str) -> float:
        """Convenience reader for tests: current value of one child."""
        with self._lock:
            family = self._families[name]
        child = family.labels(**label_values)
        if isinstance(child, Histogram):
            return child.snapshot()["count"]
        return child.value

    def snapshot(self) -> dict:
        """Plain-dict dump of every family (JSON-friendly, for /stats)."""
        result: dict[str, dict] = {}
        for family in self.families():
            children = {}
            for key, child in family.children().items():
                label = ",".join(f"{n}={v}" for n, v in zip(family.label_names, key)) or "_"
                if isinstance(child, Histogram):
                    children[label] = child.snapshot()
                else:
                    children[label] = child.value
            result[family.name] = {"type": family.type, "values": children}
        return result

    def render(self) -> str:
        """Prometheus text exposition (format version 0.0.4)."""
        lines: list[str] = []
        for family in self.families():
            lines.append(f"# HELP {family.name} {family.help}")
            lines.append(f"# TYPE {family.name} {family.type}")
            for key, child in family.children().items():
                if isinstance(child, Histogram):
                    snap = child.snapshot()
                    cumulative = 0
                    for bound in family.buckets:
                        cumulative = snap["buckets"][bound]
                        labels = _render_labels(family.label_names, key,
                                                (("le", _format_value(bound)),))
                        lines.append(f"{family.name}_bucket{labels} {cumulative}")
                    labels = _render_labels(family.label_names, key, (("le", "+Inf"),))
                    lines.append(f"{family.name}_bucket{labels} {snap['count']}")
                    labels = _render_labels(family.label_names, key)
                    lines.append(f"{family.name}_sum{labels} {_format_value(snap['sum'])}")
                    lines.append(f"{family.name}_count{labels} {snap['count']}")
                else:
                    labels = _render_labels(family.label_names, key)
                    lines.append(f"{family.name}{labels} {_format_value(child.value)}")
        return "\n".join(lines) + "\n"


def inject_label(sample_line: str, name: str, value: str) -> str:
    """Add ``name="value"`` as the first label of one exposition sample.

    ``repro_requests_total{engine="sql"} 3`` becomes
    ``repro_requests_total{worker="0",engine="sql"} 3``; unlabeled samples
    grow a label set.  Comment lines pass through unchanged.
    """
    if sample_line.startswith("#") or not sample_line.strip():
        return sample_line
    head, _, tail = sample_line.rpartition(" ")
    label = f'{name}="{_escape_label_value(value)}"'
    brace = head.find("{")
    if brace < 0:
        return f"{head}{{{label}}} {tail}"
    return f"{head[:brace + 1]}{label},{head[brace + 1:]} {tail}"


def merge_expositions(per_source: Mapping[str, str],
                      label: str = "worker") -> str:
    """Merge Prometheus text expositions from several sources into one.

    Each source's samples gain a ``label="<source>"`` label so the
    aggregated scrape stays attributable per worker; ``# HELP``/``# TYPE``
    headers are emitted once per family (first source wins), with every
    source's samples grouped under them.  This is how the supervisor's
    ``GET /metrics`` folds N worker scrapes into one page.
    """
    order: list[str] = []
    headers: dict[str, list[str]] = {}
    samples: dict[str, list[str]] = {}
    for source, text in per_source.items():
        family = None
        for line in text.splitlines():
            if not line.strip():
                continue
            if line.startswith("# "):
                parts = line.split(None, 3)
                if len(parts) >= 3 and parts[1] in ("HELP", "TYPE"):
                    family = parts[2]
                    if family not in headers:
                        order.append(family)
                        headers[family] = []
                        samples[family] = []
                    if len(headers[family]) < 2 and line not in headers[family]:
                        headers[family].append(line)
                continue
            if family is None:
                # A headerless sample (not produced by our registry, but
                # tolerated): group it under its own name.
                family = line.split("{", 1)[0].split(" ", 1)[0]
                if family not in headers:
                    order.append(family)
                    headers[family] = []
                    samples[family] = []
            samples[family].append(inject_label(line, label, source))
    lines: list[str] = []
    for family in order:
        lines.extend(headers[family])
        lines.extend(samples[family])
    return "\n".join(lines) + ("\n" if lines else "")


def set_gauges(registry: MetricsRegistry, values: Mapping[str, float],
               help_texts: Mapping[str, str] | None = None) -> None:
    """Bulk-set unlabeled gauges (scrape-time derived metrics)."""
    helps = help_texts or {}
    for name, value in values.items():
        registry.gauge(name, helps.get(name, name)).set(value)


__all__ = [
    "Counter",
    "DEFAULT_LATENCY_BUCKETS",
    "FIXPOINT_ROUND_BUCKETS",
    "Gauge",
    "Histogram",
    "MetricFamily",
    "MetricsRegistry",
    "inject_label",
    "merge_expositions",
    "set_gauges",
]
