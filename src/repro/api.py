"""Convenience API: the entry points a downstream user starts from.

The lower-level packages (``repro.xquery``, ``repro.fixpoint``,
``repro.distributivity``, ``repro.algebra``) remain fully usable on their
own; this module wires them together behind a handful of functions:

>>> from repro import parse_xml, evaluate
>>> doc = parse_xml('<r><a code="a1"/><a code="a2"/></r>', id_attributes=("code",))
>>> result = evaluate('count(//a)', documents={"doc.xml": doc}, context_item=doc)
>>> result.items
[2]

Since PR 6 the evaluation state (module/plan caches, document registry,
per-worker SQLite stores) lives in :class:`repro.session.Session` objects;
the functions here operate on one process-wide *default session*
(:func:`repro.session.default_session`), so scripts keep working unchanged
while services construct their own sessions.  The nine historical tuning
keywords of :func:`evaluate` are deprecated in favor of a single frozen
:class:`~repro.settings.EvalSettings` value passed as ``settings=``.
"""

from __future__ import annotations

from collections.abc import Callable, Iterable, Mapping, Sequence
from typing import Any, TYPE_CHECKING

if TYPE_CHECKING:
    from repro.analysis.report import AnalysisReport

from repro.errors import BudgetExceeded, QueryCancelled, QueryTimeout
from repro.fixpoint.engine import FixpointEngine, FixpointResult
from repro.limits import CancelToken, ResourceLimits
from repro.session import (
    PreparedQuery,
    QueryResult,
    Session,
    build_resolver,
    default_session,
)
from repro.settings import Engine, EvalSettings, merge_legacy_kwargs
from repro.xdm.node import DocumentNode, Node
from repro.xmlio.parser import parse_xml_file
from repro.xquery import ast
from repro.xquery.context import DocumentResolver, DynamicContext
from repro.xquery.evaluator import Evaluator
from repro.xquery.parser import parse_expression, parse_query

_build_resolver = build_resolver  # pre-PR 6 private name, kept for callers


def clear_query_caches() -> None:
    """Drop every cached parsed module and compiled plan (default session)."""
    default_session().clear_caches()


def query_cache_stats() -> dict:
    """Hit/miss/size counters of the default session's caches."""
    return default_session().cache_stats()


def parse_query_text(text: str) -> ast.Module:
    """Parse a query (prolog + body) without evaluating it.

    ``repro.parse_query`` (re-exported from :mod:`repro.xquery.parser`) is an
    alias of the same operation; this wrapper exists for symmetry with
    :func:`evaluate_query`.
    """
    return parse_query(text)


def evaluate(query: str,
             documents: Mapping[str, DocumentNode | str] | DocumentResolver | None = None,
             variables: Mapping[str, Sequence[Any] | Any] | None = None,
             context_item: Any = None,
             ifp_algorithm: str | None = None,
             distributivity_checker: str | None = None,
             engine: Engine | str | None = None,
             backend: str | None = None,
             optimize: bool | None = None,
             use_index: bool | None = None,
             use_pushdown: bool | None = None,
             use_cache: bool | None = None,
             profile: bool | None = None,
             trace: bool | None = None,
             id_attributes: Iterable[str] = ("id", "xml:id"),
             settings: EvalSettings | Mapping[str, Any] | None = None) -> QueryResult:
    """Parse and evaluate an XQuery query on the default session.

    Parameters
    ----------
    query:
        The query text (LiXQuery-style subset plus ``with … recurse``).
    documents:
        Documents available to ``fn:doc``: a mapping from URI to a parsed
        document or XML text, or a pre-built resolver.  Defaults to the
        default session's registered corpus (empty unless populated).
    variables:
        External variable bindings (``declare variable $x external``).
    context_item:
        Initial context item (usually a document or element node).
    settings:
        An :class:`EvalSettings` value (or mapping of its fields) bundling
        every tuning knob: engine, backend, IFP algorithm policy,
        index/pushdown/cache usage, profiling.  This is the preferred
        spelling; see :class:`EvalSettings` for the field semantics.
    trace:
        Record a per-query span tree (phases, fixpoint rounds, SQL
        statements) on ``result.trace`` — see
        :mod:`repro.observability.tracing`.  A first-class keyword (not
        deprecated): equivalent to ``settings={"trace": True}``.
    ifp_algorithm, distributivity_checker, engine, backend, optimize, \
use_index, use_pushdown, use_cache, profile:
        .. deprecated:: PR 6
           The pre-``EvalSettings`` tuning keywords.  Still accepted (a
           :class:`DeprecationWarning` is emitted) and applied on top of
           ``settings``.
    id_attributes:
        Attribute names treated as IDs when XML text is parsed here.
    """
    settings = merge_legacy_kwargs(settings, {
        "ifp_algorithm": ifp_algorithm,
        "distributivity_checker": distributivity_checker,
        "engine": engine,
        "backend": backend,
        "optimize": optimize,
        "use_index": use_index,
        "use_pushdown": use_pushdown,
        "use_cache": use_cache,
        "profile": profile,
    })
    overrides = {} if trace is None else {"trace": bool(trace)}
    return default_session().evaluate(
        query, documents=documents, variables=variables,
        context_item=context_item, settings=settings,
        id_attributes=id_attributes, **overrides,
    )


def evaluate_query(module: ast.Module,
                   documents: Mapping[str, DocumentNode | str] | DocumentResolver | None = None,
                   variables: Mapping[str, Sequence[Any] | Any] | None = None,
                   context_item: Any = None,
                   ifp_algorithm: str | None = None,
                   distributivity_checker: str | None = None,
                   engine: Engine | str | None = None,
                   backend: str | None = None,
                   optimize: bool | None = None,
                   use_index: bool | None = None,
                   use_pushdown: bool | None = None,
                   use_cache: bool | None = None,
                   profile: bool | None = None,
                   trace: bool | None = None,
                   id_attributes: Iterable[str] = ("id", "xml:id"),
                   settings: EvalSettings | Mapping[str, Any] | None = None) -> QueryResult:
    """Evaluate an already-parsed query module (see :func:`evaluate`).

    The plan cache keys on the module *object*, so repeated calls benefit
    only when the same parsed module is passed again (as :func:`evaluate`
    arranges via its module cache, and :meth:`repro.session.Session.prepare`
    exposes directly).
    """
    settings = merge_legacy_kwargs(settings, {
        "ifp_algorithm": ifp_algorithm,
        "distributivity_checker": distributivity_checker,
        "engine": engine,
        "backend": backend,
        "optimize": optimize,
        "use_index": use_index,
        "use_pushdown": use_pushdown,
        "use_cache": use_cache,
        "profile": profile,
    })
    overrides = {} if trace is None else {"trace": bool(trace)}
    return default_session().evaluate_query(
        module, documents=documents, variables=variables,
        context_item=context_item, settings=settings,
        id_attributes=id_attributes, **overrides,
    )


def ifp(body: Callable[[list], list] | str,
        seed: Sequence[Node] | Node,
        algorithm: str = "delta",
        variable: str = "x",
        documents: Mapping[str, DocumentNode] | DocumentResolver | None = None,
        max_iterations: int = 100_000,
        seed_is_initial_result: bool = False) -> FixpointResult:
    """Compute an inflationary fixed point directly from Python.

    ``body`` is either a Python callable over node lists or an XQuery
    expression text with the recursion variable free (default ``$x``).
    """
    seeds = list(seed) if isinstance(seed, (list, tuple)) else [seed]
    if isinstance(body, str):
        expression = parse_expression(body)
        resolver = build_resolver(documents, ("id", "xml:id"))
        evaluator = Evaluator()
        base_context = DynamicContext(documents=resolver)

        def body_function(nodes: list) -> list:
            return evaluator.evaluate(expression, base_context.bind(variable, nodes))
    else:
        body_function = body
    engine = FixpointEngine(max_iterations=max_iterations)
    return engine.run(body_function, seeds, algorithm=algorithm,
                      seed_is_initial_result=seed_is_initial_result)


def transitive_closure(path: str, context_nodes: Sequence[Node] | Node,
                       algorithm: str = "auto") -> list[Node]:
    """Evaluate a Regular XPath expression (with ``+``/``*`` closures).

    ``path`` uses the Regular XPath syntax of
    :mod:`repro.regularxpath.parser`, e.g.
    ``"(child::prerequisites/child::pre_code)+"``.
    """
    from repro.regularxpath import evaluate_regular_xpath

    nodes = list(context_nodes) if isinstance(context_nodes, (list, tuple)) else [context_nodes]
    return evaluate_regular_xpath(path, nodes, algorithm=algorithm)


def analyze_query_text(query: str,
                       variables: Iterable[str] = ()) -> "AnalysisReport":
    """Statically analyze *query* without evaluating it (the lint entry).

    Runs the full pass pipeline of :mod:`repro.analysis` — scope/arity
    checking, cardinality inference, the strengthened distributivity proof
    — over the *unoptimized* parse and returns the
    :class:`~repro.analysis.report.AnalysisReport`.  Static errors are
    *reported*, not raised; ``repro-xquery --check`` and the service's
    ``POST /analyze`` are thin wrappers over this.

    *variables* names the externally-bound variables (only the names
    matter statically).
    """
    from repro.analysis import analyze_query

    return analyze_query(query, bound_variables=tuple(variables))


def is_distributive_static(body: str | ast.Expr, variable: str = "x",
                           functions: Iterable[ast.FunctionDecl] | None = None) -> bool:
    """The strengthened static distributivity check (cardinality-assisted).

    Accepts everything Figure 5 accepts plus bodies it rejects for reasons
    the cardinality facts discharge — see
    :mod:`repro.analysis.distributivity` for the proof rules.
    """
    from repro.analysis.distributivity import is_distributive_static as _check

    expression = parse_expression(body) if isinstance(body, str) else body
    return _check(expression, variable, functions=functions)


def is_distributive_syntactic(body: str | ast.Expr, variable: str = "x",
                              functions: Iterable[ast.FunctionDecl] | None = None) -> bool:
    """Figure 5's syntactic distributivity check on a recursion body."""
    from repro.distributivity import is_distributivity_safe

    expression = parse_expression(body) if isinstance(body, str) else body
    return is_distributivity_safe(expression, variable, functions=functions)


def is_distributive_algebraic(body: str | ast.Expr, variable: str = "x",
                              functions: Iterable[ast.FunctionDecl] | None = None,
                              documents: Mapping[str, DocumentNode] | DocumentResolver | None = None,
                              document: DocumentNode | None = None,
                              strict: bool = False) -> bool:
    """Section 4's algebraic distributivity check (union push-up on the plan)."""
    from repro.algebra.distributivity import is_distributive_algebraic as _check

    expression = parse_expression(body) if isinstance(body, str) else body
    resolver = build_resolver(documents, ("id", "xml:id"))
    return _check(expression, variable, functions=functions, documents=resolver,
                  document=document, strict=strict)


def load_documents(paths: Mapping[str, str],
                   id_attributes: Iterable[str] = ("id", "xml:id")) -> DocumentResolver:
    """Parse XML files from disk into a resolver (URI → file path mapping)."""
    resolver = DocumentResolver()
    for uri, path in paths.items():
        resolver.register(uri, parse_xml_file(path, id_attributes=id_attributes))
    return resolver


__all__ = [
    "BudgetExceeded",
    "CancelToken",
    "Engine",
    "EvalSettings",
    "PreparedQuery",
    "QueryCancelled",
    "QueryResult",
    "QueryTimeout",
    "ResourceLimits",
    "Session",
    "analyze_query_text",
    "clear_query_caches",
    "default_session",
    "evaluate",
    "evaluate_query",
    "ifp",
    "is_distributive_algebraic",
    "is_distributive_static",
    "is_distributive_syntactic",
    "load_documents",
    "parse_query_text",
    "query_cache_stats",
    "transitive_closure",
]
